"""Setup shim for environments without the `wheel` package (offline PEP-660
builds need it); `pip install -e . --no-build-isolation` works where wheel
is available, and `python setup.py develop` works everywhere."""
from setuptools import setup

setup()
