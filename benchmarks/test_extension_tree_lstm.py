"""Extension bench: Child-Sum Tree-LSTM over ASTs vs sequential models."""

from conftest import run_once

from repro.experiments.tree_extension import tree_lstm_experiment


def test_extension_tree_lstm(benchmark, cfg):
    output = run_once(benchmark, tree_lstm_experiment, cfg)
    print("\n" + output)
    assert "treelstm" in output
    assert "ccnn" in output
    assert "clstm" in output
