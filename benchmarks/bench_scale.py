"""Sharded serving tier benchmark: scaling, tail latency, and availability.

Closed-loop clients replay the paper-realistic 70%-repetitive corpus of
``bench_featurization.make_corpus`` against a
:class:`~repro.serving.ShardedFacilitatorService` and record, per worker
count (1 / 2 / 4):

- client-observed latency p50 / p99 (ms) and closed-loop throughput;
- availability (fraction of requests answered successfully);
- saturation: throughput relative to the single-worker tier, i.e. how
  much of the ideal linear scaling the digest-sharded fan-out delivers.

A final **fault scenario** re-runs the 4-worker tier with an injected
worker crash mid-load (``repro.serving.faults``) and records availability,
degraded-response count, and supervisor restarts — the headline
robustness number. Results land in ``BENCH_scale.json`` at the repo root.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_scale.py [N]

The pytest smoke mode lives in ``test_scale_smoke.py`` (2 workers, one
injected crash, asserts availability >= 99%) so tier-1 catches
fault-tolerance regressions without the full benchmark's runtime.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from bench_featurization import make_corpus
from bench_serving import train_facilitator

from repro.serving import (
    FaultPlan,
    RestartBackoff,
    ServiceOverloadedError,
    ShardedFacilitatorService,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_scale.json"

#: Paper-realistic repetition level (Figure 20: most statements recur).
REPETITION = 0.70
WORKER_COUNTS = (1, 2, 4)

#: Fast restarts so the fault scenario converges within the bench window.
FAST_BACKOFF = dict(base_s=0.05, cap_s=0.5, jitter=0.0, seed=0)


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


class ClosedLoopLoad:
    """N closed-loop clients, each issuing ``requests_each`` small batches."""

    def __init__(
        self,
        service: ShardedFacilitatorService,
        corpus: list[str],
        expected: dict,
        n_clients: int,
        requests_each: int,
        batch_size: int = 3,
    ):
        self.service = service
        self.corpus = corpus
        self.expected = expected
        self.n_clients = n_clients
        self.requests_each = requests_each
        self.batch_size = batch_size
        self.lock = threading.Lock()
        self.ok = 0
        self.mismatched = 0
        self.shed = 0
        self.failed = 0
        self.degraded = 0
        self.latencies_ms: list[float] = []

    def _client(self, tid: int) -> None:
        for i in range(self.requests_each):
            offset = (tid * 31 + i * 7) % len(self.corpus)
            batch = (
                self.corpus[offset : offset + self.batch_size]
                or self.corpus[: self.batch_size]
            )
            started = time.perf_counter()
            try:
                request = self.service.submit(batch)
                results = request.result(60)
            except ServiceOverloadedError:
                with self.lock:
                    self.shed += 1
                time.sleep(0.01)
                continue
            except Exception:  # noqa: BLE001 - tallied as unavailability
                with self.lock:
                    self.failed += 1
                continue
            latency_ms = (time.perf_counter() - started) * 1000.0
            identical = all(
                result.to_dict() == self.expected[statement]
                for statement, result in zip(batch, results)
            )
            with self.lock:
                if identical:
                    self.ok += 1
                else:
                    self.mismatched += 1
                if request.degraded:
                    self.degraded += 1
                self.latencies_ms.append(latency_ms)

    def run(self, mid_load=None) -> float:
        """Drive all clients; returns wall-clock seconds for the run."""
        threads = [
            threading.Thread(target=self._client, args=(tid,))
            for tid in range(self.n_clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        if mid_load is not None:
            time.sleep(0.3)
            mid_load()
        for thread in threads:
            thread.join(300)
        return time.perf_counter() - started

    @property
    def total(self) -> int:
        return self.ok + self.mismatched + self.failed

    @property
    def availability(self) -> float:
        return self.ok / self.total if self.total else 0.0

    def report(self, wall_s: float) -> dict:
        ordered = sorted(self.latencies_ms)
        return {
            "n_clients": self.n_clients,
            "requests": self.total,
            "ok": self.ok,
            "mismatched": self.mismatched,
            "failed": self.failed,
            "shed": self.shed,
            "degraded": self.degraded,
            "availability": round(self.availability, 4),
            "wall_s": round(wall_s, 3),
            "throughput_req_per_s": (
                round(self.ok / wall_s, 1) if wall_s else None
            ),
            "latency_p50_ms": round(_percentile(ordered, 0.50), 2),
            "latency_p99_ms": round(_percentile(ordered, 0.99), 2),
        }


def _make_service(artifact_path, n_workers: int, **kwargs):
    kwargs.setdefault("max_wait_ms", 2.0)
    kwargs.setdefault("cache_size", 0)  # every request exercises the workers
    kwargs.setdefault("backoff", RestartBackoff(**FAST_BACKOFF))
    return ShardedFacilitatorService(artifact_path, n_workers=n_workers, **kwargs)


def bench_scaling(
    artifact_path,
    corpus: list[str],
    expected: dict,
    n_clients: int = 16,
    requests_each: int = 30,
    batch_size: int = 8,
) -> dict:
    """Closed-loop load against 1 / 2 / 4 workers; saturation vs 1 worker.

    The client count is deliberately above any worker count measured, so
    every tier runs saturated and the throughput column reads as capacity.
    """
    per_workers = {}
    for n_workers in WORKER_COUNTS:
        with _make_service(artifact_path, n_workers) as service:
            load = ClosedLoopLoad(
                service, corpus, expected, n_clients, requests_each,
                batch_size=batch_size,
            )
            wall_s = load.run()
            entry = load.report(wall_s)
            entry["restarts"] = service.stats.restarts
            per_workers[str(n_workers)] = entry
    base = per_workers[str(WORKER_COUNTS[0])]["throughput_req_per_s"] or 1.0
    saturation = {
        workers: round((entry["throughput_req_per_s"] or 0.0) / base, 2)
        for workers, entry in per_workers.items()
    }
    return {
        # speedup is bounded by min(n_workers, host_cpus): on a 1-core
        # host every tier time-slices the same core and the column reads
        # as pure sharding overhead, not capacity
        "host_cpus": os.cpu_count(),
        "per_workers": per_workers,
        "speedup_vs_1_worker": saturation,
    }


def bench_fault_scenario(
    artifact_path,
    corpus: list[str],
    expected: dict,
    n_workers: int = 4,
    n_clients: int = 6,
    requests_each: int = 30,
) -> dict:
    """Availability with a worker crash injected mid-load."""
    plan = FaultPlan.from_obj(
        [{"kind": "crash", "worker": 1, "after_batches": 3}]
    )
    with _make_service(
        artifact_path, n_workers, batch_deadline_s=5.0, fault_plan=plan
    ) as service:
        load = ClosedLoopLoad(
            service, corpus, expected, n_clients, requests_each
        )
        wall_s = load.run()
        entry = load.report(wall_s)
        entry["workers"] = n_workers
        entry["restarts"] = service.stats.restarts
        entry["incidents"] = [
            {"worker": wid, "reason": reason}
            for wid, reason in service.supervisor.incidents
        ]
    return entry


def _prepare(n: int, n_sessions: int, tfidf_features: int, tmp: str):
    """Train, serialize, and precompute single-process ground truth."""
    facilitator = train_facilitator(
        n_sessions=n_sessions, tfidf_features=tfidf_features
    )
    artifact_path = Path(tmp) / "facilitator.repro"
    facilitator.save(artifact_path)
    corpus = make_corpus(n, REPETITION, seed=7)
    unique = list(dict.fromkeys(corpus))
    expected = {
        statement: insight.to_dict()
        for statement, insight in zip(
            unique, facilitator.insights_batch(unique)
        )
    }
    return artifact_path, corpus, expected


def run(n: int = 800) -> dict:
    """Full benchmark; returns the report dict and writes the JSON."""
    with TemporaryDirectory() as tmp:
        artifact_path, corpus, expected = _prepare(
            n, n_sessions=120, tfidf_features=2000, tmp=tmp
        )
        report = {
            "benchmark": "scale",
            "repetition_level": REPETITION,
            "corpus_statements": len(corpus),
            "scaling": bench_scaling(artifact_path, corpus, expected),
            "fault_scenario": bench_fault_scenario(
                artifact_path, corpus, expected
            ),
            "targets": {
                "availability_under_faults_min": 0.99,
                "mismatched_max": 0,
            },
        }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_smoke() -> dict:
    """Tier-1 smoke: 2 workers, one injected crash, availability >= 99%."""
    with TemporaryDirectory() as tmp:
        artifact_path, corpus, expected = _prepare(
            200, n_sessions=60, tfidf_features=800, tmp=tmp
        )
        return bench_fault_scenario(
            artifact_path,
            corpus,
            expected,
            n_workers=2,
            n_clients=4,
            requests_each=25,
        )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    result = run(size)
    print(json.dumps(result, indent=2))
    fault = result["fault_scenario"]
    print(
        f"availability under faults: {fault['availability']} "
        f"(target >= {result['targets']['availability_under_faults_min']}); "
        f"restarts: {fault['restarts']}; mismatched: {fault['mismatched']}"
    )
