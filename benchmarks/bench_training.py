"""Training-engine benchmark: fused kernels, bucketed batching, sparse fits.

Times the training hot paths the paper's Section 6 experiments spend their
budget on, over the same synthetic corpora/seeds as the featurization
benchmark:

1. **LSTM epoch** — one seeded epoch of a char-level ``clstm``-shaped
   model (the slowest kernel in the repo: BPTT over ~168 timesteps).
2. **CNN epoch** — one seeded epoch of a char-level ``ccnn``-shaped
   regression model.
3. **Sparse linear fits** — ``LogisticRegression`` / ``HuberLinearRegression``
   over TF-IDF features of a 2000-statement corpus (featurization itself is
   excluded; that is PR 3's benchmark).
4. **End-to-end multi-head training** — ``QueryFacilitator.fit`` over an
   SDSS workload for both neural families (``clstm`` + ``ccnn``), i.e. the
   cost of producing one servable artifact.

The "before" column is the pre-change implementation measured on the same
corpora and stored in ``baseline_training.json`` (recorded with
``--record-baseline`` before the kernel rewrite, like
``baseline_seed.json``); the "after" column is re-measured live. The
baseline also stores seeded loss curves and predictions, and the live run
re-derives them with length-bucketing disabled (pure op-reordering mode)
to assert the rewritten kernels are numerically equivalent to the
pre-change engine. Results land in ``BENCH_training.json`` at the repo
root.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_training.py

The pytest smoke mode lives in ``test_training_smoke.py`` (tiny sizes,
asserts bucketed+fused training beats a naive per-epoch re-encoding loop
and stays deterministic) so tier-1 catches training-perf regressions
without the full benchmark's runtime.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from pathlib import Path

import numpy as np

from bench_featurization import make_corpus

from repro.core.facilitator import QueryFacilitator
from repro.ml.huber import HuberLinearRegression
from repro.ml.logistic import LogisticRegression
from repro.models.base import TaskKind
from repro.models.cnn_model import TextCNNModel
from repro.models.factory import ModelScale
from repro.models.lstm_model import TextLSTMModel
from repro.models.neural_base import NeuralHyperParams
from repro.nn.optim import AdaMax
from repro.text.encode import SequenceEncoder, pad_sequences
from repro.text.tfidf import TfidfVectorizer
from repro.workloads.sdss import generate_sdss_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "baseline_training.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_training.json"

#: Corpus sizes (same generator/seeds as ``baseline_training.json``).
TRAIN_N = 256
HOLDOUT_N = 64
SPARSE_N = 2000

_HYPER_FIELDS = {f.name for f in dataclasses.fields(NeuralHyperParams)}


def _hyper(**kwargs) -> NeuralHyperParams:
    """Build hyper-params, dropping fields this code version lacks.

    Lets the identical script record the baseline against the pre-change
    implementation (no ``bucket`` field) and measure the rewritten engine.
    """
    return NeuralHyperParams(
        **{k: v for k, v in kwargs.items() if k in _HYPER_FIELDS}
    )


def _neural_hyper(*, epochs: int = 1, **overrides) -> NeuralHyperParams:
    base = dict(
        embed_dim=48,
        epochs=epochs,
        max_len_char=168,
        batch_size=16,
        seed=0,
    )
    base.update(overrides)
    return _hyper(**base)


def _neural_corpus(repetition: float = 0.70) -> tuple[list[str], list[str]]:
    """Training/holdout corpora at a given verbatim-repeat level.

    70% repetition is the paper-realistic regime (Figure 20); the unique
    corpus is the worst case for duplicate-collapsing batch plans.
    """
    seed = 7 if repetition else 11
    corpus = make_corpus(TRAIN_N + HOLDOUT_N, repetition, seed=seed)
    return corpus[:TRAIN_N], corpus[TRAIN_N:]


def _class_labels(n: int, num_classes: int = 2) -> np.ndarray:
    return np.random.default_rng(5).integers(0, num_classes, n)


def _reg_labels(statements: list[str]) -> np.ndarray:
    return np.array([float(len(s)) / 40.0 for s in statements])


def _timed(fn, *args):
    start = time.perf_counter()
    out = fn(*args)
    return time.perf_counter() - start, out


#: timing repeats per measurement — the benchmark box shows ±10%
#: wall-clock drift minute to minute, so every timed quantity (baseline
#: and live alike) is the min over this many fresh runs
REPEATS = 2


def _best_of(run_once) -> tuple[float, object]:
    """Min wall time over :data:`REPEATS` fresh runs; first run's payload.

    ``run_once`` builds its model from scratch each call, so repeats are
    seeded-identical and the payload (predictions, loss curves) is the
    same whichever run it comes from.
    """
    best_s, payload = run_once()
    for _ in range(REPEATS - 1):
        seconds, _ = run_once()
        best_s = min(best_s, seconds)
    return best_s, payload


# -- neural kernels -------------------------------------------------------- #


def bench_lstm(bucket: bool, repetition: float = 0.70) -> dict:
    """One seeded epoch of a 2-layer char LSTM classifier."""
    train, hold = _neural_corpus(repetition)
    labels = _class_labels(TRAIN_N)

    def run_once():
        model = TextLSTMModel(
            level="char",
            task=TaskKind.CLASSIFICATION,
            num_classes=2,
            hidden=96,
            num_layers=2,
            hyper=_neural_hyper(bucket=bucket),
        )
        epoch_s, _ = _timed(model.fit, train, labels)
        return epoch_s, model

    epoch_s, model = _best_of(run_once)
    proba = model.predict_proba(hold)
    return {
        "epoch_s": round(epoch_s, 4),
        "loss_history": [round(v, 12) for v in model.history],
        "proba_head": np.round(proba[:4], 12).tolist(),
        "proba_checksum": round(float(proba[:, 0].sum()), 10),
    }


def bench_cnn(bucket: bool, repetition: float = 0.70) -> dict:
    """One seeded epoch of a char CNN regressor (dropout active)."""
    train, hold = _neural_corpus(repetition)
    labels = _reg_labels(train)

    def run_once():
        model = TextCNNModel(
            level="char",
            task=TaskKind.REGRESSION,
            num_kernels=96,
            hyper=_neural_hyper(bucket=bucket),
        )
        epoch_s, _ = _timed(model.fit, train, labels)
        return epoch_s, model

    epoch_s, model = _best_of(run_once)
    pred = model.predict(hold)
    return {
        "epoch_s": round(epoch_s, 4),
        "loss_history": [round(v, 12) for v in model.history],
        "pred_head": np.round(pred[:8], 12).tolist(),
        "pred_checksum": round(float(pred.sum()), 10),
    }


# -- sparse linear fits ----------------------------------------------------- #


def _sparse_features():
    corpus = make_corpus(SPARSE_N, 0.70, seed=9)
    vectorizer = TfidfVectorizer(level="char", max_features=12_000)
    return vectorizer.fit_transform(corpus), corpus


def bench_sparse() -> dict:
    """Logistic / Huber fits on TF-IDF features (featurization excluded)."""
    features, corpus = _sparse_features()
    y_class = _class_labels(features.shape[0], num_classes=4)
    y_reg = _reg_labels(corpus)

    def run_logistic():
        model = LogisticRegression(num_classes=4, epochs=15, seed=0)
        seconds, _ = _timed(model.fit, features, y_class)
        return seconds, model

    def run_huber():
        model = HuberLinearRegression(epochs=15, seed=0)
        seconds, _ = _timed(model.fit, features, y_reg)
        return seconds, model

    logistic_s, logistic = _best_of(run_logistic)
    logits = logistic.decision_function(features[:64])
    huber_s, huber = _best_of(run_huber)
    huber_pred = huber.predict(features[:64])
    return {
        "logistic_fit_s": round(logistic_s, 4),
        "logistic_logits_head": np.round(logits[:2], 12).tolist(),
        "logistic_logits_checksum": round(float(logits.sum()), 10),
        "huber_fit_s": round(huber_s, 4),
        "huber_pred_head": np.round(huber_pred[:8], 12).tolist(),
        "huber_pred_checksum": round(float(huber_pred.sum()), 10),
    }


# -- end-to-end multi-head training ----------------------------------------- #


def _multihead_scale() -> ModelScale:
    return ModelScale(
        tfidf_features=8000,
        embed_dim=32,
        num_kernels=48,
        lstm_hidden=48,
        epochs=3,
        max_len_char=168,
        max_len_word=48,
        batch_size=16,
        seed=0,
    )


def bench_multihead() -> dict:
    """Full ``QueryFacilitator.fit`` (all four heads) per neural family."""
    workload = generate_sdss_workload(n_sessions=300, seed=13)
    scale = _multihead_scale()
    out: dict = {"n_statements": len(workload)}
    total = 0.0
    for model_name in ("clstm", "ccnn"):

        def run_once():
            facilitator = QueryFacilitator(model_name=model_name, scale=scale)
            seconds, _ = _timed(facilitator.fit, workload)
            return seconds, facilitator

        fit_s, _ = _best_of(run_once)
        out[f"{model_name}_fit_s"] = round(fit_s, 4)
        total += fit_s
    out["end_to_end_s"] = round(total, 4)
    return out


# -- smoke reference + mode ------------------------------------------------- #


def naive_fit(model, statements: list[str], labels: np.ndarray):
    """The naive training loop the engine replaces, as a reference.

    Re-tokenizes and re-encodes every batch of every epoch, and pads
    every batch to the model's full length cap (fixed-width training).
    Batch composition matches the engine's legacy (``bucket=False``) mode
    — same seeded permutations — and LSTM outputs are exactly invariant
    to trailing padding, so for LSTM models this loop's seeded result is
    bit-identical to the engine's while doing all the redundant work the
    engine avoids.
    """
    statements = list(statements)
    vocab = model._build_vocab(statements)
    model.encoder = SequenceEncoder(vocab, model.level, model._max_len())
    model.network = model._build_network(len(vocab), vocab.pad_id)
    optimizer = AdaMax(
        model.network.parameters(),
        lr=model.hyper.lr,
        weight_decay=model.hyper.weight_decay,
    )
    targets = model._encode_targets(labels)
    n = len(statements)
    batch = model.hyper.batch_size
    cap = model._max_len()
    model.network.train()
    for _ in range(model.hyper.epochs):
        order = model.rng.permutation(n)
        for start in range(0, n, batch):
            chosen = order[start : start + batch]
            encoded = [
                model.encoder.encode(statements[i]) for i in chosen
            ]  # re-encoded every epoch
            ids = pad_sequences(encoded, pad_id=vocab.pad_id, max_len=cap)
            if ids.shape[1] < cap:  # fixed-width: always pad to the cap
                ids = np.pad(
                    ids,
                    ((0, 0), (0, cap - ids.shape[1])),
                    constant_values=vocab.pad_id,
                )
            lengths = np.maximum((ids != vocab.pad_id).sum(axis=1), 1)
            model._train_step(ids, lengths, targets[chosen], None, optimizer)
    model.network.eval()
    return model


def _smoke_model(bucket: bool):
    return TextLSTMModel(
        level="char",
        task=TaskKind.CLASSIFICATION,
        num_classes=2,
        hidden=16,
        num_layers=1,
        hyper=_hyper(
            embed_dim=16,
            epochs=2,
            max_len_char=160,
            batch_size=8,
            seed=0,
            bucket=bucket,
        ),
    )


def run_smoke(n: int = 96) -> dict:
    """Small-N smoke: engine vs naive loop on a repetitive corpus.

    Wall-clock-ratio only (no checked-in baseline needed); used by the
    tier-1 smoke test to assert the bucketed+fused engine still beats a
    naive per-epoch re-encoding fixed-width loop, that the legacy
    (``bucket=False``) mode matches the naive loop's seeded predictions
    exactly, and that the fast mode is deterministic.
    """
    corpus = make_corpus(n, 0.70, seed=7)
    labels = _class_labels(n)
    hold = make_corpus(32, 0.0, seed=3)

    # min-of-2 on both sides: a CI box's scheduler hiccup during a
    # single run must not flip the wall-clock assertion
    fast = _smoke_model(bucket=True)
    t_fast, _ = _timed(fast.fit, corpus, labels)
    fast_proba = fast.predict_proba(hold)

    fast2 = _smoke_model(bucket=True)
    t_fast2, _ = _timed(fast2.fit, corpus, labels)
    t_fast = min(t_fast, t_fast2)
    deterministic = bool(np.array_equal(fast_proba, fast2.predict_proba(hold)))

    naive = _smoke_model(bucket=False)
    t_naive, _ = _timed(naive_fit, naive, corpus, labels)
    naive_proba = naive.predict_proba(hold)

    naive2 = _smoke_model(bucket=False)
    t_naive2, _ = _timed(naive_fit, naive2, corpus, labels)
    t_naive = min(t_naive, t_naive2)

    legacy = _smoke_model(bucket=False)
    legacy.fit(corpus, labels)
    legacy_proba = legacy.predict_proba(hold)

    return {
        "n": n,
        "fast_s": t_fast,
        "naive_s": t_naive,
        "speedup_vs_naive": t_naive / t_fast if t_fast > 0 else float("inf"),
        "invariant_legacy_equals_naive": bool(
            np.allclose(legacy_proba, naive_proba, rtol=0, atol=1e-12)
        ),
        "invariant_fast_deterministic": deterministic,
    }


# -- harness ---------------------------------------------------------------- #


def _ratio(before: float | None, after: float | None) -> float | None:
    if not before or not after:
        return None
    return round(before / after, 2)


def _close(a, b, rtol=1e-6, atol=1e-9) -> bool:
    return bool(np.allclose(np.asarray(a), np.asarray(b), rtol=rtol, atol=atol))


def record_baseline() -> dict:
    """Measure the current implementation and store it as the baseline."""
    baseline = {
        "recorded": "pre-change training engine (PR 4 state), same corpora/seeds",
        "lstm": bench_lstm(bucket=False),
        "lstm_unique": {
            "epoch_s": bench_lstm(bucket=False, repetition=0.0)["epoch_s"]
        },
        "cnn": bench_cnn(bucket=False),
        "cnn_unique": {
            "epoch_s": bench_cnn(bucket=False, repetition=0.0)["epoch_s"]
        },
        "sparse": bench_sparse(),
        "multihead": bench_multihead(),
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    return baseline


def run() -> dict:
    """Full benchmark; returns the report dict and writes the JSON."""
    if not BASELINE_PATH.exists():
        raise SystemExit(
            "baseline_training.json missing; run with --record-baseline "
            "against the pre-change implementation first"
        )
    baseline = json.loads(BASELINE_PATH.read_text())

    # timing runs: the engine as shipped (bucketed batching on)
    lstm_after = bench_lstm(bucket=True)
    lstm_unique_after = bench_lstm(bucket=True, repetition=0.0)
    cnn_after = bench_cnn(bucket=True)
    cnn_unique_after = bench_cnn(bucket=True, repetition=0.0)
    sparse_after = bench_sparse()
    multihead_after = bench_multihead()

    # equivalence runs: bucketing off -> identical batch composition to the
    # pre-change loop, so only kernel op-reordering separates the curves
    lstm_eq = bench_lstm(bucket=False)
    cnn_eq = bench_cnn(bucket=False)

    before_lstm = baseline["lstm"]
    before_cnn = baseline["cnn"]
    before_sparse = baseline["sparse"]
    before_multi = baseline["multihead"]

    invariants = {
        "lstm_loss_curve_matches_prechange": _close(
            lstm_eq["loss_history"], before_lstm["loss_history"]
        ),
        "lstm_predictions_match_prechange": _close(
            lstm_eq["proba_head"], before_lstm["proba_head"]
        )
        and _close(
            lstm_eq["proba_checksum"], before_lstm["proba_checksum"], rtol=1e-8
        ),
        "cnn_loss_curve_matches_prechange": _close(
            cnn_eq["loss_history"], before_cnn["loss_history"]
        ),
        "cnn_predictions_match_prechange": _close(
            cnn_eq["pred_head"], before_cnn["pred_head"]
        )
        and _close(
            cnn_eq["pred_checksum"], before_cnn["pred_checksum"], rtol=1e-8
        ),
        "logistic_predictions_match_prechange": _close(
            sparse_after["logistic_logits_head"],
            before_sparse["logistic_logits_head"],
        )
        and _close(
            sparse_after["logistic_logits_checksum"],
            before_sparse["logistic_logits_checksum"],
            rtol=1e-8,
        ),
        "huber_predictions_match_prechange": _close(
            sparse_after["huber_pred_head"], before_sparse["huber_pred_head"]
        )
        and _close(
            sparse_after["huber_pred_checksum"],
            before_sparse["huber_pred_checksum"],
            rtol=1e-8,
        ),
    }

    speedup = {
        "lstm_epoch": _ratio(before_lstm["epoch_s"], lstm_after["epoch_s"]),
        "lstm_epoch_unique": _ratio(
            baseline.get("lstm_unique", {}).get("epoch_s"),
            lstm_unique_after["epoch_s"],
        ),
        "cnn_epoch": _ratio(before_cnn["epoch_s"], cnn_after["epoch_s"]),
        "cnn_epoch_unique": _ratio(
            baseline.get("cnn_unique", {}).get("epoch_s"),
            cnn_unique_after["epoch_s"],
        ),
        "logistic_fit": _ratio(
            before_sparse["logistic_fit_s"], sparse_after["logistic_fit_s"]
        ),
        "huber_fit": _ratio(
            before_sparse["huber_fit_s"], sparse_after["huber_fit_s"]
        ),
        "end_to_end_multihead": _ratio(
            before_multi["end_to_end_s"], multihead_after["end_to_end_s"]
        ),
        "multihead_clstm": _ratio(
            before_multi["clstm_fit_s"], multihead_after["clstm_fit_s"]
        ),
        "multihead_ccnn": _ratio(
            before_multi["ccnn_fit_s"], multihead_after["ccnn_fit_s"]
        ),
    }

    report = {
        "benchmark": "training",
        "baseline": (
            "benchmarks/baseline_training.json "
            "(pre-change engine, same corpora/seeds)"
        ),
        "before": baseline,
        "after": {
            "lstm": lstm_after,
            "lstm_unique": {"epoch_s": lstm_unique_after["epoch_s"]},
            "cnn": cnn_after,
            "cnn_unique": {"epoch_s": cnn_unique_after["epoch_s"]},
            "sparse": sparse_after,
            "multihead": multihead_after,
            "lstm_equivalence_mode": lstm_eq,
            "cnn_equivalence_mode": cnn_eq,
        },
        "speedup_before_over_after": speedup,
        "equivalence_invariants": invariants,
        "targets": {
            "lstm_epoch_min": 3.0,
            "end_to_end_multihead_min": 2.0,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


if __name__ == "__main__":
    if "--record-baseline" in sys.argv:
        result = record_baseline()
        print(json.dumps(
            {
                "lstm_epoch_s": result["lstm"]["epoch_s"],
                "cnn_epoch_s": result["cnn"]["epoch_s"],
                "logistic_fit_s": result["sparse"]["logistic_fit_s"],
                "huber_fit_s": result["sparse"]["huber_fit_s"],
                "end_to_end_s": result["multihead"]["end_to_end_s"],
            },
            indent=2,
        ))
    else:
        result = run()
        print(json.dumps(result["speedup_before_over_after"], indent=2))
        print(json.dumps(result["equivalence_invariants"], indent=2))
