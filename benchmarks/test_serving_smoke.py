"""Tier-1 smoke for the serving layer (small N, fails fast).

Runs :func:`bench_serving.run_smoke` on a 250-statement repetitive corpus
and asserts the serving path still (a) beats the per-statement insights
loop via micro-batching, (b) returns predictions identical to it, and
(c) streams gzipped logs with bounded memory instead of materializing
them. The full harness (``PYTHONPATH=src python benchmarks/bench_serving.py``)
regenerates ``BENCH_serving.json`` with the ≥5x acceptance numbers.
"""

from bench_serving import run_smoke

from conftest import run_once


def test_serving_smoke(benchmark):
    result = run_once(benchmark, run_smoke, 250)

    throughput = result["throughput"]
    assert throughput["invariant_batched_equals_loop"], (
        "micro-batched insights diverged from the per-statement loop"
    )
    # even at smoke scale the batched path must clearly win; the full
    # benchmark guards the >= 5x acceptance target
    assert throughput["speedup_batched"] > 2.0
    assert throughput["batches"] < throughput["n_statements"]
    assert throughput["insight_cache_hit_rate"] > 0.5

    streaming = result["streaming_io"]
    assert streaming["invariant_counts_equal"]
    # streaming must stay bounded: well under the materialized peak and
    # under an absolute per-pass allowance regardless of file size
    assert streaming["streaming_peak_bytes"] < 0.5 * streaming["materialized_peak_bytes"]
    assert streaming["streaming_peak_bytes"] < 2_000_000
