"""Workload-analytics benchmark: the chunked map-combine-reduce engine.

Measures the PR's three claims and records them in ``BENCH_analytics.json``
at the repo root:

1. **Template mining** — the seed implementation (uncached regex passes
   per hit, a ``list[str]`` of every member statement per template,
   ``np.mean`` at the end) versus the engine's streaming aggregate
   (digest LRU + memo + per-template counters + one example), serial,
   warm-LRU and pooled, on three corpus shapes: the paper-realistic
   70%-repetitive bot corpus (bounded template pool — Figure 20's SDSS
   regime), a structurally heterogeneous 70%-repetitive corpus
   (SQLShare-ish, thousands of rare templates) and an all-unique corpus
   (the caches' worst case). Reports must agree field for field. Target:
   pooled ≥ 3x the seed loop on the repetitive corpus **given cores** —
   the pooled gain is bounded by ``min(workers, host_cpus)``, so on a
   1-core host the pooled arm reads as sharding overhead, not capacity
   (same framing as ``bench_scale.py``), and the core-independent
   evidence is the serial/warm algorithmic speedup plus the pooled
   bit-identity invariant.
2. **Bulk insights** — scoring a workload one ``facilitator.insights()``
   call at a time (the only offline option before this PR: per-statement
   featurization, per-head loop) versus :func:`repro.analytics.insights.bulk_insights`
   (chunked ``insights_batch`` through the compiled plan). Outputs must be
   JSON-identical modulo the plan's float32 round-off — both arms are also
   run plan-off to record exact equality. Target: ≥ 2x.
3. **Flat memory** — tracemalloc peak of an engine pass over a generated
   log stream as the log grows 10x with the aggregate held constant (fixed
   sessions × templates, growing hits). Target: peak within ±20%.

Speedups here are algorithmic (cache + counters + batching), not
parallelism: CI boxes often expose one core (``host_cpus`` is recorded),
so the pooled arm mainly demonstrates bit-identity under fan-out, and its
time is reported rather than gated.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_analytics.py [N]

The pytest smoke mode lives in ``test_analytics_smoke.py`` (small N,
asserts the engine beats the seed loop and streaming == in-memory) so
tier-1 catches regressions without the full benchmark's runtime.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import time
import tracemalloc
from collections.abc import Iterator
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

from bench_featurization import make_corpus
from bench_serving import REPETITION, train_facilitator

from repro.analysis.templates import mine_log_templates
from repro.analysis.repetition import repetition_histogram_of_log
from repro.analytics.insights import bulk_insights
from repro.sqlang.normalize import _template_of_uncached, template_cache_clear
from repro.workloads.records import LogEntry

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_analytics.json"

#: Hits per synthetic session in the benchmark logs.
SESSION_LENGTH = 10


def _timed(fn, *args):
    start = time.perf_counter()
    out = fn(*args)
    return time.perf_counter() - start, out


#: Bot/admin query shapes: each masks to ONE template under ``template_of``
#: (constants vary, structure does not) — the SDSS regime of Figure 20,
#: where a handful of programmatic templates dominate the log.
BOT_SHAPES = [
    "SELECT objID, ra, dec FROM PhotoObj WHERE ra BETWEEN {a} AND {b}",
    "SELECT TOP {k} * FROM SpecObj WHERE z > {a} AND zConf > {b}",
    "SELECT p.objID FROM PhotoObj p JOIN SpecObj s ON p.objID = s.bestObjID"
    " WHERE s.z BETWEEN {a} AND {b}",
    "SELECT count(*) FROM PhotoObj WHERE htmid BETWEEN {k} AND {j}",
    "SELECT name FROM RunQA WHERE run = {k} AND field = {j}",
    "SELECT u, g, r, i FROM Star WHERE g - r > {a} AND r < {b}",
    "EXEC spGetSDSS {k}, {j}, '{s}'",
    "SELECT dbo.fGetNearbyObjEq({a}, {b}, {c})",
]


def make_bot_statements(n: int, repetition: float, seed: int = 7) -> list[str]:
    """SDSS-bot-shaped corpus: a bounded masked-template pool.

    Distinct statements are the shapes above instantiated with random
    constants; ``repetition`` fraction of hits are verbatim re-submissions
    of earlier statements. Distinct-statement count grows with ``n`` but
    the mined template count stays ~``len(BOT_SHAPES)`` — the shape that
    dominates real SDSS traffic (Figure 20 / Appendix B.3).
    """
    rng = np.random.default_rng(seed)
    n_unique = max(1, int(round(n * (1.0 - repetition))))
    unique = [
        BOT_SHAPES[int(rng.integers(len(BOT_SHAPES)))].format(
            a=round(float(rng.uniform(0, 360)), 4),
            b=round(float(rng.uniform(0, 360)), 4),
            c=round(float(rng.uniform(0, 5)), 4),
            k=int(rng.integers(10**6)),
            j=int(rng.integers(10**6)),
            s=f"tag{int(rng.integers(10**4))}",
        )
        for _ in range(n_unique)
    ]
    corpus = list(unique)
    while len(corpus) < n:
        corpus.append(unique[int(rng.integers(len(unique)))])
    rng.shuffle(corpus)
    return corpus


def make_log(
    n: int, repetition: float, seed: int = 7, shape: str = "bot"
) -> list[LogEntry]:
    """A synthetic raw log cut into sessions.

    ``shape="bot"`` uses :func:`make_bot_statements` (bounded template
    pool); ``shape="mixed"`` uses ``make_corpus`` (structurally
    heterogeneous statements — thousands of rare templates, the
    SQLShare-ish worst case for template-level caching).
    """
    if shape == "bot":
        corpus = make_bot_statements(n, repetition, seed=seed)
    else:
        corpus = make_corpus(n, repetition, seed=seed)
    rng = np.random.default_rng(seed)
    cpu = rng.exponential(2.0, size=n)
    return [
        LogEntry(
            statement=s,
            session_id=i // SESSION_LENGTH,
            session_class="bot" if (i // SESSION_LENGTH) % 3 else "human",
            error_class="success",
            answer_size=1.0,
            cpu_time=float(cpu[i]),
            ip=f"10.0.{(i // SESSION_LENGTH) % 256}.{(i // SESSION_LENGTH) // 256}",
            timestamp=float(i),
        )
        for i, s in enumerate(corpus)
    ]


# -- arm 1: template mining --------------------------------------------------- #


def seed_mine_log_templates(entries: list[LogEntry]) -> list[dict]:
    """The pre-engine implementation, reproduced as the baseline arm.

    Faithful to the seed's costs: three regex passes per hit (no cache),
    every member statement retained per template, distinct counting via a
    set over the full string lists, means via ``np.mean`` at the end.
    """
    statements: dict[str, list[str]] = {}
    cpu_times: dict[str, list[float]] = {}
    classes: dict[str, dict[str, int]] = {}
    for entry in entries:
        template = _template_of_uncached(entry.statement)
        statements.setdefault(template, []).append(entry.statement)
        if entry.cpu_time is not None:
            cpu_times.setdefault(template, []).append(float(entry.cpu_time))
        if entry.session_class is not None:
            per = classes.setdefault(template, {})
            per[entry.session_class] = per.get(entry.session_class, 0) + 1
    report = [
        {
            "template": template,
            "count": len(members),
            "distinct_statements": len(set(members)),
            "example": members[0],
            "mean_cpu_time": (
                float(np.mean(cpu_times[template]))
                if template in cpu_times
                else None
            ),
            "session_classes": classes.get(template, {}),
        }
        for template, members in statements.items()
    ]
    report.sort(key=lambda row: (-row["count"], row["template"]))
    return report


def _as_rows(stats) -> list[dict]:
    """TemplateStats → seed-report-shaped dicts (outside any timed region)."""
    return [dataclasses.asdict(s) for s in stats]


def _reports_agree(seed_report: list[dict], engine_report: list[dict]) -> bool:
    """Field-for-field agreement modulo float representation of the mean."""
    if len(seed_report) != len(engine_report):
        return False
    for a, b in zip(seed_report, engine_report):
        if (
            a["template"] != b["template"]
            or a["count"] != b["count"]
            or a["distinct_statements"] != b["distinct_statements"]
            or a["example"] != b["example"]
            or a["session_classes"] != b["session_classes"]
        ):
            return False
        ma, mb = a["mean_cpu_time"], b["mean_cpu_time"]
        if (ma is None) != (mb is None):
            return False
        if ma is not None and abs(ma - mb) > 1e-9 * max(abs(ma), 1.0):
            return False
    return True


def bench_template_mining(
    n: int, repetition: float, workers: int = 2, shape: str = "bot"
) -> dict:
    """Seed loop vs engine (serial and pooled) on one synthetic log."""
    entries = make_log(n, repetition, shape=shape)
    # interleave the arms' repeats so slow-neighbour drift on shared CI
    # hosts biases every arm alike; take each arm's best. The engine arms
    # clear the template LRU first: each repeat is the cold single pass,
    # same footing as the cacheless seed arm.
    t_seed = t_engine = t_warm = t_pooled = math.inf
    for _ in range(3):
        t, seed_report = _timed(seed_mine_log_templates, entries)
        t_seed = min(t_seed, t)
        template_cache_clear()
        t, engine_stats = _timed(mine_log_templates, entries)
        t_engine = min(t_engine, t)
        # warm arm: the LRU is primed by the cold run just above — the
        # steady state when the same log is analysed again (repetition
        # pass, template pass, experiment reruns)
        t, _ = _timed(mine_log_templates, entries)
        t_warm = min(t_warm, t)
        template_cache_clear()
        t, pooled_stats = _timed(
            lambda: mine_log_templates(entries, workers=workers)
        )
        t_pooled = min(t_pooled, t)
    engine_serial = _as_rows(engine_stats)
    engine_pooled = _as_rows(pooled_stats)
    return {
        "n_hits": n,
        "corpus_shape": shape,
        "repetition_level": repetition,
        "n_templates": len(seed_report),
        "seed_loop_s": round(t_seed, 4),
        "engine_serial_s": round(t_engine, 4),
        "engine_warm_lru_s": round(t_warm, 4),
        "engine_pooled_s": round(t_pooled, 4),
        "pooled_workers": workers,
        "speedup_engine_vs_seed": round(t_seed / t_engine, 2) if t_engine else None,
        "speedup_warm_vs_seed": round(t_seed / t_warm, 2) if t_warm else None,
        "speedup_pooled_vs_seed": round(t_seed / t_pooled, 2) if t_pooled else None,
        "invariant_engine_equals_seed": _reports_agree(
            seed_report, engine_serial
        ),
        "invariant_pooled_equals_serial": engine_pooled == engine_serial,
    }


# -- arm 2: bulk insights ------------------------------------------------------ #


def naive_insights_loop(facilitator, statements: list[str], path: Path) -> None:
    """The only offline option before this PR: one statement at a time."""
    with path.open("w", encoding="utf-8") as out:
        for statement in statements:
            insight = facilitator.insights_batch([statement], use_plan=False)[0]
            out.write(json.dumps(insight.to_dict(), sort_keys=True) + "\n")


def bench_bulk_insights(n: int, workers: int = 2, chunk_size: int = 512) -> dict:
    """Per-statement loop vs chunked compiled-plan bulk scoring.

    ``chunk_size`` is set below the default so the bulk arms actually
    stream in several chunks at bench scale (batching gains saturate well
    before 512 statements, so this does not flatter the bulk arm).
    """
    facilitator = train_facilitator()
    statements = make_corpus(n, REPETITION, seed=7)
    with TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        artifact = tmp / "fac.bin"
        facilitator.save(artifact)
        t_naive, _ = _timed(
            naive_insights_loop, facilitator, statements, tmp / "naive.jsonl"
        )
        t_bulk, serial_stats = _timed(
            lambda: bulk_insights(
                artifact, statements, tmp / "bulk.jsonl", chunk_size=chunk_size
            )
        )
        t_pooled, pooled_stats = _timed(
            lambda: bulk_insights(
                artifact,
                statements,
                tmp / "pooled.jsonl",
                chunk_size=chunk_size,
                workers=workers,
            )
        )
        bulk_lines = (tmp / "bulk.jsonl").read_text().splitlines()
        pooled_lines = (tmp / "pooled.jsonl").read_text().splitlines()
        # exact-parity leg: the plan scores in float32, so compare the
        # chunked path against the naive loop with the plan off too
        exact = tmp / "exact.jsonl"
        bulk_insights(
            artifact,
            statements,
            exact,
            chunk_size=chunk_size,
            facilitator=_plan_off(facilitator),
        )
        naive_lines = (tmp / "naive.jsonl").read_text().splitlines()
        exact_lines = exact.read_text().splitlines()
    return {
        "n_statements": n,
        "naive_loop_s": round(t_naive, 4),
        "bulk_serial_s": round(t_bulk, 4),
        "bulk_pooled_s": round(t_pooled, 4),
        "pooled_workers": workers,
        "pooled_pool_started": pooled_stats.pooled,
        "naive_throughput_stmt_per_s": round(n / t_naive, 1),
        "bulk_throughput_stmt_per_s": round(n / t_bulk, 1),
        "speedup_bulk_vs_naive": round(t_naive / t_bulk, 2) if t_bulk else None,
        "invariant_pooled_equals_serial": pooled_lines == bulk_lines,
        "invariant_chunked_equals_naive_plan_off": exact_lines == naive_lines,
        "chunks": serial_stats.chunks,
    }


def _plan_off(facilitator):
    facilitator.use_plan = False
    return facilitator


# -- arm 3: flat memory -------------------------------------------------------- #


def stream_log(n: int, n_templates: int = 200, n_sessions: int = 50) -> Iterator[LogEntry]:
    """A log generator with size-independent aggregate state.

    The distinct statements and session count are fixed while ``n`` grows,
    so a streaming pass's peak memory must stay flat — any growth is the
    engine accidentally retaining records.
    """
    pool = make_corpus(n_templates, 0.0, seed=13)
    for i in range(n):
        yield LogEntry(
            statement=pool[i % n_templates],
            session_id=i % n_sessions,
            session_class="bot",
            error_class="success",
            answer_size=1.0,
            cpu_time=0.5,
            ip=f"10.0.0.{i % n_sessions}",
            timestamp=float(i // n_sessions),
        )


def traced_peak(fn, *args) -> tuple[int, object]:
    tracemalloc.start()
    tracemalloc.reset_peak()
    out = fn(*args)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, out


def bench_flat_memory(base_n: int, growth: int = 10) -> dict:
    """Streaming peak at N vs growth×N records over a fixed aggregate."""

    def scan(n: int):
        return repetition_histogram_of_log(stream_log(n), chunk_size=2048)

    peak_small, hist_small = traced_peak(scan, base_n)
    peak_large, hist_large = traced_peak(scan, base_n * growth)
    # both logs sample the same sessions/templates, so the histograms
    # must have the same shape (same totals: one sample per session)
    return {
        "base_records": base_n,
        "grown_records": base_n * growth,
        "growth_factor": growth,
        "peak_bytes_base": peak_small,
        "peak_bytes_grown": peak_large,
        "peak_ratio_grown_vs_base": round(peak_large / peak_small, 3),
        "invariant_sample_totals_equal": (
            sum(hist_small.values()) == sum(hist_large.values())
        ),
    }


# -- drivers ------------------------------------------------------------------ #


def run(n: int = 20000) -> dict:
    """Full benchmark; returns the report dict and writes the JSON."""
    report = {
        "benchmark": "analytics",
        "host_cpus": os.cpu_count(),
        "template_mining_repetitive": bench_template_mining(n, REPETITION),
        "template_mining_heterogeneous": bench_template_mining(
            n, REPETITION, shape="mixed"
        ),
        "template_mining_unique": bench_template_mining(n // 4, 0.0),
        "bulk_insights": bench_bulk_insights(max(n // 10, 500)),
        "flat_memory": bench_flat_memory(base_n=max(n, 10000)),
        "targets": {
            "template_mining_pooled_speedup_min": 3.0,
            "template_mining_pooled_note": (
                "pooled speedup is bounded by min(workers, host_cpus); on "
                "hosts with one core the pooled arm time-slices a single "
                "core and records pure sharding overhead — the serial and "
                "warm-LRU speedups are the core-count-independent evidence"
            ),
            "bulk_insights_speedup_min": 2.0,
            "flat_memory_peak_ratio_max": 1.2,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_smoke(n: int = 3000) -> dict:
    """Small-N variant for the tier-1 smoke test (no JSON written)."""
    return {
        "host_cpus": os.cpu_count(),
        "template_mining_repetitive": bench_template_mining(n, REPETITION),
        "bulk_insights": bench_bulk_insights(250),
        "flat_memory": bench_flat_memory(base_n=2000),
    }


if __name__ == "__main__":
    import sys

    size = int(sys.argv[1]) if len(sys.argv) > 1 else 20000
    result = run(size)
    print(json.dumps(result, indent=2))
