"""Featurization pipeline benchmark (perf tracked from this PR onward).

Times lex / parse / featurize / encode over synthetic workloads generated
with :mod:`repro.workloads.querygen` at two repetition levels:

- **repetitive** — ~70% of statements are verbatim repeats, the regime the
  paper's Figure 20 measures in real SDSS/SQLShare logs;
- **unique** — every statement distinct (worst case for the cache).

The "before" column is the seed implementation measured on the same
corpora (same generator, same seeds, n=2000) and stored in
``baseline_seed.json``; the "after" column is re-measured live. Results
land in ``BENCH_featurization.json`` at the repo root.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_featurization.py [N]

The pytest smoke mode lives in ``test_featurization_smoke.py`` (small N,
asserts the cache actually speeds repeated analysis up) so tier-1 catches
perf regressions without the full benchmark's runtime.
"""

from __future__ import annotations

import json
import os
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.sqlang.features import extract_features
from repro.sqlang.lexer import tokenize
from repro.sqlang.parser import parse_sql
from repro.sqlang.pipeline import AnalysisPipeline
from repro.text.encode import SequenceEncoder, pad_sequences
from repro.text.vocab import build_char_vocab, build_word_vocab
from repro.workloads.querygen import SDSS_TEMPLATES, generate_statement
from repro.workloads.schema import sdss_catalog

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "baseline_seed.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_featurization.json"

#: Paper-realistic repetition level (Figure 20: most statements recur).
REPETITION = 0.70


def make_corpus(n: int, repetition: float, seed: int = 7) -> list[str]:
    """~``repetition`` fraction of statements are verbatim repeats.

    Must stay in sync with the generator used for ``baseline_seed.json``
    (same seeds → same statements → comparable timings).
    """
    rng = np.random.default_rng(seed)
    catalog = sdss_catalog()
    names = list(SDSS_TEMPLATES)
    n_unique = max(1, int(round(n * (1.0 - repetition))))
    unique = [
        generate_statement(names[int(rng.integers(len(names)))], rng, catalog)
        for _ in range(n_unique)
    ]
    corpus = list(unique)
    while len(corpus) < n:
        corpus.append(unique[int(rng.integers(len(unique)))])
    rng.shuffle(corpus)
    return corpus


def _timed(fn, *args):
    start = time.perf_counter()
    out = fn(*args)
    return time.perf_counter() - start, out


def _bench_corpus(corpus: list[str], workers: int | None) -> dict:
    """Time every stage over one corpus, verifying cache invariance."""
    t_lex, _ = _timed(lambda: [tokenize(s) for s in corpus])
    t_parse, _ = _timed(lambda: [parse_sql(s) for s in corpus])
    t_uncached, uncached = _timed(lambda: [extract_features(s) for s in corpus])

    pipe = AnalysisPipeline(max_size=len(corpus) + 1)
    t_pipe, analyses = _timed(pipe.analyze_batch, corpus)
    identical = all(
        a.features == f for a, f in zip(analyses, uncached)
    )
    # repeat pass: everything is a cache hit (the serving steady state)
    t_warm, _ = _timed(pipe.analyze_batch, corpus)

    out = {
        "lex_s": round(t_lex, 4),
        "parse_s": round(t_parse, 4),
        "featurize_uncached_s": round(t_uncached, 4),
        "featurize_pipeline_s": round(t_pipe, 4),
        "featurize_warm_s": round(t_warm, 4),
        "cache_hit_rate": round(pipe.stats.hit_rate, 4),
        "distinct_statements": pipe.stats.misses,
        "invariant_cached_equals_uncached": identical,
    }
    if workers and workers > 1:
        par = AnalysisPipeline(max_size=len(corpus) + 1, workers=workers)
        t_par, par_analyses = _timed(par.analyze_batch, corpus)
        out["featurize_pipeline_parallel_s"] = round(t_par, 4)
        out["parallel_workers"] = workers
        out["invariant_parallel_equals_uncached"] = all(
            a.features == f for a, f in zip(par_analyses, uncached)
        )
    return out


def _bench_encode(corpus: list[str]) -> dict:
    char_vocab = build_char_vocab(corpus[:500])
    word_vocab = build_word_vocab(corpus[:500])
    cenc = SequenceEncoder(char_vocab, "char", max_len=200)
    wenc = SequenceEncoder(word_vocab, "word", max_len=64)
    t_char, _ = _timed(cenc.encode_batch, corpus)
    t_word, _ = _timed(wenc.encode_batch, corpus)
    seqs = [cenc.encode(s) for s in corpus]
    t_pad, _ = _timed(lambda: pad_sequences(seqs, max_len=200))
    return {
        "char_batch_s": round(t_char, 4),
        "word_batch_s": round(t_word, 4),
        "pad_s": round(t_pad, 4),
    }


def _bench_memory(n: int = 1000) -> dict:
    """Retained bytes of ASTs / token lists for ``n`` distinct statements.

    Comparable to the ``memory`` block of ``baseline_seed.json`` (measured
    pre-``__slots__``/NamedTuple on the same corpus).
    """
    corpus = make_corpus(n, 0.0, seed=11)
    tracemalloc.start()
    base, _ = tracemalloc.get_traced_memory()
    asts = [parse_sql(s) for s in corpus]
    cur, _ = tracemalloc.get_traced_memory()
    ast_bytes = cur - base
    del asts
    base, _ = tracemalloc.get_traced_memory()
    tokens = [tokenize(s) for s in corpus]
    cur, _ = tracemalloc.get_traced_memory()
    token_bytes = cur - base
    del tokens
    tracemalloc.stop()
    return {
        "ast_bytes_1000_stmts": ast_bytes,
        "token_bytes_1000_stmts": token_bytes,
    }


def _ratio(before: float | None, after: float | None) -> float | None:
    if not before or not after:
        return None
    return round(before / after, 2)


def run(n: int = 2000, workers: int | None = None) -> dict:
    """Full benchmark; returns the report dict and writes the JSON."""
    baseline = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else {}
    )
    repetitive = make_corpus(n, REPETITION, seed=7)
    unique = make_corpus(n, 0.0, seed=11)

    after = {
        "repetitive": _bench_corpus(repetitive, workers),
        "unique": _bench_corpus(unique, workers),
        "encode": _bench_encode(repetitive),
        "memory": _bench_memory(),
    }

    before_rep = baseline.get("repetitive", {})
    before_uniq = baseline.get("unique", {})
    before_enc = baseline.get("encode", {})
    before_mem = baseline.get("memory", {})
    speedup = {
        "featurize_repetitive": _ratio(
            before_rep.get("featurize_s"),
            after["repetitive"]["featurize_pipeline_s"],
        ),
        "featurize_unique": _ratio(
            before_uniq.get("featurize_s"),
            after["unique"]["featurize_pipeline_s"],
        ),
        "featurize_warm_repetitive": _ratio(
            before_rep.get("featurize_s"),
            after["repetitive"]["featurize_warm_s"],
        ),
        "lex_unique": _ratio(
            before_uniq.get("lex_s"), after["unique"]["lex_s"]
        ),
        "parse_unique": _ratio(
            before_uniq.get("parse_s"), after["unique"]["parse_s"]
        ),
        "encode_char": _ratio(
            before_enc.get("char_batch_s"), after["encode"]["char_batch_s"]
        ),
        "encode_word": _ratio(
            before_enc.get("word_batch_s"), after["encode"]["word_batch_s"]
        ),
        "pad": _ratio(before_enc.get("pad_s"), after["encode"]["pad_s"]),
    }
    memory_ratio = {
        "ast_bytes": _ratio(
            before_mem.get("ast_bytes_1000_stmts"),
            after["memory"]["ast_bytes_1000_stmts"],
        ),
        "token_bytes": _ratio(
            before_mem.get("token_bytes_1000_stmts"),
            after["memory"]["token_bytes_1000_stmts"],
        ),
    }

    report = {
        "benchmark": "featurization",
        "n_statements": n,
        "repetition_levels": {"repetitive": REPETITION, "unique": 0.0},
        "baseline": "benchmarks/baseline_seed.json (seed implementation, same corpora)",
        "before": baseline,
        "after": after,
        "speedup_before_over_after": speedup,
        "memory_reduction_before_over_after": memory_ratio,
        "targets": {
            "featurize_repetitive_min": 5.0,
            "featurize_unique_min": 1.5,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_smoke(n: int = 300) -> dict:
    """Small-N smoke: cold batch vs warm batch on a repetitive corpus.

    Wall-clock independent of the checked-in baseline; used by the tier-1
    smoke test to assert the cache still speeds repeated analysis up.
    """
    corpus = make_corpus(n, REPETITION, seed=7)
    pipe = AnalysisPipeline(max_size=n + 1)
    t_cold, analyses = _timed(pipe.analyze_batch, corpus)
    t_warm, warm = _timed(pipe.analyze_batch, corpus)
    sample = corpus[:: max(n // 25, 1)]
    identical = all(
        pipe.analyze(s).features == extract_features(s) for s in sample
    )
    return {
        "n": n,
        "cold_s": t_cold,
        "warm_s": t_warm,
        "speedup_cached": t_cold / t_warm if t_warm > 0 else float("inf"),
        "hit_rate": pipe.stats.hit_rate,
        "invariant": identical,
    }


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    workers = os.cpu_count() if "--parallel" in sys.argv else None
    result = run(size, workers=workers)
    print(json.dumps(result["speedup_before_over_after"], indent=2))
    print(json.dumps(result["memory_reduction_before_over_after"], indent=2))
    for level in ("repetitive", "unique"):
        ok = result["after"][level]["invariant_cached_equals_uncached"]
        print(f"{level}: cached == uncached: {ok}")
