"""Extension bench: multi-task vs single-task ccnn (Sec. 8)."""

from conftest import run_once

from repro.experiments.extensions import multitask_experiment


def test_extension_multitask(benchmark, cfg):
    output = run_once(benchmark, multitask_experiment, cfg)
    print("\n" + output)
    assert "multi-task ccnn" in output
    assert "answer_size" in output
