"""Tier-1 smoke for the observability layer: overhead and export sanity.

Two guarantees, cheap enough for every CI run:

1. **Overhead** — running the featurization hot path fully instrumented
   (registry counters live, a trace active so every span also records)
   stays within a small factor of the raw uninstrumented loop. The
   instrumentation contract is "negligible on the hot path"; this is the
   tripwire that keeps it true.
2. **Export** — after exercising featurize + serve, ``GET /metrics``
   yields valid Prometheus text that parses and covers the pipeline
   cache, the service queue/latency metrics, and the per-stage span
   histogram, and a traced request's depth-0 stage sum lands close to its
   end-to-end latency.
"""

import time

from bench_featurization import make_corpus

from conftest import run_once

from repro.core.facilitator import QueryFacilitator
from repro.obs.registry import get_registry
from repro.obs.spans import traced
from repro.obs.textfmt import parse_text, render
from repro.serving import FacilitatorService
from repro.sqlang.pipeline import AnalysisPipeline
from repro.workloads.sdss import generate_sdss_workload

#: The instrumented batch path may cost at most this factor over the raw
#: per-statement loop. The real overhead budget is <5%; the batch API's
#: own savings give slack, so any regression past noise still trips this.
MAX_OVERHEAD = 1.05


def _featurization_overhead(n: int = 400, rounds: int = 5) -> dict:
    corpus = make_corpus(n, 0.0, seed=13)

    def raw_pass():
        # uninstrumented reference: a private pipeline's per-statement
        # path, cold cache, no batch counters, no active trace
        pipeline = AnalysisPipeline(max_size=len(corpus) * 2)
        for statement in corpus:
            pipeline.analyze(statement)

    def instrumented_pass():
        # everything on: batch counters, registry callbacks, active trace
        pipeline = AnalysisPipeline(max_size=len(corpus) * 2)
        with traced():
            pipeline.analyze_batch(corpus)

    def timed(fn):
        started = time.perf_counter()
        fn()
        return time.perf_counter() - started

    # the box drifts ±10% between passes, so measure the two variants
    # back-to-back each round and judge the best paired ratio: if the
    # instrumentation truly cost >5%, every pairing would show it
    pairs = [(timed(raw_pass), timed(instrumented_pass)) for _ in range(rounds)]
    factor = min(inst / raw for raw, inst in pairs)
    best_raw, best_inst = min(p[0] for p in pairs), min(p[1] for p in pairs)
    return {"raw_s": best_raw, "instrumented_s": best_inst, "factor": factor}


def test_instrumentation_overhead_is_negligible(benchmark):
    result = run_once(benchmark, _featurization_overhead)
    assert result["factor"] < MAX_OVERHEAD, (
        f"instrumented featurization is {result['factor']:.3f}x the raw "
        f"loop (budget {MAX_OVERHEAD}x)"
    )


def test_metrics_export_covers_the_hot_paths():
    workload = generate_sdss_workload(n_sessions=60, seed=29)
    facilitator = QueryFacilitator(model_name="baseline").fit(workload)
    statements = [r.statement for r in workload.records[:32]]
    with FacilitatorService(facilitator, max_wait_ms=1.0) as service:
        service.insights_many(statements, timeout=30)
        trace = service.last_trace
    text = render(get_registry().snapshot())
    parsed = parse_text(text)  # raises on malformed exposition text
    for family in (
        "repro_pipeline_cache_hits_total",
        "repro_pipeline_cache_misses_total",
        "repro_service_requests_total",
        "repro_service_queue_depth",
        "repro_service_request_latency_seconds_bucket",
        "repro_service_batch_size_bucket",
        "repro_stage_seconds_bucket",
    ):
        assert family in parsed, f"missing {family} in /metrics output"
    stages = {
        s["labels"]["stage"]
        for s in parsed["repro_stage_seconds_bucket"]["samples"]
    }
    assert any(stage.startswith("predict:") for stage in stages)
    # the traced batch's depth-0 stages account for its end-to-end time
    assert trace is not None
    assert trace["stage_total_ms"] <= trace["total_ms"] * 1.10
    assert trace["stage_total_ms"] >= trace["total_ms"] * 0.50
