"""Extension bench: workload compression for training (Sec. 8, [8])."""

from conftest import run_once

from repro.experiments.compression_extension import compression_experiment


def test_extension_compression(benchmark, cfg):
    output = run_once(benchmark, compression_experiment, cfg)
    print("\n" + output)
    assert "kcenter" in output
    assert "full" in output
