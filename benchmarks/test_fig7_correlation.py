"""Bench: regenerate Figure 7 (structural property correlation matrices)."""

from conftest import run_once

from repro.experiments.figures import fig7_correlation


def test_fig7_correlation(benchmark, cfg):
    output = run_once(benchmark, fig7_correlation, cfg)
    print("\n" + output)
    assert "SDSS" in output and "SQLShare" in output
