"""Bench: regenerate Table 1 (dataset sizes and splits)."""

from conftest import run_once

from repro.experiments.tables import table1_splits


def test_table1_splits(benchmark, cfg):
    output = run_once(benchmark, table1_splits, cfg)
    print("\n" + output)
    assert "Homogeneous Instance" in output
    assert "Train" in output
