"""Bench: regenerate Figure 14 (CPU time error across the three settings)."""

from conftest import run_once

from repro.experiments.error_analysis import fig14_error_by_setting


def test_fig14_error_by_setting(benchmark, cfg):
    output = run_once(benchmark, fig14_error_by_setting, cfg)
    print("\n" + output)
    assert "Homogeneous Instance" in output
    assert "Heterogeneous Schema" in output
