"""Bench: regenerate Table 5 (CPU time prediction, SQLShare, both
schema settings, including the `opt` optimizer-cost baseline)."""

from conftest import run_once

from repro.experiments.tables import table5_sqlshare_cpu


def test_table5_sqlshare_cpu(benchmark, cfg):
    output = run_once(benchmark, table5_sqlshare_cpu, cfg)
    print("\n" + output)
    assert "opt" in output
    assert "HeterogSchema" in output
