"""Ablation bench: clstm depth 1 vs the paper's 3 layers."""

from conftest import run_once

from repro.experiments.ablations import ablation_lstm_depth


def test_ablation_lstm_depth(benchmark, cfg):
    output = run_once(benchmark, ablation_lstm_depth, cfg)
    print("\n" + output)
    assert "layers" in output
