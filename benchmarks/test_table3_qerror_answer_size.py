"""Bench: regenerate Table 3 (answer size prediction qerror, SDSS)."""

from conftest import run_once

from repro.experiments.tables import table3_answer_size_qerror


def test_table3_qerror_answer_size(benchmark, cfg):
    output = run_once(benchmark, table3_answer_size_qerror, cfg)
    print("\n" + output)
    assert "50%" in output and "95%" in output
