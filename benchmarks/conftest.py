"""Shared benchmark fixtures.

All benches share one :class:`ExperimentConfig` (selected by ``REPRO_SCALE``,
default ``small``) and the module-level cache in
:mod:`repro.experiments.runner`, so each (model, problem, setting) trains
exactly once per pytest session regardless of how many tables reuse it.
"""

import pytest

from repro.experiments.config import default_config


@pytest.fixture(scope="session")
def cfg():
    return default_config()


def run_once(benchmark, fn, *args):
    """Run ``fn`` exactly once under the benchmark timer and return it.

    The paper tables are deterministic per config, and the heavy artifacts
    are cached, so one round measures the true cost of regenerating the
    table while keeping the suite's total runtime bounded.
    """
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
