"""Extension bench: elapsed-time vs CPU-time prediction (Sec. 8)."""

from conftest import run_once

from repro.experiments.elapsed_extension import elapsed_time_experiment


def test_extension_elapsed_time(benchmark, cfg):
    output = run_once(benchmark, elapsed_time_experiment, cfg)
    print("\n" + output)
    assert "elapsed_time" in output
    assert "cpu_time" in output
