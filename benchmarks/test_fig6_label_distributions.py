"""Bench: regenerate Figure 6 (label distributions, both workloads)."""

from conftest import run_once

from repro.experiments.figures import fig6_label_distributions


def test_fig6_label_distributions(benchmark, cfg):
    output = run_once(benchmark, fig6_label_distributions, cfg)
    print("\n" + output)
    assert "error class" in output
    assert "SQLShare CPU time" in output
