"""Tier-1 smoke for the workload-analytics engine (small N, fails fast).

Runs :func:`bench_analytics.run_smoke` — template mining on a 3000-hit
70%-repetitive bot corpus, bulk insights over 250 statements, and the
traced-peak-memory arm — and asserts the engine still (a) beats the seed
per-hit loop algorithmically, (b) produces bit-identical results
streaming, pooled and in-memory, and (c) keeps peak memory flat as the
log grows 10x. The pooled ≥1.5x gate only applies on hosts with enough
cores to parallelize (speedup is bounded by ``min(workers, host_cpus)``);
single-core CI boxes are covered by the serial and warm-LRU gates, which
are core-count independent. The full harness
(``PYTHONPATH=src python benchmarks/bench_analytics.py``) regenerates
``BENCH_analytics.json`` with the acceptance numbers.
"""

from bench_analytics import run_smoke

from conftest import run_once


def test_analytics_smoke(benchmark):
    result = run_once(benchmark, run_smoke)

    mining = result["template_mining_repetitive"]
    assert mining["invariant_engine_equals_seed"], (
        "engine template report diverged from the seed implementation"
    )
    assert mining["invariant_pooled_equals_serial"], (
        "pooled template mining diverged from the serial pass"
    )
    # algorithmic win, independent of core count: cold single pass and
    # the warm-LRU steady state (re-analysis of the same log)
    assert mining["speedup_engine_vs_seed"] > 1.3
    assert mining["speedup_warm_vs_seed"] > 2.0
    if result["host_cpus"] and result["host_cpus"] >= 4:
        assert mining["speedup_pooled_vs_seed"] > 1.5

    insights = result["bulk_insights"]
    assert insights["invariant_pooled_equals_serial"]
    assert insights["invariant_chunked_equals_naive_plan_off"]
    assert insights["speedup_bulk_vs_naive"] > 1.5

    memory = result["flat_memory"]
    assert memory["invariant_sample_totals_equal"]
    # the full benchmark gates ±20% at scale; smoke allows a little slack
    # because the base run is only a handful of chunks
    assert memory["peak_ratio_grown_vs_base"] < 1.35
