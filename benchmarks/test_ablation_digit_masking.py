"""Ablation bench: <DIGIT> masking on vs off (Sec 4.4.1)."""

from conftest import run_once

from repro.experiments.ablations import ablation_digit_masking


def test_ablation_digit_masking(benchmark, cfg):
    output = run_once(benchmark, ablation_digit_masking, cfg)
    print("\n" + output)
    assert "<DIGIT> masked" in output
    assert "raw digits" in output
