"""Extension bench: deep character CNN depth sweep (Sec. 8)."""

from conftest import run_once

from repro.experiments.deep_cnn_extension import deep_cnn_experiment


def test_extension_deep_cnn(benchmark, cfg):
    output = run_once(benchmark, deep_cnn_experiment, cfg)
    print("\n" + output)
    assert "cdeep2" in output
    assert "ccnn (shallow, Kim)" in output
