"""Async front end benchmark: connection scaling and the fleet transport.

Two claims from the serving tier's async work are measured here:

1. **Connection-scaling throughput** — open-loop ``POST /insights``
   load over 1000 mostly-idle keep-alive connections, swept across
   offered rates. *Sustained throughput* is the highest completion rate
   at a level that keeps p99 latency under the ``SLO_P99_MS`` bound
   while completing >= 99% of offered requests — throughput past the
   latency knee is not service, so it does not count. The
   thread-per-connection front wakes one OS thread per request (GIL
   convoy across 1000 threads blows out its p99 long before raw
   saturation); the asyncio front multiplexes every connection on one
   event loop with an incremental parser, a batched result bridge, and
   a reusable response buffer. The acceptance target is **>= 2x**
   async-over-thread sustained throughput with 1000 connections. Both
   fronts must return byte-identical response bodies (same
   :class:`InsightsAPI` core).

2. **Fleet transport overhead** — the closed-loop sharded-tier load of
   ``bench_scale`` driven against :class:`FleetFacilitatorService` with
   in-process TCP worker agents, recording what the length-prefixed
   JSON-over-TCP hop costs relative to local shard processes, with the
   same bit-identity and availability invariants.

Results update the ``async_frontend`` section of ``BENCH_serving.json``
and the ``fleet`` section of ``BENCH_scale.json``.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_async.py [N_IDLE]

The pytest smoke mode lives in ``test_async_smoke.py`` (small swarm,
asserts the async front still wins and stays bit-identical) so CI
catches front-end regressions without the full benchmark's runtime.
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from tempfile import TemporaryDirectory

from bench_scale import (
    FAST_BACKOFF,
    ClosedLoopLoad,
    _percentile,
    _prepare,
)

import repro
from repro.serving import (
    FleetWorkerAgent,
    FleetFacilitatorService,
    RestartBackoff,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SERVING_PATH = REPO_ROOT / "BENCH_serving.json"
SCALE_PATH = REPO_ROOT / "BENCH_scale.json"

#: p99 bound that defines "sustained": a rate level whose tail exceeds
#: this is past the latency knee and its completion rate is not counted.
SLO_P99_MS = 500.0


# --------------------------------------------------------------------------- #
# raw keep-alive HTTP client (urllib would reconnect per request)
# --------------------------------------------------------------------------- #


def _connect(address) -> socket.socket:
    return socket.create_connection(tuple(address[:2]), timeout=60)


def _request(payload: dict | None, target: str = "/insights") -> bytes:
    body = b"" if payload is None else json.dumps(payload).encode()
    method = "GET" if payload is None else "POST"
    return (
        f"{method} {target} HTTP/1.1\r\nHost: bench\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body


def _read_response(reader) -> tuple[int, bytes]:
    status = int(reader.readline().split()[1])
    length = 0
    while True:
        line = reader.readline()
        if line in (b"\r\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    return status, reader.read(length)


class _OpenLoopDriver:
    """Open-loop load over N keep-alive connections from one selector.

    The keystroke-pause traffic shape: every connection stays open and
    mostly idle, and requests *arrive on a clock* — round-robin across
    connections at ``rate_rps`` total, sent whether or not the previous
    response on that connection came back (HTTP/1.1 pipelining). A front
    end that cannot keep up shows up as completion rate falling below
    the offered rate and p99 latency blowing out — the open-loop view a
    closed-loop client hides by slowing down with the server.

    One ``selectors`` loop drives every socket so the client costs the
    same for both fronts under test.
    """

    def __init__(self, address, n_conns: int):
        self.selector = selectors.DefaultSelector()
        self.conns = []
        self.setup_s = 0.0
        started = time.perf_counter()
        for _ in range(n_conns):
            sock = _connect(address)
            sock.setblocking(False)
            state = {
                "sock": sock,
                "out": bytearray(),
                "buf": bytearray(),
                "sent_at": deque(),
                "writing": False,
            }
            self.selector.register(sock, selectors.EVENT_READ, state)
            self.conns.append(state)
        self.setup_s = time.perf_counter() - started
        self.completed = 0
        self.errors = 0
        self.latencies_ms: list[float] = []

    def _pump_out(self, state) -> None:
        sock = state["sock"]
        while state["out"]:
            try:
                n = sock.send(state["out"])
            except BlockingIOError:
                break
            except OSError:
                self.errors += 1
                state["out"].clear()
                return
            del state["out"][:n]
        want_write = bool(state["out"])
        if want_write != state["writing"]:
            state["writing"] = want_write
            events = selectors.EVENT_READ
            if want_write:
                events |= selectors.EVENT_WRITE
            self.selector.modify(sock, events, state)

    def _pump_in(self, state) -> None:
        try:
            chunk = state["sock"].recv(65536)
        except BlockingIOError:
            return
        except OSError:
            chunk = b""
        if not chunk:
            self.errors += len(state["sent_at"])
            state["sent_at"].clear()
            return
        buf = state["buf"]
        buf.extend(chunk)
        while True:
            head_end = buf.find(b"\r\n\r\n")
            if head_end < 0:
                break
            head = bytes(buf[:head_end]).decode("latin-1")
            length = 0
            for line in head.split("\r\n")[1:]:
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value)
            total = head_end + 4 + length
            if len(buf) < total:
                break
            status = int(head.split(None, 2)[1])
            del buf[:total]
            done_at = time.perf_counter()
            if state["sent_at"]:
                sent = state["sent_at"].popleft()
                if status == 200:
                    self.completed += 1
                    self.latencies_ms.append((done_at - sent) * 1000.0)
                else:
                    self.errors += 1

    def reset(self) -> None:
        self.completed = 0
        self.errors = 0
        self.latencies_ms = []

    def run(self, corpus, rate_rps: float, duration_s: float) -> float:
        """Offer ``rate_rps`` for ``duration_s``; returns measured wall."""
        interval = 1.0 / rate_rps
        started = time.perf_counter()
        deadline = started + duration_s
        next_send = started
        rr = 0
        offered = 0
        while True:
            now = time.perf_counter()
            if now >= deadline:
                break
            while next_send <= now:
                state = self.conns[rr % len(self.conns)]
                statement = corpus[(rr * 7) % len(corpus)]
                state["out"] += _request({"statement": statement})
                state["sent_at"].append(time.perf_counter())
                self._pump_out(state)
                rr += 1
                offered += 1
                next_send += interval
            for key, mask in self.selector.select(
                timeout=max(0.0, min(next_send, deadline) - now)
            ):
                if mask & selectors.EVENT_READ:
                    self._pump_in(key.data)
                if mask & selectors.EVENT_WRITE:
                    self._pump_out(key.data)
        # drain: let in-flight responses land (bounded grace)
        drain_deadline = time.perf_counter() + 10.0
        while (
            any(state["sent_at"] for state in self.conns)
            and time.perf_counter() < drain_deadline
        ):
            for key, mask in self.selector.select(timeout=0.1):
                if mask & selectors.EVENT_READ:
                    self._pump_in(key.data)
                if mask & selectors.EVENT_WRITE:
                    self._pump_out(key.data)
        self.offered = offered
        return time.perf_counter() - started

    def close(self) -> None:
        for state in self.conns:
            try:
                self.selector.unregister(state["sock"])
                state["sock"].close()
            except OSError:
                pass
        self.selector.close()


def _spawn_server(frontend: str, artifact_path, max_batch: int, conn_cap: int):
    """``repro serve`` subprocess; returns (proc, (host, port)).

    A real subprocess so the server owns its GIL — an in-process server
    would share the interpreter with the load driver and the measurement
    would be dominated by driver/server thread contention instead of the
    front ends under test.
    """
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(artifact_path),
            "--host", "127.0.0.1", "--port", "0",
            "--frontend", frontend,
            "--max-batch", str(max_batch),
            "--max-wait-ms", "2",
            "--conn-cap", str(conn_cap),
            "--idle-timeout-s", "600",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    while True:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"{frontend} server exited before binding")
        if line.startswith("serving ") and "http://" in line:
            url = line.split("http://", 1)[1].split()[0]
            host, _, port = url.partition(":")
            return proc, (host, int(port))


def bench_connection_scaling(
    artifact_path,
    corpus: list[str],
    n_conns: int = 1000,
    rates_rps=(1000.0, 2000.0, 4000.0, 8000.0),
    duration_s: float = 5.0,
    max_batch: int = 256,
) -> dict:
    """Open-loop rate sweep of both fronts at ``n_conns`` connections.

    Each offered rate is one level; a level *sustains* if p99 stays
    under :data:`SLO_P99_MS` and >= 99% of offered requests complete.
    ``sustained_throughput_req_per_s`` is the best sustaining level's
    completion rate; ``saturation_throughput_req_per_s`` is the raw
    ceiling regardless of latency, kept for context.
    """
    per_front: dict[str, dict] = {}
    parity_bodies: dict[str, bytes] = {}
    parity_payload = {"statements": corpus[:8]}
    for frontend in ("thread", "async"):
        proc, address = _spawn_server(
            frontend, artifact_path, max_batch, conn_cap=n_conns + 32
        )
        driver = None
        try:
            sock = _connect(address)
            sock.sendall(_request(parity_payload))
            with sock.makefile("rb") as reader:
                status, parity_bodies[frontend] = _read_response(reader)
            sock.close()
            assert status == 200
            driver = _OpenLoopDriver(address, n_conns)
            levels = []
            for rate_rps in rates_rps:
                driver.reset()
                wall_s = driver.run(corpus, rate_rps, duration_s)
                ordered = sorted(driver.latencies_ms)
                levels.append({
                    "offered_rps": rate_rps,
                    "offered_requests": driver.offered,
                    "completed_requests": driver.completed,
                    "errors": driver.errors,
                    "throughput_req_per_s": round(
                        driver.completed / wall_s, 1
                    ),
                    "latency_p50_ms": round(_percentile(ordered, 0.50), 2),
                    "latency_p99_ms": round(_percentile(ordered, 0.99), 2),
                })
            sustaining = [
                level
                for level in levels
                if level["latency_p99_ms"] <= SLO_P99_MS
                and level["completed_requests"]
                >= 0.99 * level["offered_requests"]
            ]
            per_front[frontend] = {
                "connections": n_conns,
                "duration_s_per_level": duration_s,
                "connection_storm_setup_s": round(driver.setup_s, 3),
                "slo_p99_ms": SLO_P99_MS,
                "levels": levels,
                "sustained_met_slo": bool(sustaining),
                # no sustaining level: fall back to the gentlest level's
                # completion rate so the ratio stays computable, flagged
                # above so the report cannot pass silently
                "sustained_throughput_req_per_s": max(
                    level["throughput_req_per_s"] for level in sustaining
                )
                if sustaining
                else levels[0]["throughput_req_per_s"],
                "saturation_throughput_req_per_s": max(
                    level["throughput_req_per_s"] for level in levels
                ),
            }
        finally:
            if driver is not None:
                driver.close()
            proc.terminate()
            proc.wait(30)
            proc.stdout.close()
    thread_rps = per_front["thread"]["sustained_throughput_req_per_s"]
    async_rps = per_front["async"]["sustained_throughput_req_per_s"]
    return {
        "thread": per_front["thread"],
        "async": per_front["async"],
        "speedup_async_over_thread": (
            round(async_rps / thread_rps, 2) if thread_rps else None
        ),
        "invariant_identical_bodies": (
            parity_bodies["thread"] == parity_bodies["async"]
        ),
    }


# --------------------------------------------------------------------------- #
# fleet transport arm
# --------------------------------------------------------------------------- #


def bench_fleet(
    artifact_path,
    corpus: list[str],
    expected: dict,
    n_agents: int = 2,
    n_clients: int = 16,
    requests_each: int = 30,
) -> dict:
    """The sharded closed-loop load over TCP worker agents."""
    agents = [FleetWorkerAgent("127.0.0.1", 0) for _ in range(n_agents)]
    threads = [
        threading.Thread(target=agent.serve_forever, daemon=True)
        for agent in agents
    ]
    for thread in threads:
        thread.start()
    service = FleetFacilitatorService(
        artifact_path,
        endpoints=[agent.address for agent in agents],
        max_wait_ms=2.0,
        cache_size=0,  # every request crosses the TCP hop
        backoff=RestartBackoff(**FAST_BACKOFF),
    )
    try:
        with service:
            load = ClosedLoopLoad(
                service, corpus, expected, n_clients, requests_each
            )
            wall_s = load.run()
            entry = load.report(wall_s)
            entry["agents"] = n_agents
            entry["transport"] = "tcp"
            entry["restarts"] = service.stats.restarts
            return entry
    finally:
        for agent in agents:
            agent.shutdown()
        for thread in threads:
            thread.join(10)
        for agent in agents:
            agent.close()


# --------------------------------------------------------------------------- #
# entry points
# --------------------------------------------------------------------------- #


def _update_json(path: Path, key: str, section: dict) -> None:
    report = json.loads(path.read_text()) if path.exists() else {}
    report[key] = section
    path.write_text(json.dumps(report, indent=2) + "\n")


def run(n_conns: int = 1000) -> dict:
    """Full benchmark; updates both BENCH json files."""
    with TemporaryDirectory() as tmp:
        artifact_path, corpus, expected = _prepare(
            800, n_sessions=120, tfidf_features=2000, tmp=tmp
        )
        scaling = bench_connection_scaling(
            artifact_path, corpus, n_conns=n_conns
        )
        scaling["target_speedup_min"] = 2.0
        fleet = bench_fleet(artifact_path, corpus[:400], expected)
    _update_json(SERVING_PATH, "async_frontend", scaling)
    _update_json(SCALE_PATH, "fleet", fleet)
    return {"async_frontend": scaling, "fleet": fleet}


def run_smoke(n_conns: int = 256) -> dict:
    """Small-swarm smoke for CI: same invariants, fraction of runtime."""
    with TemporaryDirectory() as tmp:
        artifact_path, corpus, expected = _prepare(
            200, n_sessions=60, tfidf_features=800, tmp=tmp
        )
        scaling = bench_connection_scaling(
            artifact_path,
            corpus,
            n_conns=n_conns,
            rates_rps=(500.0, 1500.0, 4000.0),
            duration_s=3.0,
        )
        fleet = bench_fleet(
            artifact_path, corpus[:120], expected, n_clients=4,
            requests_each=15,
        )
    return {"async_frontend": scaling, "fleet": fleet}


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    result = run(size)
    print(json.dumps(result, indent=2))
    scaling = result["async_frontend"]
    print(
        f"async over thread at {size} idle connections: "
        f"{scaling['speedup_async_over_thread']}x "
        f"(target >= {scaling['target_speedup_min']}x); identical bodies: "
        f"{scaling['invariant_identical_bodies']}"
    )
