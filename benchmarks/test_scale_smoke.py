"""Tier-1 smoke for the sharded serving tier (small N, real processes).

Runs :func:`bench_scale.run_smoke`: two shard workers under closed-loop
load with one injected worker crash, and asserts the tier stays >= 99%
available, returns bit-identical answers, and the supervisor actually
restarted the crashed shard. The full harness
(``PYTHONPATH=src python benchmarks/bench_scale.py``) regenerates
``BENCH_scale.json`` with 1/2/4-worker scaling and tail latencies.
"""

from bench_scale import run_smoke

from conftest import run_once


def test_scale_smoke(benchmark):
    result = run_once(benchmark, run_smoke)

    assert result["requests"] == 100
    assert result["availability"] >= 0.99, result
    assert result["mismatched"] == 0, (
        "sharded responses diverged from single-process serving"
    )
    # the injected crash really happened and was survived
    assert result["restarts"] >= 1
    assert any(i["reason"] == "crashed" for i in result["incidents"])
    assert result["latency_p99_ms"] > 0
