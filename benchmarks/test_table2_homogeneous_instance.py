"""Bench: regenerate Table 2 (error classification + CPU time + answer size
prediction, Homogeneous Instance / SDSS)."""

from conftest import run_once

from repro.experiments.tables import table2_homogeneous_instance


def test_table2_homogeneous_instance(benchmark, cfg):
    output = run_once(benchmark, table2_homogeneous_instance, cfg)
    print("\n" + output)
    for model in ("mfreq", "ctfidf", "ccnn", "clstm", "wtfidf", "wcnn", "wlstm"):
        assert model in output
