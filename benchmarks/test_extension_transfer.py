"""Extension bench: transfer learning under Heterogeneous Schema (Sec. 8)."""

from conftest import run_once

from repro.experiments.extensions import transfer_learning_experiment


def test_extension_transfer_learning(benchmark, cfg):
    output = run_once(benchmark, transfer_learning_experiment, cfg)
    print("\n" + output)
    assert "fine-tuned" in output
