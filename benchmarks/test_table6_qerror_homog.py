"""Bench: regenerate Table 6 (CPU time qerror, SQLShare Homog. Schema)."""

from conftest import run_once

from repro.experiments.tables import table6_qerror_homogeneous_schema


def test_table6_qerror_homog(benchmark, cfg):
    output = run_once(benchmark, table6_qerror_homogeneous_schema, cfg)
    print("\n" + output)
    assert "40%" in output
