"""Tier-1 smoke for the async front end and the fleet transport.

Runs :func:`bench_async.run_smoke`: a 256-connection open-loop rate
sweep against real ``repro serve`` subprocesses (one per front) plus the
closed-loop fleet-transport arm. At this scale the thread server has not
hit its GIL-convoy knee yet — that takes the full benchmark's 1000
threads — so the guard here is *parity and invariants*, not the >= 2x
acceptance number: the async front must match the threaded front within
noise, keep its p99 inside the SLO at every offered rate, and return
byte-identical bodies; the fleet hop must lose nothing. The full harness
(``PYTHONPATH=src python benchmarks/bench_async.py``) regenerates the
``async_frontend`` section of ``BENCH_serving.json`` with the >= 2x
sustained-throughput target at 1000 connections.
"""

from bench_async import run_smoke

from conftest import run_once


def test_async_smoke(benchmark):
    result = run_once(benchmark, run_smoke)

    scaling = result["async_frontend"]
    assert scaling["invariant_identical_bodies"], (
        "async front returned different bytes than the threaded front"
    )
    # at smoke scale the fronts are at parity (thread degradation needs
    # the full benchmark's 1000-thread swarm); guard against the async
    # path regressing into something slower than the baseline
    assert scaling["speedup_async_over_thread"] > 0.6
    async_front = scaling["async"]
    assert async_front["sustained_met_slo"]
    # every level must complete cleanly; the p99-SLO bound applies to
    # the below-saturation levels only — the top smoke rate sits near
    # the single-core saturation knee, where the tail measures box load,
    # not the front end
    for level in async_front["levels"]:
        assert level["errors"] == 0
    for level in async_front["levels"][:-1]:
        assert level["latency_p99_ms"] <= async_front["slo_p99_ms"]
    # the connection storm (256 simultaneous connects) must land fast —
    # the listen-backlog regression mode is a multi-second SYN stall
    assert async_front["connection_storm_setup_s"] < 5.0

    fleet = result["fleet"]
    assert fleet["availability"] == 1.0
    assert fleet["mismatched"] == 0, (
        "fleet responses must stay bit-identical to single-process serving"
    )
    assert fleet["failed"] == 0
    assert fleet["transport"] == "tcp"
