"""Tier-1 smoke for compiled inference plans (small N, fails fast).

Runs :func:`bench_inference.run_smoke` on a 250-statement repetitive
corpus and asserts the fused plan still (a) beats the per-head loop on
identical micro-batches and (b) returns the loop's predictions (labels
exactly, numerics within float32 round-off). The full harness
(``PYTHONPATH=src python benchmarks/bench_inference.py``) regenerates
``BENCH_inference.json`` with the ≥3x and sub-second cold-start
acceptance numbers.
"""

from bench_inference import run_smoke

from conftest import run_once


def test_inference_smoke(benchmark):
    result = run_once(benchmark, run_smoke, 250)

    fused = result["fused_plan"]
    assert fused["invariant_plan_equals_loop"], (
        "fused plan predictions diverged from the per-head loop"
    )
    # even at smoke scale the plan must clearly win; the full benchmark
    # guards the >= 3x acceptance target
    assert fused["speedup_plan"] > 1.5
    assert fused["fused_heads"] >= 1
    # compilation is a load-time cost and must stay far below one batch
    assert fused["plan_compile_s"] < 0.5
