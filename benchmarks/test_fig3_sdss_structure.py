"""Bench: regenerate Figure 3 (SDSS structural property distributions)."""

from conftest import run_once

from repro.experiments.figures import fig3_sdss_structure


def test_fig3_sdss_structure(benchmark, cfg):
    output = run_once(benchmark, fig3_sdss_structure, cfg)
    print("\n" + output)
    assert "num_characters" in output
    assert "nested aggregation" in output
