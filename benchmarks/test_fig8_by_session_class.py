"""Bench: regenerate Figure 8 (SDSS analysis by session class)."""

from conftest import run_once

from repro.experiments.figures import fig8_by_session_class


def test_fig8_by_session_class(benchmark, cfg):
    output = run_once(benchmark, fig8_by_session_class, cfg)
    print("\n" + output)
    assert "answer_size by session class" in output
    assert "bot" in output
