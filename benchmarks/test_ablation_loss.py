"""Ablation bench: Huber vs squared loss × log transform (Section 4.4.1)."""

from conftest import run_once

from repro.experiments.ablations import ablation_loss_and_transform


def test_ablation_loss_and_transform(benchmark, cfg):
    output = run_once(benchmark, ablation_loss_and_transform, cfg)
    print("\n" + output)
    assert "huber" in output and "squared" in output
