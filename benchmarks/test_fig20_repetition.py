"""Bench: regenerate Figure 20 (statement repetition histogram)."""

from conftest import run_once

from repro.experiments.figures import fig20_repetition


def test_fig20_repetition(benchmark, cfg):
    output = run_once(benchmark, fig20_repetition, cfg)
    print("\n" + output)
    assert "times repeated" in output
