"""Bench: regenerate Table 4 (session classification, SDSS)."""

from conftest import run_once

from repro.experiments.tables import table4_session_classification


def test_table4_session_classification(benchmark, cfg):
    output = run_once(benchmark, table4_session_classification, cfg)
    print("\n" + output)
    assert "F_no_web_hit" in output
    assert "mfreq" in output
