"""Ablation bench: ccnn window sizes {3,4,5} vs single, max vs mean pooling."""

from conftest import run_once

from repro.experiments.ablations import ablation_cnn_architecture


def test_ablation_cnn_architecture(benchmark, cfg):
    output = run_once(benchmark, ablation_cnn_architecture, cfg)
    print("\n" + output)
    assert "mean-pool" in output
