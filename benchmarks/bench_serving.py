"""Serving-layer benchmark: micro-batching throughput and streaming I/O.

Two serving-path claims are measured and recorded in
``BENCH_serving.json`` at the repo root:

1. **Micro-batched insights throughput** — a per-statement
   ``facilitator.insights()`` loop (the naive serving loop) versus the
   same request stream pushed through a :class:`FacilitatorService`
   (micro-batching queue + duplicate collapsing + shared featurization +
   insight memo), on the paper-realistic 70%-repetitive corpus of
   ``bench_featurization.make_corpus``. Predictions must be identical.
2. **Streaming workload I/O memory** — peak traced allocation of
   materializing a gzipped log with ``load_log`` versus a single
   streaming pass with ``iter_log``. The streaming pass must stay
   bounded (constant in file size) instead of holding every entry.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_serving.py [N]

The pytest smoke mode lives in ``test_serving_smoke.py`` (small N,
asserts the micro-batching speedup and the bounded streaming memory) so
tier-1 catches serving regressions without the full benchmark's runtime.
"""

from __future__ import annotations

import json
import sys
import time
import tracemalloc
from pathlib import Path
from tempfile import TemporaryDirectory

from bench_featurization import make_corpus

from repro.core.facilitator import QueryFacilitator
from repro.models.factory import ModelScale
from repro.serving import FacilitatorService
from repro.workloads.io import iter_log, load_log, save_log
from repro.workloads.sdss import generate_sdss_log, generate_sdss_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_serving.json"

#: Paper-realistic repetition level (Figure 20: most statements recur).
REPETITION = 0.70


def _timed(fn, *args):
    start = time.perf_counter()
    out = fn(*args)
    return time.perf_counter() - start, out


def train_facilitator(
    n_sessions: int = 120, tfidf_features: int = 2000
) -> QueryFacilitator:
    """Small ctfidf facilitator (the cheapest full-head paper model)."""
    workload = generate_sdss_workload(n_sessions=n_sessions, seed=21)
    scale = ModelScale(epochs=2, tfidf_features=tfidf_features)
    return QueryFacilitator(model_name="ctfidf", scale=scale).fit(workload)


def _identical(a, b) -> bool:
    return (
        a.statement == b.statement
        and a.error_class == b.error_class
        and a.session_class == b.session_class
        and a.cpu_time_seconds == b.cpu_time_seconds
        and a.answer_size == b.answer_size
        and a.elapsed_seconds == b.elapsed_seconds
        and a.error_probabilities == b.error_probabilities
    )


def bench_throughput(
    facilitator: QueryFacilitator,
    corpus: list[str],
    max_batch: int = 64,
    max_wait_ms: float = 5.0,
) -> dict:
    """Per-statement loop vs micro-batched service over one request stream."""
    t_loop, sequential = _timed(
        lambda: [facilitator.insights(s) for s in corpus]
    )
    with FacilitatorService(
        facilitator, max_batch=max_batch, max_wait_ms=max_wait_ms
    ) as service:

        def drive() -> list:
            pending = [service.submit(s) for s in corpus]
            return [p.result(timeout=600)[0] for p in pending]

        t_service, served = _timed(drive)
        stats = service.stats
    identical = all(_identical(a, b) for a, b in zip(sequential, served))
    return {
        "n_statements": len(corpus),
        "max_batch": max_batch,
        "per_statement_loop_s": round(t_loop, 4),
        "micro_batched_s": round(t_service, 4),
        "speedup_batched": round(t_loop / t_service, 2) if t_service else None,
        "loop_throughput_stmt_per_s": round(len(corpus) / t_loop, 1),
        "service_throughput_stmt_per_s": round(len(corpus) / t_service, 1),
        "batches": stats.batches,
        "mean_batch_size": round(stats.mean_batch_size, 1),
        "latency_p50_ms": stats.latency_p50_ms,
        "latency_p95_ms": stats.latency_p95_ms,
        "insight_cache_hit_rate": stats.insight_cache["hit_rate"],
        "invariant_batched_equals_loop": identical,
    }


def bench_streaming(n_sessions: int = 400) -> dict:
    """Peak traced bytes: materialized ``load_log`` vs streaming ``iter_log``.

    The log is written gzip-compressed; the streaming pass consumes it
    record-by-record, so its peak allocation stays bounded regardless of
    how many entries the file holds.
    """
    entries = generate_sdss_log(n_sessions=n_sessions, seed=17)
    n_entries = len(entries)
    with TemporaryDirectory() as tmp:
        path = Path(tmp) / "log.jsonl.gz"
        save_log(entries, path, name="bench-log")
        del entries
        compressed_bytes = path.stat().st_size

        tracemalloc.start()
        tracemalloc.reset_peak()
        materialized = load_log(path)
        _, peak_load = tracemalloc.get_traced_memory()
        count_load = len(materialized)
        del materialized
        tracemalloc.reset_peak()
        count_iter = 0
        for _entry in iter_log(path):
            count_iter += 1
        _, peak_iter = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return {
        "n_entries": n_entries,
        "gz_file_bytes": compressed_bytes,
        "materialized_peak_bytes": peak_load,
        "streaming_peak_bytes": peak_iter,
        "memory_ratio_materialized_over_streaming": (
            round(peak_load / peak_iter, 1) if peak_iter else None
        ),
        "invariant_counts_equal": count_iter == count_load == n_entries,
    }


def run(n: int = 2000) -> dict:
    """Full benchmark; returns the report dict and writes the JSON."""
    facilitator = train_facilitator()
    corpus = make_corpus(n, REPETITION, seed=7)
    report = {
        "benchmark": "serving",
        "repetition_level": REPETITION,
        # bulk-throughput configuration: larger micro-batches amortize the
        # per-batch fixed cost (featurize setup + one numpy op per head);
        # p50 latency stays ~150ms at this size
        "throughput": bench_throughput(facilitator, corpus, max_batch=256),
        "streaming_io": bench_streaming(),
        "targets": {
            "micro_batched_speedup_min": 5.0,
            "streaming_memory_ratio_min": 4.0,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_smoke(n: int = 250) -> dict:
    """Small-N smoke for tier-1: same invariants, fraction of the runtime."""
    facilitator = train_facilitator(n_sessions=60, tfidf_features=800)
    corpus = make_corpus(n, REPETITION, seed=7)
    throughput = bench_throughput(facilitator, corpus, max_batch=32)
    streaming = bench_streaming(n_sessions=60)
    return {"throughput": throughput, "streaming_io": streaming}


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    result = run(size)
    print(json.dumps(result, indent=2))
    throughput = result["throughput"]
    ok = throughput["invariant_batched_equals_loop"]
    print(f"micro-batched speedup: {throughput['speedup_batched']}x "
          f"(target >= {result['targets']['micro_batched_speedup_min']}x); "
          f"batched == loop: {ok}")
