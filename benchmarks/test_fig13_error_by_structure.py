"""Bench: regenerate Figure 13 (answer size error vs structure, SDSS)."""

from conftest import run_once

from repro.experiments.error_analysis import fig13_error_by_structure


def test_fig13_error_by_structure(benchmark, cfg):
    output = run_once(benchmark, fig13_error_by_structure, cfg)
    print("\n" + output)
    assert "number of characters" in output
