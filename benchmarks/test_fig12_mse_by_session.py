"""Bench: regenerate Figure 12 (regression MSE by session class, SDSS)."""

from conftest import run_once

from repro.experiments.error_analysis import fig12_mse_by_session


def test_fig12_mse_by_session(benchmark, cfg):
    output = run_once(benchmark, fig12_mse_by_session, cfg)
    print("\n" + output)
    assert "Figure 12a" in output and "Figure 12b" in output
