"""Bench: regenerate the Section 6.3.3 case study (Q1/Q2 predictions)."""

from conftest import run_once

from repro.experiments.case_study import case_study


def test_case_study(benchmark, cfg):
    output = run_once(benchmark, case_study, cfg)
    print("\n" + output)
    assert "Q1" in output and "Q2" in output
