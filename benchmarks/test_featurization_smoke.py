"""Tier-1 smoke for the featurization pipeline (small N, fails fast).

Unlike the table/figure benches this costs well under a second: it runs
:func:`bench_featurization.run_smoke` on a 300-statement repetitive corpus
and asserts the analysis cache still (a) speeds up repeated batches and
(b) returns bit-identical features to the uncached path. The full harness
(``PYTHONPATH=src python benchmarks/bench_featurization.py``) regenerates
``BENCH_featurization.json`` with before/after numbers.
"""

from bench_featurization import run_smoke

from conftest import run_once


def test_featurization_cache_smoke(benchmark):
    result = run_once(benchmark, run_smoke, 300)
    assert result["invariant"], "cached features diverged from uncached"
    assert result["hit_rate"] > 0.5, "repetitive corpus should mostly hit"
    # the warm pass answers from the cache; even on a noisy CI box it must
    # beat re-analyzing the whole batch
    assert result["speedup_cached"] > 1.0
