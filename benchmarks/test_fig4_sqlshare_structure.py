"""Bench: regenerate Figure 4 (SQLShare structural property distributions)."""

from conftest import run_once

from repro.experiments.figures import fig4_sqlshare_structure


def test_fig4_sqlshare_structure(benchmark, cfg):
    output = run_once(benchmark, fig4_sqlshare_structure, cfg)
    print("\n" + output)
    assert "nestedness_level" in output
