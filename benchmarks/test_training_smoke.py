"""Tier-1 smoke for the training engine (small N, fails fast).

Runs :func:`bench_training.run_smoke`: a tiny char-LSTM trained by the
bucketed+fused engine versus the naive per-epoch re-encoding fixed-width
loop it replaced. Asserts (a) the engine still wins on wall clock,
(b) the engine's legacy (``bucket=False``) mode reproduces the naive
loop's seeded predictions exactly — LSTM outputs are invariant to
trailing padding, so any divergence means a kernel broke — and (c) the
fast mode is run-to-run deterministic. The full harness
(``PYTHONPATH=src python benchmarks/bench_training.py``) regenerates
``BENCH_training.json`` with the ≥3x/≥2x acceptance numbers.
"""

from bench_training import run_smoke

from conftest import run_once


def test_training_engine_smoke(benchmark):
    result = run_once(benchmark, run_smoke, 96)

    assert result["invariant_legacy_equals_naive"], (
        "legacy-mode engine diverged from the naive reference loop"
    )
    assert result["invariant_fast_deterministic"], (
        "bucketed training is not deterministic across seeded runs"
    )
    # even at smoke scale, skipping re-encoding and padding waste must
    # clearly win; the full benchmark guards the 3x/2x targets
    assert result["speedup_vs_naive"] > 1.3
