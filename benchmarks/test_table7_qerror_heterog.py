"""Bench: regenerate Table 7 (CPU time qerror, SQLShare Heterog. Schema)."""

from conftest import run_once

from repro.experiments.tables import table7_qerror_heterogeneous_schema


def test_table7_qerror_heterog(benchmark, cfg):
    output = run_once(benchmark, table7_qerror_heterogeneous_schema, cfg)
    print("\n" + output)
    assert "10%" in output
