"""Inference-plan benchmark: fused scoring throughput and cold start.

Measures the two compiled-inference claims and records them in
``BENCH_inference.json`` at the repo root:

1. **Fused plan throughput** — the same micro-batched request stream
   scored by the legacy per-head loop (``use_plan=False``, the path
   ``BENCH_serving.json`` was measured on) versus the compiled
   :class:`~repro.inference.InferencePlan` (vectorized featurization +
   one CSR × dense matmul for every fused head), on the paper-realistic
   70%-repetitive corpus. Predictions must agree: labels exactly,
   numerics within float32 round-off. Target: ≥ 3x.
2. **Cold start** — a fresh interpreter loading an artifact and serving
   its first insight, at the artifact's natural size and inflated 10x
   (synthetic vocabulary rows that never match real statements), with
   eager reads versus ``mmap=True``. Target: < 1s load→first-insight on
   the 10x artifact with mmap.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_inference.py [N]

The pytest smoke mode lives in ``test_inference_smoke.py`` (small N,
asserts the plan beats the loop and matches its predictions) so tier-1
catches plan regressions without the full benchmark's runtime.
"""

from __future__ import annotations

import copy
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

from bench_featurization import make_corpus
from bench_serving import REPETITION, train_facilitator

from repro.serving import FacilitatorService
from repro.text.ngrams import NGRAM_SEP

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
OUTPUT_PATH = REPO_ROOT / "BENCH_inference.json"


def _timed(fn, *args):
    start = time.perf_counter()
    out = fn(*args)
    return time.perf_counter() - start, out


def _equivalent(a, b, rel: float = 1e-5) -> bool:
    """Loop vs plan agreement: exact labels, float32-tolerance numerics."""

    def close(x, y):
        if x is None or y is None:
            return x is y
        return abs(y - x) <= rel * max(abs(x), 1e-9)

    return (
        a.statement == b.statement
        and a.error_class == b.error_class
        and a.session_class == b.session_class
        and close(a.cpu_time_seconds, b.cpu_time_seconds)
        and close(a.answer_size, b.answer_size)
        and close(a.elapsed_seconds, b.elapsed_seconds)
        and (a.error_probabilities is None) == (b.error_probabilities is None)
        and all(
            close(p, b.error_probabilities[name])
            for name, p in (a.error_probabilities or {}).items()
        )
    )


# -- throughput --------------------------------------------------------------- #


def bench_plan_throughput(
    facilitator, corpus: list[str], batch: int = 256, repeats: int = 3
) -> dict:
    """Per-head loop vs compiled plan over identical micro-batches.

    Each arm is warmed once and timed ``repeats`` times; the best pass
    counts (standard practice — the minimum is the least contaminated by
    scheduler noise and CPU frequency transitions).
    """
    batches = [corpus[i : i + batch] for i in range(0, len(corpus), batch)]
    # compile outside the steady-state timing; report the one-off cost
    facilitator.invalidate_plan()
    t_compile, plan = _timed(facilitator._ensure_plan)

    def drive(use_plan: bool) -> list:
        out: list = []
        for chunk in batches:
            out.extend(facilitator.insights_batch(chunk, use_plan=use_plan))
        return out

    def best(use_plan: bool) -> tuple[float, list]:
        result = drive(use_plan)  # warm
        times = []
        for _ in range(repeats):
            t, result = _timed(drive, use_plan)
            times.append(t)
        return min(times), result

    t_loop, from_loop = best(False)
    t_plan, from_plan = best(True)
    agree = all(_equivalent(a, b) for a, b in zip(from_loop, from_plan))
    return {
        "n_statements": len(corpus),
        "batch_size": batch,
        "fused_heads": plan.fused_heads,
        "plan_compile_s": round(t_compile, 4),
        "per_head_loop_s": round(t_loop, 4),
        "fused_plan_s": round(t_plan, 4),
        "loop_throughput_stmt_per_s": round(len(corpus) / t_loop, 1),
        "plan_throughput_stmt_per_s": round(len(corpus) / t_plan, 1),
        "speedup_plan": round(t_loop / t_plan, 2) if t_plan else None,
        "invariant_plan_equals_loop": agree,
    }


def bench_service_throughput(
    facilitator, corpus: list[str], max_batch: int = 256
) -> dict:
    """End-to-end service throughput with the plan off vs on.

    Both arms keep the service's micro-batching queue, duplicate
    collapsing, and insight memo — the delta isolates what the compiled
    plan buys the serving tier on top of PR 6's batching.
    """

    def drive(use_plan: bool) -> float:
        facilitator.use_plan = use_plan
        facilitator.invalidate_plan()
        with FacilitatorService(
            facilitator, max_batch=max_batch, max_wait_ms=5.0
        ) as service:
            t, _ = _timed(
                lambda: [
                    p.result(timeout=600)
                    for p in [service.submit(s) for s in corpus]
                ]
            )
        return t

    t_legacy = drive(False)
    t_plan = drive(True)
    facilitator.use_plan = True
    return {
        "n_statements": len(corpus),
        "max_batch": max_batch,
        "legacy_service_s": round(t_legacy, 4),
        "plan_service_s": round(t_plan, 4),
        "legacy_throughput_stmt_per_s": round(len(corpus) / t_legacy, 1),
        "plan_throughput_stmt_per_s": round(len(corpus) / t_plan, 1),
        "speedup_service": round(t_legacy / t_plan, 2) if t_plan else None,
    }


# -- cold start --------------------------------------------------------------- #


def inflate_facilitator(facilitator, factor: int):
    """Deep copy with ``factor``x vocabulary/weight rows per head.

    Pads every head's vocabulary with synthetic CJK bigrams (normalized
    SQL text is ASCII, so they never match), idf with ones, and weight
    matrices with zero rows: predictions are unchanged, only the
    artifact grows — which is what a cold-start benchmark needs.
    """
    facilitator = copy.deepcopy(facilitator)
    facilitator.invalidate_plan()
    for head in facilitator.heads.values():
        model = head.model
        vectorizer = model.vectorizer
        base = len(vectorizer.vocabulary_)
        extra = base * (factor - 1)
        for i in range(extra):
            hi, lo = divmod(i, 400)
            key = chr(0x4E00 + 400 + hi) + NGRAM_SEP + chr(0x4E00 + lo)
            vectorizer.vocabulary_[key] = base + i
        vectorizer.idf_ = np.concatenate([vectorizer.idf_, np.ones(extra)])
        model._fingerprint = None
        estimator = (
            model.classifier
            if hasattr(model, "classifier")
            else model.regressor
        )
        w = estimator.weight
        if w.ndim == 2:
            pad = np.zeros((extra, w.shape[1]), dtype=w.dtype)
            estimator.weight = np.vstack([w, pad])
        else:
            estimator.weight = np.concatenate(
                [w, np.zeros(extra, dtype=w.dtype)]
            )
    return facilitator


#: Timed inside a fresh interpreter: import / load / first insight.
_COLD_START_CODE = """
import json, sys, time
t0 = time.perf_counter()
from repro.core.facilitator import QueryFacilitator
t1 = time.perf_counter()
facilitator = QueryFacilitator.load(sys.argv[1], mmap=(sys.argv[2] == "mmap"))
t2 = time.perf_counter()
facilitator.insights_batch(
    ["SELECT TOP 5 ra, dec FROM PhotoObj WHERE ra BETWEEN 1 AND 2"]
)
t3 = time.perf_counter()
print(json.dumps({
    "interpreter_import_s": round(t1 - t0, 4),
    "load_s": round(t2 - t1, 4),
    "first_insight_s": round(t3 - t2, 4),
    "cold_start_s": round(t3 - t1, 4),
}))
"""


def measure_cold_start(path: Path, mmap: bool) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT)
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _COLD_START_CODE,
            str(path),
            "mmap" if mmap else "eager",
        ],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def bench_cold_start(facilitator, factor: int = 10) -> dict:
    with TemporaryDirectory() as tmp:
        natural = Path(tmp) / "natural.fac"
        inflated = Path(tmp) / "inflated.fac"
        facilitator.save(natural)
        inflate_facilitator(facilitator, factor).save(inflated)
        report = {
            "inflation_factor": factor,
            "natural_artifact_bytes": natural.stat().st_size,
            "inflated_artifact_bytes": inflated.stat().st_size,
        }
        for label, path in (("natural", natural), ("inflated", inflated)):
            for mode, mmap in (("eager", False), ("mmap", True)):
                report[f"{label}_{mode}"] = measure_cold_start(path, mmap)
    return report


# -- drivers ------------------------------------------------------------------ #


def run(n: int = 2000) -> dict:
    """Full benchmark; returns the report dict and writes the JSON."""
    facilitator = train_facilitator()
    corpus = make_corpus(n, REPETITION, seed=7)
    report = {
        "benchmark": "inference",
        "repetition_level": REPETITION,
        "fused_plan": bench_plan_throughput(facilitator, corpus, batch=256),
        "service": bench_service_throughput(facilitator, corpus),
        "cold_start": bench_cold_start(facilitator),
        "targets": {
            "plan_speedup_min": 3.0,
            "cold_start_mmap_inflated_max_s": 1.0,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_smoke(n: int = 250) -> dict:
    """Small-N smoke for tier-1: same invariants, fraction of the runtime."""
    facilitator = train_facilitator(n_sessions=40, tfidf_features=600)
    corpus = make_corpus(n, REPETITION, seed=7)
    return {
        "fused_plan": bench_plan_throughput(facilitator, corpus, batch=64)
    }


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    result = run(size)
    print(json.dumps(result, indent=2))
    fused = result["fused_plan"]
    cold = result["cold_start"]["inflated_mmap"]["cold_start_s"]
    print(
        f"fused plan speedup: {fused['speedup_plan']}x "
        f"(target >= {result['targets']['plan_speedup_min']}x); "
        f"plan == loop: {fused['invariant_plan_equals_loop']}; "
        f"10x cold start (mmap): {cold}s (target < 1s)"
    )
