"""``opt``: linear regression over query-optimizer cost estimates.

Following [2, 14, 39] (Section 6.1), the feature is the analytic cost
estimate of the simulated optimizer and the target is the log-transformed
CPU time. The log of the cost is used as the regression feature since both
distributions are heavy-tailed.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.ml.linear import LeastSquaresRegression
from repro.models.base import QueryModel, TaskKind
from repro.optimizer.cost import OptimizerCostModel
from repro.workloads.schema import Catalog

__all__ = ["OptimizerCostRegressor"]


class OptimizerCostRegressor(QueryModel):
    """Linear model from optimizer cost estimate → log CPU time."""

    name = "opt"
    task = TaskKind.REGRESSION

    def __init__(self, catalog: Catalog):
        self.cost_model = OptimizerCostModel(catalog)
        self.regression = LeastSquaresRegression()

    def _features(self, statements: Sequence[str]) -> np.ndarray:
        costs = np.asarray(self.cost_model.estimate_batch(statements))
        return np.log1p(np.maximum(costs, 0.0)).reshape(-1, 1)

    def fit(self, statements: Sequence[str], labels: np.ndarray):
        self.regression.fit(
            self._features(statements), np.asarray(labels, dtype=np.float64)
        )
        return self

    def predict(self, statements: Sequence[str]) -> np.ndarray:
        return self.regression.predict(self._features(statements))

    @property
    def num_parameters(self) -> int:
        return 2  # slope + intercept
