"""k-nearest-neighbour retrieval over TF-IDF vectors.

Two uses, both grounded in the paper's motivation:

1. A retrieval *model* (:class:`KnnModel`) — predict a query's property
   from the labels of its most similar historical queries. This is the
   instance-based baseline text categorization inherits from IR and sits
   between the trivial baselines and the trained models.
2. A *query recommender* (:class:`SimilarQueryIndex`) — Section 2's SDSS
   sample-query pages, made dynamic: given a draft statement, surface the
   workload's most similar past statements with their observed outcomes,
   so the user sees what happened the last time somebody wrote this.

Similarity is cosine over L2-normalised TF-IDF vectors (character
3-grams by default, the representation the paper found most robust).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.models.base import QueryModel, TaskKind
from repro.text.tfidf import TfidfVectorizer
from repro.workloads.records import QueryRecord, Workload

__all__ = ["KnnModel", "SimilarQueryIndex", "QueryNeighbor"]


def _l2_normalize(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Row-wise L2 normalization; zero rows stay zero."""
    norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A1
    norms[norms == 0] = 1.0
    inverse = sparse.diags(1.0 / norms)
    return (inverse @ matrix).tocsr()


class KnnModel(QueryModel):
    """Instance-based prediction from the k most similar training queries.

    Classification: probability-weighted vote of the neighbours' classes.
    Regression: similarity-weighted mean of the neighbours' labels.

    Args:
        task: Classification or regression.
        k: Neighbourhood size.
        level: ``"char"`` or ``"word"`` TF-IDF tokenization.
        max_features: TF-IDF vocabulary cap.
        num_classes: Required for classification (class-id labels).
    """

    name = "knn"

    def __init__(
        self,
        task: TaskKind = TaskKind.REGRESSION,
        k: int = 5,
        level: str = "char",
        max_features: int = 20_000,
        num_classes: int | None = None,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if task is TaskKind.CLASSIFICATION and not num_classes:
            raise ValueError("classification KnnModel needs num_classes")
        self.task = task
        self.k = k
        self.num_classes = num_classes
        self.vectorizer = TfidfVectorizer(
            level=level, max_features=max_features, min_n=1, max_n=3
        )
        self._train_matrix: sparse.csr_matrix | None = None
        self._train_labels: np.ndarray | None = None

    def fit(self, statements: Sequence[str], labels: np.ndarray) -> "KnnModel":
        if len(statements) == 0:
            raise ValueError("cannot fit KnnModel on an empty training set")
        if len(statements) != len(labels):
            raise ValueError("statements and labels must have equal length")
        matrix = self.vectorizer.fit_transform(list(statements))
        self._train_matrix = _l2_normalize(matrix)
        self._train_labels = np.asarray(labels)
        return self

    def _neighbors(
        self, statements: Sequence[str]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(indices, similarities) of the k nearest training rows."""
        if self._train_matrix is None:
            raise RuntimeError("KnnModel must be fitted first")
        queries = _l2_normalize(self.vectorizer.transform(list(statements)))
        similarity = (queries @ self._train_matrix.T).toarray()
        k = min(self.k, similarity.shape[1])
        top = np.argpartition(-similarity, kth=k - 1, axis=1)[:, :k]
        rows = np.arange(similarity.shape[0])[:, None]
        order = np.argsort(-similarity[rows, top], axis=1)
        top = top[rows, order]
        return top, similarity[rows, top]

    def predict(self, statements: Sequence[str]) -> np.ndarray:
        top, sims = self._neighbors(statements)
        labels = self._train_labels[top]
        if self.task is TaskKind.REGRESSION:
            weights = np.maximum(sims, 0.0) + 1e-12
            return (labels * weights).sum(axis=1) / weights.sum(axis=1)
        return np.argmax(self._vote(top, sims), axis=1)

    def predict_proba(self, statements: Sequence[str]) -> np.ndarray:
        if self.task is not TaskKind.CLASSIFICATION:
            return super().predict_proba(statements)
        top, sims = self._neighbors(statements)
        votes = self._vote(top, sims)
        return votes / votes.sum(axis=1, keepdims=True)

    def _vote(self, top: np.ndarray, sims: np.ndarray) -> np.ndarray:
        assert self.num_classes is not None
        votes = np.full((top.shape[0], self.num_classes), 1e-9)
        labels = self._train_labels[top].astype(np.int64)
        weights = np.maximum(sims, 0.0) + 1e-12
        for row in range(top.shape[0]):
            np.add.at(votes[row], labels[row], weights[row])
        return votes

    @property
    def vocab_size(self) -> int:
        return len(self.vectorizer.vocabulary_)

    @property
    def num_parameters(self) -> int:
        return 0  # instance-based: nothing is trained


@dataclass(frozen=True)
class QueryNeighbor:
    """One retrieved historical query with its observed outcome."""

    record: QueryRecord
    similarity: float


class SimilarQueryIndex:
    """Retrieve the most similar historical queries for a draft statement.

    >>> index = SimilarQueryIndex().fit(workload)
    >>> for neighbor in index.lookup("SELECT * FROM PhotoObj", k=3):
    ...     print(neighbor.similarity, neighbor.record.cpu_time)
    """

    def __init__(self, level: str = "char", max_features: int = 20_000):
        self.vectorizer = TfidfVectorizer(
            level=level, max_features=max_features, min_n=1, max_n=3
        )
        self._matrix: sparse.csr_matrix | None = None
        self._workload: Workload | None = None

    def fit(self, workload: Workload) -> "SimilarQueryIndex":
        """Index every statement of ``workload``."""
        if len(workload) == 0:
            raise ValueError("cannot index an empty workload")
        matrix = self.vectorizer.fit_transform(workload.statements())
        self._matrix = _l2_normalize(matrix)
        self._workload = workload
        return self

    def lookup(self, statement: str, k: int = 5) -> list[QueryNeighbor]:
        """The ``k`` most similar indexed queries, best first."""
        if self._matrix is None or self._workload is None:
            raise RuntimeError("SimilarQueryIndex must be fitted first")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        query = _l2_normalize(self.vectorizer.transform([statement]))
        similarity = (query @ self._matrix.T).toarray()[0]
        k = min(k, similarity.size)
        top = np.argpartition(-similarity, kth=k - 1)[:k]
        top = top[np.argsort(-similarity[top])]
        return [
            QueryNeighbor(
                record=self._workload[int(idx)],
                similarity=float(similarity[idx]),
            )
            for idx in top
        ]
