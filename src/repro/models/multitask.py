"""Multi-task CNN — the paper's Section 8 future-work extension.

One shared text encoder (embedding → multi-kernel convolution → dropout)
feeds one output head per query facilitation problem; the training loss is
the sum of the per-task losses, so the representation learns the label
correlations the paper conjectures about (e.g. failing queries have zero
answers; complex queries are slow *and* human-authored).

Only tasks whose labels are supplied participate; at prediction time each
task's head is read out independently.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.models.base import TaskKind
from repro.models.neural_base import NeuralHyperParams
from repro.nn.conv import MultiKernelTextConv
from repro.nn.layers import Dropout, Embedding, Linear
from repro.nn.losses import HuberLoss, SoftmaxCrossEntropy, softmax
from repro.nn.module import Module
from repro.nn.optim import AdaMax, clip_grad_norm
from repro.text.encode import SequenceEncoder, pad_sequences
from repro.text.vocab import build_char_vocab, build_word_vocab

__all__ = ["TaskSpec", "MultiTaskTextCNN"]


@dataclass(frozen=True)
class TaskSpec:
    """One prediction task sharing the encoder.

    Attributes:
        name: Task key (e.g. ``"error_class"``).
        kind: Classification or regression.
        num_classes: Output width for classification tasks.
        weight: Contribution of this task's loss to the training objective.
    """

    name: str
    kind: TaskKind
    num_classes: int = 1
    weight: float = 1.0

    @property
    def out_dim(self) -> int:
        return (
            self.num_classes
            if self.kind is TaskKind.CLASSIFICATION
            else 1
        )


class _SharedEncoder(Module):
    """embedding → conv/pool → dropout, shared by all heads."""

    def __init__(
        self,
        vocab_size: int,
        pad_id: int,
        embed_dim: int,
        windows: tuple[int, ...],
        num_kernels: int,
        dropout: float,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.embedding = self.add_module(
            "embedding", Embedding(vocab_size, embed_dim, rng, pad_id=pad_id)
        )
        self.conv = self.add_module(
            "conv", MultiKernelTextConv(embed_dim, windows, num_kernels, rng)
        )
        self.dropout = self.add_module("dropout", Dropout(dropout, rng))
        self.out_dim = self.conv.out_dim

    def forward(self, ids: np.ndarray) -> np.ndarray:
        return self.dropout.forward(
            self.conv.forward(self.embedding.forward(ids))
        )

    def backward(self, dout: np.ndarray) -> None:
        self.embedding.backward(
            self.conv.backward(self.dropout.backward(dout))
        )


class MultiTaskTextCNN(Module):
    """Shared-encoder CNN with one head per task.

    Args:
        tasks: Task specifications (labels are passed to :meth:`fit` in the
            same order by name).
        level: ``"char"`` or ``"word"`` tokenization.
        num_kernels / dropout: Encoder hyper-parameters (Kim CNN).
        hyper: Shared training hyper-parameters.
    """

    def __init__(
        self,
        tasks: Sequence[TaskSpec],
        level: str = "char",
        num_kernels: int = 96,
        dropout: float = 0.5,
        hyper: NeuralHyperParams | None = None,
    ):
        super().__init__()
        if not tasks:
            raise ValueError("need at least one task")
        if level not in ("char", "word"):
            raise ValueError(f"level must be 'char' or 'word', got {level!r}")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ValueError("task names must be unique")
        self.tasks = list(tasks)
        self.level = level
        self.num_kernels = num_kernels
        self.dropout_rate = dropout
        self.hyper = hyper or NeuralHyperParams()
        self.rng = np.random.default_rng(self.hyper.seed)
        self.encoder: SequenceEncoder | None = None
        self.shared: _SharedEncoder | None = None
        self.heads: dict[str, Linear] = {}
        self._ce = SoftmaxCrossEntropy()
        self._huber = HuberLoss(delta=1.0)
        self._target_stats: dict[str, tuple[float, float]] = {}
        self.history: list[float] = []

    # -- construction ---------------------------------------------------- #

    def _build(self, statements: Sequence[str]) -> None:
        if self.level == "char":
            vocab = build_char_vocab(
                statements, max_size=self.hyper.max_vocab_char
            )
            max_len = self.hyper.max_len_char
        else:
            vocab = build_word_vocab(
                statements, max_size=self.hyper.max_vocab_word, min_count=2
            )
            max_len = self.hyper.max_len_word
        self.encoder = SequenceEncoder(vocab, self.level, max_len)
        self.shared = self.add_module(
            "shared",
            _SharedEncoder(
                len(vocab),
                vocab.pad_id,
                self.hyper.embed_dim,
                (3, 4, 5),
                self.num_kernels,
                self.dropout_rate,
                self.rng,
            ),
        )
        for task in self.tasks:
            head = Linear(self.shared.out_dim, task.out_dim, self.rng)
            self.add_module(f"head_{task.name}", head)
            self.heads[task.name] = head

    # -- training ----------------------------------------------------------- #

    def fit(
        self,
        statements: Sequence[str],
        labels: dict[str, np.ndarray],
    ) -> "MultiTaskTextCNN":
        """Jointly train all heads.

        Args:
            statements: Raw statements.
            labels: Mapping task name → label array. Classification labels
                are integer class ids; regression labels are log-transformed
                values (standardized internally per task).
        """
        missing = {t.name for t in self.tasks} - set(labels)
        if missing:
            raise ValueError(f"missing labels for tasks: {sorted(missing)}")
        statements = list(statements)
        self._build(statements)
        assert self.shared is not None and self.encoder is not None
        targets: dict[str, np.ndarray] = {}
        for task in self.tasks:
            raw = labels[task.name]
            if task.kind is TaskKind.CLASSIFICATION:
                targets[task.name] = np.asarray(raw, dtype=np.int64)
            else:
                values = np.asarray(raw, dtype=np.float64)
                center = float(np.median(values))
                spread = float(values.std()) or 1.0
                self._target_stats[task.name] = (center, spread)
                targets[task.name] = (values - center) / spread
        optimizer = AdaMax(self.parameters(), lr=self.hyper.lr)
        encoded = [self.encoder.encode(s) for s in statements]
        n = len(statements)
        batch = self.hyper.batch_size
        self.train()
        for _ in range(self.hyper.epochs):
            order = self.rng.permutation(n)
            epoch_loss = 0.0
            steps = 0
            for start in range(0, n, batch):
                chosen = order[start : start + batch]
                ids = pad_sequences(
                    [encoded[i] for i in chosen],
                    pad_id=self.encoder.vocab.pad_id,
                )
                self.zero_grad()
                features = self.shared.forward(ids)
                dfeatures = np.zeros_like(features)
                loss_total = 0.0
                for task in self.tasks:
                    head = self.heads[task.name]
                    output = head.forward(features)
                    if task.kind is TaskKind.CLASSIFICATION:
                        loss, dout = self._ce(
                            output, targets[task.name][chosen]
                        )
                    else:
                        loss, dgrad = self._huber(
                            output[:, 0], targets[task.name][chosen]
                        )
                        dout = dgrad[:, None]
                    loss_total += task.weight * loss
                    # scaling dout scales both the head gradients and the
                    # feature gradient by the task weight
                    dfeatures += head.backward(task.weight * dout)
                self.shared.backward(dfeatures)
                if self.hyper.clip_norm > 0:
                    clip_grad_norm(self.parameters(), self.hyper.clip_norm)
                optimizer.step()
                epoch_loss += loss_total
                steps += 1
            self.history.append(epoch_loss / max(steps, 1))
        self.eval()
        return self

    # -- prediction --------------------------------------------------------- #

    def _features(self, statements: Sequence[str]) -> np.ndarray:
        if self.shared is None or self.encoder is None:
            raise RuntimeError("model must be fitted first")
        self.eval()
        out: list[np.ndarray] = []
        # encode once up front; chunks reuse the id lists
        encoded = [self.encoder.encode(s) for s in statements]
        step = max(self.hyper.batch_size * 4, 64)
        for start in range(0, len(encoded), step):
            ids = pad_sequences(
                encoded[start : start + step],
                pad_id=self.encoder.vocab.pad_id,
            )
            out.append(self.shared.forward(ids))
        if not out:
            return np.zeros((0, self.shared.out_dim))
        return np.concatenate(out, axis=0)

    def predict(self, task_name: str, statements: Sequence[str]) -> np.ndarray:
        """Predictions for one task: class ids or de-standardized values."""
        if self.shared is None:
            raise RuntimeError("model must be fitted first")
        task = self._task(task_name)
        output = self.heads[task_name].forward(self._features(statements))
        if task.kind is TaskKind.CLASSIFICATION:
            return output.argmax(axis=1)
        center, spread = self._target_stats[task_name]
        return output[:, 0] * spread + center

    def predict_proba(
        self, task_name: str, statements: Sequence[str]
    ) -> np.ndarray:
        if self.shared is None:
            raise RuntimeError("model must be fitted first")
        task = self._task(task_name)
        if task.kind is not TaskKind.CLASSIFICATION:
            raise NotImplementedError(f"{task_name} is a regression task")
        return softmax(
            self.heads[task_name].forward(self._features(statements))
        )

    def _task(self, name: str) -> TaskSpec:
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(f"unknown task: {name!r}")
