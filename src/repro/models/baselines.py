"""Trivial baselines: most-frequent class and training median (Section 6.1)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.models.base import QueryModel, TaskKind

__all__ = ["MostFrequentClassifier", "MedianRegressor"]


class MostFrequentClassifier(QueryModel):
    """``mfreq``: always predicts the majority training class.

    Its probability vector is the training class distribution, which gives
    the constant-prediction cross-entropy the paper reports as the
    baseline loss.
    """

    name = "mfreq"
    task = TaskKind.CLASSIFICATION

    def __init__(self, num_classes: int):
        if num_classes < 1:
            raise ValueError("num_classes must be positive")
        self.num_classes = num_classes
        self.majority_: int | None = None
        self.class_distribution_: np.ndarray | None = None

    def fit(self, statements: Sequence[str], labels: np.ndarray):
        del statements
        labels = np.asarray(labels, dtype=np.int64)
        if labels.size == 0:
            raise ValueError("cannot fit on empty labels")
        counts = np.bincount(labels, minlength=self.num_classes).astype(
            np.float64
        )
        self.majority_ = int(counts.argmax())
        self.class_distribution_ = counts / counts.sum()
        return self

    def predict(self, statements: Sequence[str]) -> np.ndarray:
        if self.majority_ is None:
            raise RuntimeError("model must be fitted first")
        return np.full(len(statements), self.majority_, dtype=np.int64)

    def predict_proba(self, statements: Sequence[str]) -> np.ndarray:
        if self.class_distribution_ is None:
            raise RuntimeError("model must be fitted first")
        return np.tile(self.class_distribution_, (len(statements), 1))


class MedianRegressor(QueryModel):
    """``median``: always predicts the median training label."""

    name = "median"
    task = TaskKind.REGRESSION

    def __init__(self):
        self.median_: float | None = None

    def fit(self, statements: Sequence[str], labels: np.ndarray):
        del statements
        labels = np.asarray(labels, dtype=np.float64)
        if labels.size == 0:
            raise ValueError("cannot fit on empty labels")
        self.median_ = float(np.median(labels))
        return self

    def predict(self, statements: Sequence[str]) -> np.ndarray:
        if self.median_ is None:
            raise RuntimeError("model must be fitted first")
        return np.full(len(statements), self.median_, dtype=np.float64)
