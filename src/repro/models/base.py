"""Common interface for all query-property prediction models."""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

__all__ = ["TaskKind", "QueryModel"]


class TaskKind(enum.Enum):
    """Whether a model predicts a class or a real value."""

    CLASSIFICATION = "classification"
    REGRESSION = "regression"


class QueryModel(ABC):
    """A model mapping raw statements to a query-property prediction.

    Conventions:

    - classification models consume integer class ids (the harness owns the
      :class:`~repro.ml.preprocessing.LabelEncoder`) and must implement
      :meth:`predict_proba`;
    - regression models consume already log-transformed labels
      (Section 4.4.1) and predict in the same transformed space.
    """

    #: Paper-style model name, e.g. ``ccnn``; set by subclasses.
    name: str = "model"
    task: TaskKind = TaskKind.CLASSIFICATION

    @abstractmethod
    def fit(
        self,
        statements: Sequence[str],
        labels: np.ndarray,
    ) -> "QueryModel":
        """Train on raw statements and their labels."""

    @abstractmethod
    def predict(self, statements: Sequence[str]) -> np.ndarray:
        """Class ids (classification) or transformed values (regression)."""

    def predict_proba(self, statements: Sequence[str]) -> np.ndarray:
        """Class probabilities; only valid for classification models."""
        raise NotImplementedError(
            f"{self.name} does not produce class probabilities"
        )

    # -- shared featurization (serving fast path) ---------------------------- #

    def feature_fingerprint(self) -> bytes | None:
        """Identity of this model's statement→feature map, or ``None``.

        Two fitted models returning equal fingerprints are guaranteed to
        produce identical :meth:`featurize` output, so a caller holding
        several such models (the facilitator's batched insights path,
        where every head was fit with the same name/scale on the same
        statements) can featurize a batch once and fan the features out
        across models. ``None`` (the default) disables sharing.
        """
        return None

    def featurize(self, statements: Sequence[str]):
        """Statement batch → feature representation (fingerprinted models)."""
        raise NotImplementedError(f"{self.name} has no shared featurize path")

    def predict_from_features(self, features) -> np.ndarray:
        """:meth:`predict` on output of :meth:`featurize`."""
        raise NotImplementedError(f"{self.name} has no shared featurize path")

    def predict_proba_from_features(self, features) -> np.ndarray:
        """:meth:`predict_proba` on output of :meth:`featurize`."""
        raise NotImplementedError(f"{self.name} has no shared featurize path")

    @property
    def vocab_size(self) -> int:
        """Token/feature vocabulary size (the paper's ``v`` column)."""
        return 0

    @property
    def num_parameters(self) -> int:
        """Trainable scalar parameter count (the paper's ``p`` column)."""
        return 0
