"""Traditional two-stage models: ``ctfidf`` and ``wtfidf`` (Section 5.1).

Stage 1 extracts bag-of-ngrams TF-IDF features; stage 2 is multinomial
logistic regression (classification) or Huber-loss linear regression
(regression). Unlike the neural models, the representation is fixed — only
the prediction weights are learned.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.ml.huber import HuberLinearRegression
from repro.ml.logistic import LogisticRegression
from repro.models.base import QueryModel, TaskKind
from repro.text.tfidf import TfidfVectorizer

__all__ = ["TfidfClassifier", "TfidfRegressor"]


class _TfidfBase(QueryModel):
    """Shared feature-extraction plumbing for the two TF-IDF models."""

    def __init__(
        self,
        level: str = "char",
        max_features: int = 20_000,
        max_n: int = 5,
        max_len: int = 512,
        mask_digits: bool = True,
    ):
        self.vectorizer = TfidfVectorizer(
            level=level,
            max_features=max_features,
            min_n=1,
            max_n=max_n,
            max_len=max_len,
            mask_digits=mask_digits,
        )
        prefix = "c" if level == "char" else "w"
        self.name = f"{prefix}tfidf"
        self.level = level

    @property
    def vocab_size(self) -> int:
        return self.vectorizer.num_features


class TfidfClassifier(_TfidfBase):
    """TF-IDF features + multinomial logistic regression."""

    task = TaskKind.CLASSIFICATION

    def __init__(
        self,
        num_classes: int,
        level: str = "char",
        max_features: int = 20_000,
        max_n: int = 5,
        max_len: int = 512,
        lr: float = 0.05,
        epochs: int = 12,
        l2: float = 1e-6,
        seed: int = 0,
        mask_digits: bool = True,
    ):
        super().__init__(level, max_features, max_n, max_len, mask_digits)
        self.classifier = LogisticRegression(
            num_classes=num_classes, lr=lr, epochs=epochs, l2=l2, seed=seed
        )

    def fit(self, statements: Sequence[str], labels: np.ndarray):
        features = self.vectorizer.fit_transform(list(statements))
        self.classifier.fit(features, np.asarray(labels, dtype=np.int64))
        return self

    def predict(self, statements: Sequence[str]) -> np.ndarray:
        return self.classifier.predict(
            self.vectorizer.transform(list(statements))
        )

    def predict_proba(self, statements: Sequence[str]) -> np.ndarray:
        return self.classifier.predict_proba(
            self.vectorizer.transform(list(statements))
        )

    @property
    def num_parameters(self) -> int:
        return self.classifier.num_parameters


class TfidfRegressor(_TfidfBase):
    """TF-IDF features + Huber-loss linear regression."""

    task = TaskKind.REGRESSION

    def __init__(
        self,
        level: str = "char",
        max_features: int = 20_000,
        max_n: int = 5,
        max_len: int = 512,
        lr: float = 0.05,
        epochs: int = 12,
        delta: float = 1.0,
        seed: int = 0,
        mask_digits: bool = True,
    ):
        super().__init__(level, max_features, max_n, max_len, mask_digits)
        self.regressor = HuberLinearRegression(
            delta=delta, lr=lr, epochs=epochs, seed=seed
        )

    def fit(self, statements: Sequence[str], labels: np.ndarray):
        features = self.vectorizer.fit_transform(list(statements))
        self.regressor.fit(features, np.asarray(labels, dtype=np.float64))
        return self

    def predict(self, statements: Sequence[str]) -> np.ndarray:
        return self.regressor.predict(
            self.vectorizer.transform(list(statements))
        )

    @property
    def num_parameters(self) -> int:
        return self.regressor.num_parameters
