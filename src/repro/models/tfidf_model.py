"""Traditional two-stage models: ``ctfidf`` and ``wtfidf`` (Section 5.1).

Stage 1 extracts bag-of-ngrams TF-IDF features; stage 2 is multinomial
logistic regression (classification) or Huber-loss linear regression
(regression). Unlike the neural models, the representation is fixed — only
the prediction weights are learned.
"""

from __future__ import annotations

from collections.abc import Sequence
from hashlib import blake2b

import numpy as np

from repro.ml.huber import HuberLinearRegression
from repro.ml.logistic import LogisticRegression
from repro.models.base import QueryModel, TaskKind
from repro.obs.spans import span
from repro.text.tfidf import TfidfVectorizer

__all__ = ["TfidfClassifier", "TfidfRegressor"]


class _TfidfBase(QueryModel):
    """Shared feature-extraction plumbing for the two TF-IDF models."""

    def __init__(
        self,
        level: str = "char",
        max_features: int = 20_000,
        max_n: int = 5,
        max_len: int = 512,
        mask_digits: bool = True,
    ):
        self.vectorizer = TfidfVectorizer(
            level=level,
            max_features=max_features,
            min_n=1,
            max_n=max_n,
            max_len=max_len,
            mask_digits=mask_digits,
        )
        prefix = "c" if level == "char" else "w"
        self.name = f"{prefix}tfidf"
        self.level = level
        self._fingerprint: bytes | None = None

    @property
    def vocab_size(self) -> int:
        return self.vectorizer.num_features

    def feature_fingerprint(self) -> bytes | None:
        """Digest of the fitted statement→TF-IDF map.

        Heads fit with the same level/caps on the same statements end up
        with byte-identical vocabularies and idf vectors, so the digest
        matches and the facilitator featurizes each batch once for all of
        them instead of once per head. The digest is memoized — the fitted
        vectorizer is immutable, and ``insights_batch`` asks on every call.
        """
        vectorizer = self.vectorizer
        if vectorizer.idf_ is None:
            return None
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        digest = blake2b(digest_size=16)
        digest.update(
            repr(
                (
                    "tfidf",
                    vectorizer.level,
                    vectorizer.max_features,
                    vectorizer.min_n,
                    vectorizer.max_n,
                    vectorizer.max_len,
                    vectorizer.mask_digits,
                )
            ).encode()
        )
        digest.update("\x00".join(vectorizer.vocabulary_).encode())
        digest.update(vectorizer.idf_.tobytes())
        self._fingerprint = digest.digest()
        return self._fingerprint

    def featurize(self, statements: Sequence[str]):
        with span("tfidf", statements=len(statements)):
            return self.vectorizer.transform(list(statements))


class TfidfClassifier(_TfidfBase):
    """TF-IDF features + multinomial logistic regression."""

    task = TaskKind.CLASSIFICATION

    def __init__(
        self,
        num_classes: int,
        level: str = "char",
        max_features: int = 20_000,
        max_n: int = 5,
        max_len: int = 512,
        lr: float = 0.05,
        epochs: int = 12,
        l2: float = 1e-6,
        seed: int = 0,
        mask_digits: bool = True,
    ):
        super().__init__(level, max_features, max_n, max_len, mask_digits)
        self.classifier = LogisticRegression(
            num_classes=num_classes, lr=lr, epochs=epochs, l2=l2, seed=seed
        )

    def fit(self, statements: Sequence[str], labels: np.ndarray):
        self._fingerprint = None
        features = self.vectorizer.fit_transform(list(statements))
        self.classifier.fit(features, np.asarray(labels, dtype=np.int64))
        return self

    def predict(self, statements: Sequence[str]) -> np.ndarray:
        return self.classifier.predict(
            self.vectorizer.transform(list(statements))
        )

    def predict_proba(self, statements: Sequence[str]) -> np.ndarray:
        return self.classifier.predict_proba(
            self.vectorizer.transform(list(statements))
        )

    def predict_from_features(self, features) -> np.ndarray:
        return self.classifier.predict(features)

    def predict_proba_from_features(self, features) -> np.ndarray:
        return self.classifier.predict_proba(features)

    @property
    def num_parameters(self) -> int:
        return self.classifier.num_parameters


class TfidfRegressor(_TfidfBase):
    """TF-IDF features + Huber-loss linear regression."""

    task = TaskKind.REGRESSION

    def __init__(
        self,
        level: str = "char",
        max_features: int = 20_000,
        max_n: int = 5,
        max_len: int = 512,
        lr: float = 0.05,
        epochs: int = 12,
        delta: float = 1.0,
        seed: int = 0,
        mask_digits: bool = True,
    ):
        super().__init__(level, max_features, max_n, max_len, mask_digits)
        self.regressor = HuberLinearRegression(
            delta=delta, lr=lr, epochs=epochs, seed=seed
        )

    def fit(self, statements: Sequence[str], labels: np.ndarray):
        self._fingerprint = None
        features = self.vectorizer.fit_transform(list(statements))
        self.regressor.fit(features, np.asarray(labels, dtype=np.float64))
        return self

    def predict(self, statements: Sequence[str]) -> np.ndarray:
        return self.regressor.predict(
            self.vectorizer.transform(list(statements))
        )

    def predict_from_features(self, features) -> np.ndarray:
        return self.regressor.predict(features)

    @property
    def num_parameters(self) -> int:
        return self.regressor.num_parameters
