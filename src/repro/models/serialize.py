"""Unified model/artifact serialization: payload codecs and zip artifacts.

Everything the library persists — facilitator artifacts, standalone module
weights — routes through one registry of *payload codecs* (name ↔ encode/
decode to bytes) so on-disk formats are named, versioned, and shared across
layers instead of ad-hoc pickles:

- the ``pickle`` codec carries arbitrary fitted model objects;
- the ``npz`` codec carries ``nn.Module`` state dicts and is the same
  byte format :mod:`repro.nn.serialize` writes for ``.npz`` weight files.

On top of the codecs, :func:`write_artifact` / :func:`read_artifact`
implement the versioned artifact container used by
:meth:`repro.core.facilitator.QueryFacilitator.save`: a zip file holding a
``manifest.json`` (format name, format version, model names, label
vocabularies) plus named binary payload members. Readers fail fast with
:class:`ArtifactFormatError` — never a raw ``UnpicklingError`` — when
handed the wrong kind of file or a stale format version.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import zipfile
from collections.abc import Callable
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "ArtifactFormatError",
    "PayloadCodec",
    "register_codec",
    "get_codec",
    "codec_names",
    "encode_payload",
    "decode_payload",
    "pack_arrays",
    "unpack_arrays",
    "write_artifact",
    "read_artifact",
    "read_manifest",
    "MANIFEST_NAME",
]

#: Zip member holding the JSON manifest of every artifact.
MANIFEST_NAME = "manifest.json"


class ArtifactFormatError(ValueError):
    """Raised when a persisted artifact is missing, foreign, or stale.

    Mirrors :class:`repro.workloads.io.WorkloadFormatError` for the model
    side of the library: loaders name the offending path and the expected
    format instead of surfacing pickle/zip internals.
    """


class PayloadCodec:
    """A named bytes codec for one kind of persisted payload."""

    def __init__(
        self,
        name: str,
        encode: Callable[[Any], bytes],
        decode: Callable[[bytes], Any],
    ):
        self.name = name
        self.encode = encode
        self.decode = decode


_CODECS: dict[str, PayloadCodec] = {}


def register_codec(
    name: str,
    encode: Callable[[Any], bytes],
    decode: Callable[[bytes], Any],
) -> PayloadCodec:
    """Register (or replace) a payload codec under ``name``."""
    codec = PayloadCodec(name, encode, decode)
    _CODECS[name] = codec
    return codec


def get_codec(name: str) -> PayloadCodec:
    """Look up a codec; unknown names raise :class:`ArtifactFormatError`."""
    try:
        return _CODECS[name]
    except KeyError:
        raise ArtifactFormatError(
            f"unknown payload codec {name!r} (known: {sorted(_CODECS)}); "
            "the artifact was written by a newer library version"
        ) from None


def codec_names() -> list[str]:
    """Names of every registered codec."""
    return sorted(_CODECS)


def encode_payload(codec: str, obj: Any) -> bytes:
    """Encode ``obj`` with the named codec."""
    return get_codec(codec).encode(obj)


def decode_payload(codec: str, data: bytes) -> Any:
    """Decode ``data`` with the named codec."""
    return get_codec(codec).decode(data)


# -- built-in codecs ---------------------------------------------------------- #


def pack_arrays(arrays: dict[str, np.ndarray]) -> bytes:
    """``{name: array}`` → npz bytes (the ``.npz`` weight-file format)."""
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def unpack_arrays(data: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`pack_arrays`."""
    try:
        with np.load(io.BytesIO(data)) as loaded:
            return {name: loaded[name] for name in loaded.files}
    except (OSError, ValueError) as exc:
        raise ArtifactFormatError(f"corrupt npz payload: {exc}") from exc


def _pickle_decode(data: bytes) -> Any:
    try:
        return pickle.loads(data)
    except Exception as exc:  # UnpicklingError, EOFError, AttributeError...
        raise ArtifactFormatError(f"corrupt pickle payload: {exc}") from exc


register_codec(
    "pickle",
    lambda obj: pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL),
    _pickle_decode,
)
register_codec("npz", pack_arrays, unpack_arrays)


# -- versioned zip artifacts --------------------------------------------------- #


def write_artifact(
    path: str | Path,
    manifest: dict,
    payloads: dict[str, bytes] | None = None,
) -> None:
    """Write a versioned artifact: ``manifest.json`` + binary members.

    ``manifest`` must carry at least ``format`` and ``version`` keys so
    :func:`read_artifact` can validate before touching any payload.

    The write is atomic: the zip is assembled in a same-directory temp
    file and ``os.replace``d into place, so a crash (or an injected
    worker kill) mid-save never leaves a truncated artifact at ``path``
    for a reader to reject — the old file, if any, survives intact.
    """
    if "format" not in manifest or "version" not in manifest:
        raise ValueError("artifact manifest needs 'format' and 'version'")
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with zipfile.ZipFile(tmp, "w", zipfile.ZIP_DEFLATED) as archive:
            archive.writestr(MANIFEST_NAME, json.dumps(manifest, indent=2))
            for member, data in (payloads or {}).items():
                archive.writestr(member, data)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def read_manifest(
    path: str | Path, expected_format: str, expected_version: int
) -> dict:
    """Read and validate just the manifest of an artifact file.

    Raises:
        ArtifactFormatError: not a zip artifact, manifest missing/corrupt,
            wrong ``format`` name, or unsupported ``version``.
        OSError: the file does not exist or cannot be read.
    """
    path = Path(path)
    # surface missing files as the usual OSError, not a format error
    with path.open("rb") as handle:
        handle.read(0)
    if not zipfile.is_zipfile(path):
        raise ArtifactFormatError(
            f"{path}: not a saved {expected_format} artifact "
            f"(expected a zip container with a {MANIFEST_NAME}; "
            "files from before the versioned format must be regenerated)"
        )
    with zipfile.ZipFile(path) as archive:
        if MANIFEST_NAME not in archive.namelist():
            raise ArtifactFormatError(
                f"{path}: zip file without {MANIFEST_NAME} — "
                f"not a saved {expected_format} artifact"
            )
        try:
            manifest = json.loads(archive.read(MANIFEST_NAME))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ArtifactFormatError(
                f"{path}: corrupt {MANIFEST_NAME}: {exc}"
            ) from exc
    if not isinstance(manifest, dict) or manifest.get("format") != expected_format:
        raise ArtifactFormatError(
            f"{path}: artifact format is {manifest.get('format')!r}, "
            f"expected {expected_format!r}"
        )
    if manifest.get("version") != expected_version:
        raise ArtifactFormatError(
            f"{path}: unsupported {expected_format} version "
            f"{manifest.get('version')!r} (this library reads version "
            f"{expected_version})"
        )
    return manifest


def read_artifact(
    path: str | Path, expected_format: str, expected_version: int
) -> tuple[dict, dict[str, bytes]]:
    """Read an artifact written by :func:`write_artifact`.

    Returns the validated manifest and every non-manifest member's bytes.
    """
    manifest = read_manifest(path, expected_format, expected_version)
    payloads: dict[str, bytes] = {}
    with zipfile.ZipFile(Path(path)) as archive:
        for member in archive.namelist():
            if member != MANIFEST_NAME:
                payloads[member] = archive.read(member)
    return manifest, payloads
