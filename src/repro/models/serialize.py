"""Unified model/artifact serialization: payload codecs and zip artifacts.

Everything the library persists — facilitator artifacts, standalone module
weights — routes through one registry of *payload codecs* (name ↔ encode/
decode to bytes) so on-disk formats are named, versioned, and shared across
layers instead of ad-hoc pickles:

- the ``pickle`` codec carries arbitrary fitted model objects;
- the ``npz`` codec carries ``nn.Module`` state dicts and is the same
  byte format :mod:`repro.nn.serialize` writes for ``.npz`` weight files.

On top of the codecs, :func:`write_artifact` / :func:`read_artifact`
implement the versioned artifact container used by
:meth:`repro.core.facilitator.QueryFacilitator.save`: a zip file holding a
``manifest.json`` (format name, format version, model names, label
vocabularies) plus named binary payload members. Readers fail fast with
:class:`ArtifactFormatError` — never a raw ``UnpicklingError`` — when
handed the wrong kind of file or a stale format version.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import struct
import warnings
import zipfile
from collections.abc import Callable, Collection
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "ArtifactFormatError",
    "PayloadCodec",
    "register_codec",
    "get_codec",
    "codec_names",
    "encode_payload",
    "decode_payload",
    "pack_arrays",
    "unpack_arrays",
    "split_arrays",
    "join_arrays",
    "write_artifact",
    "read_artifact",
    "read_manifest",
    "read_members",
    "read_array_members",
    "MANIFEST_NAME",
]

#: Zip member holding the JSON manifest of every artifact.
MANIFEST_NAME = "manifest.json"


class ArtifactFormatError(ValueError):
    """Raised when a persisted artifact is missing, foreign, or stale.

    Mirrors :class:`repro.workloads.io.WorkloadFormatError` for the model
    side of the library: loaders name the offending path and the expected
    format instead of surfacing pickle/zip internals.
    """


class PayloadCodec:
    """A named bytes codec for one kind of persisted payload."""

    def __init__(
        self,
        name: str,
        encode: Callable[[Any], bytes],
        decode: Callable[[bytes], Any],
    ):
        self.name = name
        self.encode = encode
        self.decode = decode


_CODECS: dict[str, PayloadCodec] = {}


def register_codec(
    name: str,
    encode: Callable[[Any], bytes],
    decode: Callable[[bytes], Any],
) -> PayloadCodec:
    """Register (or replace) a payload codec under ``name``."""
    codec = PayloadCodec(name, encode, decode)
    _CODECS[name] = codec
    return codec


def get_codec(name: str) -> PayloadCodec:
    """Look up a codec; unknown names raise :class:`ArtifactFormatError`."""
    try:
        return _CODECS[name]
    except KeyError:
        raise ArtifactFormatError(
            f"unknown payload codec {name!r} (known: {sorted(_CODECS)}); "
            "the artifact was written by a newer library version"
        ) from None


def codec_names() -> list[str]:
    """Names of every registered codec."""
    return sorted(_CODECS)


def encode_payload(codec: str, obj: Any) -> bytes:
    """Encode ``obj`` with the named codec."""
    return get_codec(codec).encode(obj)


def decode_payload(codec: str, data: bytes) -> Any:
    """Decode ``data`` with the named codec."""
    return get_codec(codec).decode(data)


# -- built-in codecs ---------------------------------------------------------- #


def pack_arrays(arrays: dict[str, np.ndarray]) -> bytes:
    """``{name: array}`` → npz bytes (the ``.npz`` weight-file format)."""
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def unpack_arrays(data: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`pack_arrays`."""
    try:
        with np.load(io.BytesIO(data)) as loaded:
            return {name: loaded[name] for name in loaded.files}
    except (OSError, ValueError) as exc:
        raise ArtifactFormatError(f"corrupt npz payload: {exc}") from exc


def _pickle_decode(data: bytes) -> Any:
    try:
        return pickle.loads(data)
    except Exception as exc:  # UnpicklingError, EOFError, AttributeError...
        raise ArtifactFormatError(f"corrupt pickle payload: {exc}") from exc


register_codec(
    "pickle",
    lambda obj: pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL),
    _pickle_decode,
)
register_codec("npz", pack_arrays, unpack_arrays)


# -- split pickles: object skeleton + externalized weight arrays --------------- #

#: arrays smaller than this stay inline in the pickle skeleton — zip
#: member overhead (local header + manifest entry) isn't worth paying
#: for a handful of scalars
SPLIT_MIN_BYTES = 2048


class _ArraySplitter(pickle.Pickler):
    """Pickler that externalizes large numeric arrays via persistent ids.

    Every ndarray of at least ``min_bytes`` whose dtype is numeric/bool is
    replaced in the stream by a persistent id ``a<n>`` and collected in
    ``self.arrays``; with ``float32=True`` float64 payloads are cast down
    on the way out (the serving numerics policy — see
    :mod:`repro.inference.plan`). Identical array objects dedupe to one
    entry, mirroring pickle's memo semantics.
    """

    def __init__(self, buffer: io.BytesIO, min_bytes: int, float32: bool):
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self.min_bytes = min_bytes
        self.float32 = float32
        self.arrays: dict[str, np.ndarray] = {}
        self._seen: dict[int, str] = {}

    def persistent_id(self, obj: Any):  # noqa: D102 (pickle hook)
        if not (
            isinstance(obj, np.ndarray)
            and type(obj) is np.ndarray
            and obj.nbytes >= self.min_bytes
            and obj.dtype.kind in "fiub"
        ):
            return None
        key = self._seen.get(id(obj))
        if key is None:
            arr = obj
            if self.float32 and arr.dtype == np.float64:
                arr = arr.astype(np.float32)
            key = f"a{len(self.arrays)}"
            self.arrays[key] = np.ascontiguousarray(arr)
            self._seen[id(obj)] = key
        return key


class _ArrayJoiner(pickle.Unpickler):
    """Inverse of :class:`_ArraySplitter`: persistent ids → arrays."""

    def __init__(self, buffer: io.BytesIO, arrays):
        super().__init__(buffer)
        self._arrays = arrays

    def persistent_load(self, pid: str) -> np.ndarray:
        try:
            return self._arrays[pid]
        except KeyError:
            raise ArtifactFormatError(
                f"split pickle references missing array member {pid!r}"
            ) from None


def split_arrays(
    obj: Any,
    min_bytes: int = SPLIT_MIN_BYTES,
    float32: bool = True,
) -> tuple[bytes, dict[str, np.ndarray]]:
    """Pickle ``obj`` with its large arrays externalized.

    Returns ``(skeleton bytes, {key: array})``. The skeleton is a normal
    pickle stream except that each externalized array is a persistent-id
    reference; :func:`join_arrays` reassembles the object, accepting
    either eager arrays or ``np.memmap`` views — this is what makes
    memory-mapped artifact loading possible without teaching every model
    class about storage.
    """
    buffer = io.BytesIO()
    splitter = _ArraySplitter(buffer, min_bytes, float32)
    splitter.dump(obj)
    return buffer.getvalue(), splitter.arrays


def join_arrays(skeleton: bytes, arrays) -> Any:
    """Reassemble an object from :func:`split_arrays` output.

    ``arrays`` is any mapping from key to ndarray-like (eager arrays or
    memmap views).
    """
    try:
        return _ArrayJoiner(io.BytesIO(skeleton), arrays).load()
    except ArtifactFormatError:
        raise
    except Exception as exc:
        raise ArtifactFormatError(
            f"corrupt split-pickle payload: {exc}"
        ) from exc


# -- versioned zip artifacts --------------------------------------------------- #


def _npy_bytes(arr: np.ndarray) -> bytes:
    """Serialize one array in ``.npy`` format (no pickle objects)."""
    buffer = io.BytesIO()
    np.lib.format.write_array(buffer, arr, allow_pickle=False)
    return buffer.getvalue()


#: size of a zip local file header before the variable-length name/extra
_LOCAL_HEADER_SIZE = 30
_LOCAL_HEADER_SIGNATURE = b"PK\x03\x04"


def write_artifact(
    path: str | Path,
    manifest: dict,
    payloads: dict[str, bytes] | None = None,
    arrays: dict[str, np.ndarray] | None = None,
) -> None:
    """Write a versioned artifact: ``manifest.json`` + binary members.

    ``manifest`` must carry at least ``format`` and ``version`` keys so
    :func:`read_artifact` can validate before touching any payload.

    ``arrays`` members are written *uncompressed* (``ZIP_STORED``) in
    ``.npy`` format, and the manifest gains an ``arrays`` index recording
    each member's raw-data byte offset, dtype, and shape — which is what
    lets :func:`read_array_members` memory-map weights straight out of
    the zip file without inflating anything. Array members are written
    before the manifest so the offsets are known when the manifest is
    serialized (zip readers address members by name, not position).

    The write is atomic: the zip is assembled in a same-directory temp
    file and ``os.replace``d into place, so a crash (or an injected
    worker kill) mid-save never leaves a truncated artifact at ``path``
    for a reader to reject — the old file, if any, survives intact.
    """
    if "format" not in manifest or "version" not in manifest:
        raise ValueError("artifact manifest needs 'format' and 'version'")
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with zipfile.ZipFile(tmp, "w", zipfile.ZIP_DEFLATED) as archive:
            array_index: dict[str, dict] = {}
            for member, arr in (arrays or {}).items():
                arr = np.ascontiguousarray(arr)
                raw = _npy_bytes(arr)
                archive.writestr(
                    member, raw, compress_type=zipfile.ZIP_STORED
                )
                info = archive.getinfo(member)
                data_offset = (
                    info.header_offset
                    + _LOCAL_HEADER_SIZE
                    + len(info.filename.encode("utf-8"))
                    + len(info.extra)
                )
                array_index[member] = {
                    # offset of the flat array data: past the npy header
                    "offset": data_offset + (len(raw) - arr.nbytes),
                    "dtype": arr.dtype.str,
                    "shape": list(arr.shape),
                }
            if array_index:
                manifest = dict(manifest)
                manifest["arrays"] = array_index
            archive.writestr(MANIFEST_NAME, json.dumps(manifest, indent=2))
            for member, data in (payloads or {}).items():
                archive.writestr(member, data)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def read_manifest(
    path: str | Path,
    expected_format: str,
    expected_version: int | Collection[int],
) -> dict:
    """Read and validate just the manifest of an artifact file.

    ``expected_version`` may be a single version or a collection of
    supported versions (readers that keep back-compat with older
    on-disk layouts pass the full supported set).

    Raises:
        ArtifactFormatError: not a zip artifact, manifest missing/corrupt,
            wrong ``format`` name, or unsupported ``version``.
        OSError: the file does not exist or cannot be read.
    """
    path = Path(path)
    # surface missing files as the usual OSError, not a format error
    with path.open("rb") as handle:
        handle.read(0)
    if not zipfile.is_zipfile(path):
        raise ArtifactFormatError(
            f"{path}: not a saved {expected_format} artifact "
            f"(expected a zip container with a {MANIFEST_NAME}; "
            "files from before the versioned format must be regenerated)"
        )
    with zipfile.ZipFile(path) as archive:
        if MANIFEST_NAME not in archive.namelist():
            raise ArtifactFormatError(
                f"{path}: zip file without {MANIFEST_NAME} — "
                f"not a saved {expected_format} artifact"
            )
        try:
            manifest = json.loads(archive.read(MANIFEST_NAME))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ArtifactFormatError(
                f"{path}: corrupt {MANIFEST_NAME}: {exc}"
            ) from exc
    if not isinstance(manifest, dict) or manifest.get("format") != expected_format:
        raise ArtifactFormatError(
            f"{path}: artifact format is {manifest.get('format')!r}, "
            f"expected {expected_format!r}"
        )
    supported = (
        (expected_version,)
        if isinstance(expected_version, int)
        else tuple(expected_version)
    )
    if manifest.get("version") not in supported:
        versions = ", ".join(str(v) for v in sorted(supported))
        raise ArtifactFormatError(
            f"{path}: unsupported {expected_format} version "
            f"{manifest.get('version')!r} (this library reads "
            f"version{'s' if len(supported) > 1 else ''} {versions})"
        )
    return manifest


def read_artifact(
    path: str | Path,
    expected_format: str,
    expected_version: int | Collection[int],
) -> tuple[dict, dict[str, bytes]]:
    """Read an artifact written by :func:`write_artifact`.

    Returns the validated manifest and every non-manifest member's bytes.
    """
    manifest = read_manifest(path, expected_format, expected_version)
    payloads: dict[str, bytes] = {}
    with zipfile.ZipFile(Path(path)) as archive:
        for member in archive.namelist():
            if member != MANIFEST_NAME:
                payloads[member] = archive.read(member)
    return manifest, payloads


def read_members(
    path: str | Path, members: Collection[str]
) -> dict[str, bytes]:
    """Read just the named zip members (no manifest validation).

    Missing members raise :class:`ArtifactFormatError` naming the member.
    """
    data: dict[str, bytes] = {}
    with zipfile.ZipFile(Path(path)) as archive:
        for member in members:
            try:
                data[member] = archive.read(member)
            except KeyError:
                raise ArtifactFormatError(
                    f"{path}: artifact is missing member {member!r}"
                ) from None
    return data


def _validated_data_offset(
    path: Path, handle, info: zipfile.ZipInfo, entry: dict, member: str
) -> int:
    """Re-derive the array-data offset from the on-disk headers.

    Walks the zip *local* file header (whose name/extra lengths may
    differ from the central directory's) and the npy header behind it,
    and cross-checks the result plus dtype/shape against the manifest
    entry. A mismatch means the manifest's offsets no longer describe
    this file — memory-mapping would silently read garbage — so it is an
    :class:`ArtifactFormatError` naming the member.
    """
    handle.seek(info.header_offset)
    header = handle.read(_LOCAL_HEADER_SIZE)
    if len(header) != _LOCAL_HEADER_SIZE or not header.startswith(
        _LOCAL_HEADER_SIGNATURE
    ):
        raise ArtifactFormatError(
            f"{path}: corrupt local header for array member {member!r}"
        )
    name_len, extra_len = struct.unpack("<HH", header[26:30])
    handle.seek(info.header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len)
    try:
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            header = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            header = np.lib.format.read_array_header_2_0(handle)
        else:
            raise ValueError(f"unsupported npy format version {version}")
        shape, fortran, dtype = header
    except ValueError as exc:
        raise ArtifactFormatError(
            f"{path}: corrupt npy header for array member {member!r}: {exc}"
        ) from exc
    data_offset = handle.tell()
    if (
        data_offset != entry["offset"]
        or fortran
        or dtype.str != entry["dtype"]
        or list(shape) != list(entry["shape"])
    ):
        raise ArtifactFormatError(
            f"{path}: manifest offset/layout for array member {member!r} "
            "does not match the file (corrupt or hand-edited artifact); "
            "refusing to memory-map"
        )
    return data_offset


def read_array_members(
    path: str | Path, manifest: dict, mmap: bool = False
) -> dict[str, np.ndarray]:
    """Load the artifact's array members listed in ``manifest['arrays']``.

    With ``mmap=False`` each member is read eagerly through the npy
    parser. With ``mmap=True`` the flat array data is memory-mapped
    straight out of the zip file at the manifest-recorded offset —
    possible because :func:`write_artifact` stores array members
    uncompressed — after re-deriving the offset from the on-disk zip and
    npy headers (a mismatch raises :class:`ArtifactFormatError` naming
    the member). Members that turn out to be compressed (an artifact
    rewritten by a generic zip tool) fall back to eager reads with a
    warning rather than failing.
    """
    path = Path(path)
    index = manifest.get("arrays") or {}
    arrays: dict[str, np.ndarray] = {}
    if not index:
        return arrays
    with zipfile.ZipFile(path) as archive:
        if mmap:
            with path.open("rb") as handle:
                for member, entry in index.items():
                    try:
                        info = archive.getinfo(member)
                    except KeyError:
                        raise ArtifactFormatError(
                            f"{path}: artifact is missing array member "
                            f"{member!r}"
                        ) from None
                    if info.compress_type != zipfile.ZIP_STORED:
                        warnings.warn(
                            f"{path}: array member {member!r} is "
                            "compressed; falling back to an eager read "
                            "(memory-mapping needs stored members)",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        arrays[member] = _read_npy_member(archive, member)
                        continue
                    offset = _validated_data_offset(
                        path, handle, info, entry, member
                    )
                    arrays[member] = np.memmap(
                        path,
                        dtype=np.dtype(entry["dtype"]),
                        mode="r",
                        offset=offset,
                        shape=tuple(entry["shape"]),
                    )
        else:
            for member in index:
                arrays[member] = _read_npy_member(archive, member)
    return arrays


def _read_npy_member(archive: zipfile.ZipFile, member: str) -> np.ndarray:
    try:
        with archive.open(member) as stream:
            return np.lib.format.read_array(stream, allow_pickle=False)
    except KeyError:
        raise ArtifactFormatError(
            f"{archive.filename}: artifact is missing array member "
            f"{member!r}"
        ) from None
    except ValueError as exc:
        raise ArtifactFormatError(
            f"{archive.filename}: corrupt array member {member!r}: {exc}"
        ) from exc
