"""Tree-LSTM query model over parsed SQL ASTs (paper Section 8).

The paper's sequential models read a query as a flat token stream; its
future work proposes tree-structured architectures [52] that read the
*parse* instead. This model wires the library's own recursive-descent
parser to a :class:`~repro.nn.tree_lstm.ChildSumTreeLSTM`:

statement → AST → symbol per node → embedding → Tree-LSTM → root state
→ linear head.

Node symbols keep what matters for the prediction problems: node kinds,
operators, join kinds, function names (aggregates marked), table names,
and literal kinds — while column names and literal values collapse to
their kinds, the same open-vocabulary control word-level models get from
``<DIGIT>`` masking (Section 4.4.1). Unparseable statements degrade to a
single ``stmt:unknown`` node rather than failing, mirroring how the rest
of the library treats junk input.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

import numpy as np

from repro.models.base import QueryModel, TaskKind
from repro.nn.layers import Embedding, Linear
from repro.nn.losses import HuberLoss, SoftmaxCrossEntropy, softmax
from repro.nn.module import Module
from repro.nn.optim import AdaMax, clip_grad_norm
from repro.nn.tree_lstm import ChildSumTreeLSTM, EncodedTree
from repro.sqlang import ast_nodes as ast
from repro.sqlang.parser import ParseResult
from repro.sqlang.pipeline import analyze_batch, parse_cached
from repro.text.vocab import Vocabulary

__all__ = ["TreeLSTMModel", "node_symbol", "encode_tree"]


def node_symbol(node: ast.Node) -> str:
    """The embedding symbol for one AST node (see module docstring)."""
    if isinstance(node, ast.Statement):
        return f"stmt:{node.statement_type.lower()}"
    if isinstance(node, ast.SelectQuery):
        return "select:distinct" if node.distinct else "select"
    if isinstance(node, ast.SelectItem):
        return "selectitem"
    if isinstance(node, ast.TableRef):
        return f"table:{node.base_name.lower()}"
    if isinstance(node, ast.SubquerySource):
        return "derived"
    if isinstance(node, ast.Join):
        return f"join:{node.kind.lower()}"
    if isinstance(node, ast.Subquery):
        return "subquery"
    if isinstance(node, ast.FunctionCall):
        if node.is_aggregate:
            return f"agg:{node.name.lower()}"
        return f"fn:{node.name.rsplit('.', 1)[-1].lower()}"
    if isinstance(node, ast.BinaryOp):
        return f"op:{node.op.lower()}"
    if isinstance(node, ast.UnaryOp):
        return f"uop:{node.op.lower()}"
    if isinstance(node, ast.Between):
        return "between"
    if isinstance(node, ast.InList):
        return "in"
    if isinstance(node, ast.CaseExpr):
        return "case"
    if isinstance(node, ast.OrderItem):
        return "order:desc" if node.descending else "order"
    if isinstance(node, ast.Literal):
        return "lit:num" if node.is_number else "lit:str"
    if isinstance(node, ast.Star):
        return "star"
    if isinstance(node, ast.ColumnRef):
        return "col"
    if isinstance(node, ast.VarRef):
        return "var"
    return type(node).__name__.lower()


def _flatten_post_order(root: ast.Node, max_nodes: int) -> tuple[list[ast.Node], list[list[int]]]:
    """Post-order node list (children before parents) + child index lists.

    Subtrees beyond ``max_nodes`` are truncated: a node whose children
    would overflow the budget keeps only the children that fit.
    """
    nodes: list[ast.Node] = []
    children: list[list[int]] = []

    def visit(node: ast.Node) -> int | None:
        kid_ids: list[int] = []
        for child in node.children():
            if len(nodes) >= max_nodes - 1:
                break
            child_id = visit(child)
            if child_id is not None:
                kid_ids.append(child_id)
        if len(nodes) >= max_nodes:
            return None
        nodes.append(node)
        children.append(kid_ids)
        return len(nodes) - 1

    visit(root)
    return nodes, children


def encode_tree(
    statement: str,
    vocab: Vocabulary | None = None,
    max_nodes: int = 200,
    parsed: ParseResult | None = None,
) -> tuple[EncodedTree, list[str]]:
    """Parse ``statement`` and flatten its AST to an :class:`EncodedTree`.

    Returns the encoded tree plus the symbol list (for vocabulary
    construction). Without a vocabulary, ``symbol_ids`` are all zero.
    Parsing goes through the shared analysis pipeline unless a
    pre-computed ``parsed`` result is supplied.
    """
    result = parsed if parsed is not None else parse_cached(statement)
    if result.statements:
        root: ast.Node = result.statements[0]
    else:
        root = ast.Statement(statement_type="UNKNOWN")
    nodes, children = _flatten_post_order(root, max_nodes=max_nodes)
    symbols = [node_symbol(n) for n in nodes]
    if vocab is None:
        ids = np.zeros(len(nodes), dtype=np.int64)
    else:
        ids = vocab.encode_array(symbols)
    return EncodedTree(symbol_ids=ids, children=children), symbols


class _TreeNetwork(Module):
    """Embedding → ChildSumTreeLSTM → Linear head."""

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int,
        hidden: int,
        out_dim: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        # pad_id=None: every vocabulary row (including UNK) is trainable,
        # trees have no padding
        self.embedding = self.add_module(
            "embedding", Embedding(vocab_size, embed_dim, rng, pad_id=None)
        )
        self.tree = self.add_module(
            "tree", ChildSumTreeLSTM(embed_dim, hidden, rng)
        )
        self.head = self.add_module("head", Linear(hidden, out_dim, rng))

    def forward(self, tree: EncodedTree) -> np.ndarray:
        x = self.embedding.forward(tree.symbol_ids)
        root = self.tree.forward_tree(x, tree)
        return self.head.forward(root[None, :])[0]

    def backward(self, dout: np.ndarray) -> None:
        droot = self.head.backward(dout[None, :])[0]
        dx = self.tree.backward_tree(droot)
        self.embedding.backward(dx)


class TreeLSTMModel(QueryModel):
    """Child-Sum Tree-LSTM over ASTs, trained like the sequential models.

    Same conventions as the rest of the model zoo: classification consumes
    integer class ids; regression consumes log-transformed labels
    (standardized internally so the Huber transition point is meaningful).
    Training is per-tree (trees do not batch), with gradients accumulated
    over mini-batches before each AdaMax step.

    Args:
        task: Classification or regression.
        num_classes: Output classes (classification only).
        embed_dim: Node-symbol embedding width.
        hidden: Tree-LSTM hidden width.
        epochs / lr / batch_size / clip_norm: Optimization knobs.
        max_vocab: Node-symbol vocabulary cap.
        max_nodes: AST truncation bound (very long statements).
        seed: Initialization/shuffling seed.
    """

    name = "treelstm"

    def __init__(
        self,
        task: TaskKind = TaskKind.REGRESSION,
        num_classes: int = 2,
        embed_dim: int = 32,
        hidden: int = 48,
        epochs: int = 6,
        lr: float = 3e-3,
        batch_size: int = 16,
        clip_norm: float = 0.25,
        max_vocab: int = 2000,
        max_nodes: int = 200,
        seed: int = 0,
    ):
        self.task = task
        self.num_classes = num_classes
        self.embed_dim = embed_dim
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.clip_norm = clip_norm
        self.max_vocab = max_vocab
        self.max_nodes = max_nodes
        self.rng = np.random.default_rng(seed)
        self.out_dim = num_classes if task is TaskKind.CLASSIFICATION else 1
        self.vocab: Vocabulary | None = None
        self.network: _TreeNetwork | None = None
        self.history: list[float] = []
        self._loss = (
            SoftmaxCrossEntropy()
            if task is TaskKind.CLASSIFICATION
            else HuberLoss(delta=1.0)
        )
        self._target_center = 0.0
        self._target_scale = 1.0

    # -- training ---------------------------------------------------------- #

    def fit(self, statements: Sequence[str], labels: np.ndarray) -> "TreeLSTMModel":
        statements = list(statements)
        if not statements:
            raise ValueError("cannot fit TreeLSTMModel on an empty training set")
        if len(statements) != len(labels):
            raise ValueError("statements and labels must have equal length")

        counts: Counter[str] = Counter()
        parsed: list[tuple[EncodedTree, list[str]]] = []
        for statement, analysis in zip(statements, analyze_batch(statements)):
            tree, symbols = encode_tree(
                statement, max_nodes=self.max_nodes, parsed=analysis.parsed
            )
            parsed.append((tree, symbols))
            counts.update(symbols)
        self.vocab = Vocabulary.from_counts(counts, max_size=self.max_vocab)
        trees: list[EncodedTree] = []
        for tree, symbols in parsed:
            tree.symbol_ids = self.vocab.encode_array(symbols)
            trees.append(tree)

        if self.task is TaskKind.CLASSIFICATION:
            targets = np.asarray(labels, dtype=np.int64)
        else:
            raw = np.asarray(labels, dtype=np.float64)
            self._target_center = float(np.median(raw))
            spread = float(raw.std())
            self._target_scale = spread if spread > 1e-9 else 1.0
            targets = (raw - self._target_center) / self._target_scale

        self.network = _TreeNetwork(
            vocab_size=len(self.vocab),
            embed_dim=self.embed_dim,
            hidden=self.hidden,
            out_dim=self.out_dim,
            rng=self.rng,
        )
        optimizer = AdaMax(self.network.parameters(), lr=self.lr)
        n = len(trees)
        self.network.train()
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            epoch_loss = 0.0
            steps = 0
            for start in range(0, n, self.batch_size):
                chosen = order[start : start + self.batch_size]
                self.network.zero_grad()
                batch_loss = 0.0
                for idx in chosen:
                    output = self.network.forward(trees[idx])
                    if self.task is TaskKind.CLASSIFICATION:
                        loss, dout = self._loss(
                            output[None, :], targets[idx : idx + 1]
                        )
                        self.network.backward(dout[0] / len(chosen))
                    else:
                        loss, dgrad = self._loss(
                            output[:1], targets[idx : idx + 1]
                        )
                        self.network.backward(
                            np.asarray([dgrad[0]]) / len(chosen)
                        )
                    batch_loss += loss
                if self.clip_norm > 0:
                    clip_grad_norm(self.network.parameters(), self.clip_norm)
                optimizer.step()
                epoch_loss += batch_loss / len(chosen)
                steps += 1
            self.history.append(epoch_loss / max(steps, 1))
        self.network.eval()
        return self

    # -- prediction --------------------------------------------------------- #

    def _outputs(self, statements: Sequence[str]) -> np.ndarray:
        if self.network is None or self.vocab is None:
            raise RuntimeError("TreeLSTMModel must be fitted first")
        self.network.eval()
        outputs = np.zeros((len(statements), self.out_dim))
        analyses = analyze_batch(statements)
        for row, statement in enumerate(statements):
            tree, symbols = encode_tree(
                statement,
                vocab=self.vocab,
                max_nodes=self.max_nodes,
                parsed=analyses[row].parsed,
            )
            outputs[row] = self.network.forward(tree)
        return outputs

    def predict(self, statements: Sequence[str]) -> np.ndarray:
        output = self._outputs(list(statements))
        if self.task is TaskKind.CLASSIFICATION:
            return output.argmax(axis=1)
        return output[:, 0] * self._target_scale + self._target_center

    def predict_proba(self, statements: Sequence[str]) -> np.ndarray:
        if self.task is not TaskKind.CLASSIFICATION:
            raise NotImplementedError("regression model has no probabilities")
        return softmax(self._outputs(list(statements)))

    @property
    def vocab_size(self) -> int:
        return len(self.vocab) if self.vocab is not None else 0

    @property
    def num_parameters(self) -> int:
        return self.network.num_parameters() if self.network is not None else 0
