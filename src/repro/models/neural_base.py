"""Shared training harness for the neural text models (Sections 5.2-5.3).

Subclasses define the network (embedding → encoder → head) and the two
hooks ``_forward`` / ``_backward``; this base class owns vocabulary
construction, batching, the AdaMax loop with gradient clipping, and
prediction. Hyper-parameters default to the paper's fixed choices
(Section 6.1): learning rate 1e-3, batch size 16, embedding size 100.

Training runs off duplicate-collapsed, length-bucketed *batch plans*
(``bucket=True``, the default): the corpus is encoded and its exact
duplicate ``(statement, label)`` rows collapsed exactly once per
``fit`` (real workloads are massively repetitive — Figure 20 — and a
weight-``k`` row contributes identically to ``k`` copies sharing a
batch); each epoch then re-buckets the collapsed rows with a fresh
seeded shuffle, sorting by sequence length within small pools so almost
no padded timestep is ever computed while batch composition stays
near-iid. Re-padding a bucket is one vectorized scatter per epoch —
re-encoding is the cost worth hoisting. ``bucket=False`` reproduces the
legacy loop — fresh random batches each epoch, padded per batch —
whose seeded trajectory matches the pre-rewrite implementation step for
step (the training benchmark asserts this).
"""

from __future__ import annotations

import time
from abc import abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.models.base import QueryModel, TaskKind
from repro.obs import events as obs_events
from repro.obs.registry import get_registry
from repro.nn.losses import HuberLoss, SoftmaxCrossEntropy, softmax
from repro.nn.module import Module
from repro.nn.optim import AdaMax, clip_grad_norm
from repro.text.encode import SequenceEncoder, pad_sequences
from repro.text.vocab import Vocabulary, build_char_vocab, build_word_vocab

__all__ = ["NeuralHyperParams", "NeuralTextModel", "PlanBatch", "build_batch_plan"]


@dataclass
class NeuralHyperParams:
    """Training hyper-parameters (paper defaults, Section 6.1)."""

    lr: float = 1e-3
    batch_size: int = 16
    embed_dim: int = 100
    epochs: int = 4
    clip_norm: float = 0.25  # 0 disables clipping
    weight_decay: float = 0.0
    max_len_char: int = 200
    max_len_word: int = 64
    max_vocab_char: int = 512
    max_vocab_word: int = 20_000
    seed: int = 0
    #: length-bucketed, duplicate-collapsed batch plan (False = legacy
    #: random batches, the pre-rewrite trajectory)
    bucket: bool = True


@dataclass
class PlanBatch:
    """One precomputed training batch (padded once, reused every epoch)."""

    ids: np.ndarray  #: (b, T_bucket) padded id matrix
    lengths: np.ndarray  #: (b,) true sequence lengths
    index: np.ndarray  #: rows into the original statements/targets
    weights: np.ndarray | None = field(default=None)  #: duplicate counts


#: batches per shuffled sorting pool — buckets are sorted only inside a
#: random pool this many batches wide, so batch composition stays
#: near-iid (plain shuffled SGD) while padding waste still collapses
BUCKET_POOL = 8


def _collapse_duplicates(
    encoded: Sequence[Sequence[int]],
    statements: Sequence[str],
    targets: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge exact duplicate ``(statement, target)`` rows.

    Returns ``(representative row indices, duplicate counts, sequence
    lengths)``. Epoch-invariant — computed once per fit.
    """
    first_row: dict = {}
    reps: list[int] = []
    counts: list[int] = []
    for i, statement in enumerate(statements):
        key = (statement, targets[i].item())
        j = first_row.get(key)
        if j is None:
            first_row[key] = len(reps)
            reps.append(i)
            counts.append(1)
        else:
            counts[j] += 1
    rep_idx = np.asarray(reps, dtype=np.int64)
    count_arr = np.asarray(counts, dtype=np.float64)
    lengths = np.fromiter(
        (max(len(encoded[i]), 1) for i in reps),
        dtype=np.int64,
        count=len(reps),
    )
    return rep_idx, count_arr, lengths


def _bucketed_batches(
    encoded: Sequence[Sequence[int]],
    rep_idx: np.ndarray,
    count_arr: np.ndarray,
    lengths: np.ndarray,
    batch_size: int,
    pad_id: int,
    rng: np.random.Generator,
) -> list[PlanBatch]:
    """One epoch's batches over pre-collapsed rows (fresh seeded shuffle)."""
    m = len(rep_idx)
    perm = rng.permutation(m)
    pool_size = batch_size * BUCKET_POOL
    chunks = []
    for pool_start in range(0, m, pool_size):
        pool = perm[pool_start : pool_start + pool_size]
        chunks.append(pool[np.argsort(lengths[pool], kind="stable")])
    order = np.concatenate(chunks) if chunks else perm
    has_duplicates = bool(count_arr.max() > 1.0) if m else False
    plan: list[PlanBatch] = []
    for start in range(0, m, batch_size):
        sel = order[start : start + batch_size]
        rows = rep_idx[sel]
        ids = pad_sequences([encoded[i] for i in rows], pad_id=pad_id)
        batch_lengths = np.maximum((ids != pad_id).sum(axis=1), 1)
        plan.append(
            PlanBatch(
                ids=ids,
                lengths=batch_lengths,
                index=rows,
                weights=count_arr[sel] if has_duplicates else None,
            )
        )
    return plan


def build_batch_plan(
    encoded: Sequence[Sequence[int]],
    statements: Sequence[str],
    targets: np.ndarray,
    batch_size: int,
    pad_id: int,
    rng: np.random.Generator,
) -> list[PlanBatch]:
    """Length-bucketed, duplicate-collapsed batches over a training set.

    Exact duplicate ``(statement, target)`` rows are merged into one row
    whose loss weight is the duplicate count — gradient-identical to the
    duplicates sharing a batch. The survivors are shuffled (seeded) and
    stable-sorted by sequence length *within pools of*
    :data:`BUCKET_POOL` batches, so each batch pads to a near-uniform
    bucket width while batch membership stays close to an iid shuffle —
    a global sort would correlate every batch with statement length and
    measurably shift what the models learn.
    """
    rep_idx, count_arr, lengths = _collapse_duplicates(
        encoded, statements, targets
    )
    return _bucketed_batches(
        encoded, rep_idx, count_arr, lengths, batch_size, pad_id, rng
    )


class NeuralTextModel(QueryModel):
    """Base class for ``ccnn``/``wcnn``/``clstm``/``wlstm``."""

    def __init__(
        self,
        level: str,
        task: TaskKind,
        num_classes: int = 2,
        hyper: NeuralHyperParams | None = None,
    ):
        if level not in ("char", "word"):
            raise ValueError(f"level must be 'char' or 'word', got {level!r}")
        self.level = level
        self.task = task
        self.num_classes = num_classes
        self.hyper = hyper or NeuralHyperParams()
        self.rng = np.random.default_rng(self.hyper.seed)
        self.encoder: SequenceEncoder | None = None
        self.network: Module | None = None
        self.out_dim = num_classes if task is TaskKind.CLASSIFICATION else 1
        self.history: list[float] = []
        if task is TaskKind.CLASSIFICATION:
            self._loss = SoftmaxCrossEntropy()
        else:
            self._loss = HuberLoss(delta=1.0)
        # regression targets are standardized internally so the Huber
        # transition point sits at one robust standard deviation;
        # predictions are mapped back to the caller's (log-label) scale
        self._target_center = 0.0
        self._target_scale = 1.0

    # -- subclass hooks --------------------------------------------------- #

    @abstractmethod
    def _build_network(self, vocab_size: int, pad_id: int) -> Module:
        """Construct the network; called once, after the vocab is known."""

    @abstractmethod
    def _forward(self, ids: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """(B, T) ids → (B, out_dim) outputs. Must cache for backward."""

    @abstractmethod
    def _backward(self, dout: np.ndarray) -> None:
        """Backprop from (B, out_dim) output gradient."""

    def _forward_infer(
        self, ids: np.ndarray, lengths: np.ndarray
    ) -> np.ndarray:
        """No-grad forward used by prediction.

        Subclasses override to route through the layers' ``infer``
        methods, which run the identical floating-point computation as
        ``forward`` without allocating BPTT caches. The default falls
        back to :meth:`_forward` for networks without an infer path.
        """
        return self._forward(ids, lengths)

    # -- shared machinery -------------------------------------------------- #

    def _build_vocab(self, statements: Sequence[str]) -> Vocabulary:
        if self.level == "char":
            return build_char_vocab(statements, max_size=self.hyper.max_vocab_char)
        return build_word_vocab(
            statements, max_size=self.hyper.max_vocab_word, min_count=2
        )

    def _max_len(self) -> int:
        return (
            self.hyper.max_len_char
            if self.level == "char"
            else self.hyper.max_len_word
        )

    @staticmethod
    def _lengths(ids: np.ndarray, pad_id: int) -> np.ndarray:
        lengths = (ids != pad_id).sum(axis=1)
        return np.maximum(lengths, 1)

    def _encode_targets(self, labels: np.ndarray) -> np.ndarray:
        if self.task is TaskKind.CLASSIFICATION:
            return np.asarray(labels, dtype=np.int64)
        raw = np.asarray(labels, dtype=np.float64)
        self._target_center = float(np.median(raw))
        spread = float(raw.std())
        self._target_scale = spread if spread > 1e-9 else 1.0
        return (raw - self._target_center) / self._target_scale

    def _record_epoch(
        self, epoch: int, mean_loss: float, seconds: float, rows: int
    ) -> None:
        """Report one finished epoch to the obs registry (gauges labeled
        by model class) and, when ``REPRO_OBS_LOG`` is set, the event log."""
        model = type(self).__name__
        registry = get_registry()
        registry.gauge(
            "repro_train_epoch_loss",
            "Mean training loss of the most recent epoch",
            model=model,
        ).set(mean_loss)
        registry.gauge(
            "repro_train_epoch_seconds",
            "Wall-clock duration of the most recent epoch",
            model=model,
        ).set(seconds)
        registry.gauge(
            "repro_train_rows_per_second",
            "Training rows processed per second in the most recent epoch",
            model=model,
        ).set(rows / seconds if seconds > 0 else 0.0)
        obs_events.emit(
            "train.epoch",
            model=model,
            epoch=epoch,
            loss=round(mean_loss, 6),
            seconds=round(seconds, 4),
            rows=rows,
        )

    def _train_step(
        self,
        ids: np.ndarray,
        lengths: np.ndarray,
        target_batch: np.ndarray,
        weights: np.ndarray | None,
        optimizer: AdaMax,
    ) -> float:
        output = self._forward(ids, lengths)
        if self.task is TaskKind.CLASSIFICATION:
            loss, dout = self._loss(output, target_batch, weights)
        else:
            loss, dgrad = self._loss(output[:, 0], target_batch, weights)
            dout = dgrad[:, None]
        self.network.zero_grad()
        self._backward(dout)
        if self.hyper.clip_norm > 0:
            clip_grad_norm(self.network.parameters(), self.hyper.clip_norm)
        optimizer.step()
        return loss

    def _run_epochs(
        self,
        statements: list[str],
        encoded: list[list[int]],
        targets: np.ndarray,
        epochs: int,
        optimizer: AdaMax,
        record_history: bool = False,
    ) -> None:
        """The shared training loop behind :meth:`fit` and :meth:`finetune`.

        ``bucket=True`` collapses duplicates once, then re-buckets the
        collapsed rows each epoch with a fresh seeded shuffle (length-
        sorted within pools, padded per bucket — one vectorized scatter).
        ``bucket=False`` replays the legacy loop (fresh random batches per
        epoch, padded per batch) whose seeded trajectory is identical to
        the pre-rewrite implementation.
        """
        assert self.network is not None and self.encoder is not None
        pad_id = self.encoder.vocab.pad_id
        n = len(statements)
        batch = self.hyper.batch_size
        self.network.train()
        if self.hyper.bucket:
            # duplicates collapse once; each epoch re-buckets from the
            # precomputed encodings with a fresh seeded permutation, so
            # batch composition stays stochastic like plain shuffled SGD
            # (padding a bucket is one vectorized scatter — re-encoding
            # is the cost worth hoisting, re-padding is not)
            rep_idx, count_arr, lengths = _collapse_duplicates(
                encoded, statements, targets
            )
            for epoch in range(epochs):
                epoch_started = time.perf_counter()
                plan = _bucketed_batches(
                    encoded, rep_idx, count_arr, lengths, batch, pad_id,
                    self.rng,
                )
                epoch_loss = 0.0
                for b in self.rng.permutation(len(plan)):
                    pb = plan[b]
                    epoch_loss += self._train_step(
                        pb.ids,
                        pb.lengths,
                        targets[pb.index],
                        pb.weights,
                        optimizer,
                    )
                mean_loss = epoch_loss / max(len(plan), 1)
                if record_history:
                    self.history.append(mean_loss)
                self._record_epoch(
                    epoch,
                    mean_loss,
                    time.perf_counter() - epoch_started,
                    len(rep_idx),
                )
        else:
            for epoch in range(epochs):
                epoch_started = time.perf_counter()
                order = self.rng.permutation(n)
                epoch_loss = 0.0
                steps = 0
                for start in range(0, n, batch):
                    chosen = order[start : start + batch]
                    ids = self._pad([encoded[i] for i in chosen])
                    lengths = self._lengths(ids, pad_id)
                    epoch_loss += self._train_step(
                        ids, lengths, targets[chosen], None, optimizer
                    )
                    steps += 1
                mean_loss = epoch_loss / max(steps, 1)
                if record_history:
                    self.history.append(mean_loss)
                self._record_epoch(
                    epoch,
                    mean_loss,
                    time.perf_counter() - epoch_started,
                    n,
                )
        self.network.eval()

    def fit(self, statements: Sequence[str], labels: np.ndarray):
        statements = list(statements)
        vocab = self._build_vocab(statements)
        self.encoder = SequenceEncoder(vocab, self.level, self._max_len())
        self.network = self._build_network(len(vocab), vocab.pad_id)
        optimizer = AdaMax(
            self.network.parameters(),
            lr=self.hyper.lr,
            weight_decay=self.hyper.weight_decay,
        )
        targets = self._encode_targets(labels)
        encoded = [self.encoder.encode(s) for s in statements]
        self._run_epochs(
            statements,
            encoded,
            targets,
            self.hyper.epochs,
            optimizer,
            record_history=True,
        )
        return self

    def finetune(
        self,
        statements: Sequence[str],
        labels: np.ndarray,
        epochs: int | None = None,
        reset_head: bool = True,
    ) -> "NeuralTextModel":
        """Continue training a fitted model on a new labelled corpus.

        Implements the paper's future-work transfer-learning idea
        (Section 8): the embedding and encoder weights learned on a large
        source workload are kept; only the output head is re-initialised
        (``reset_head``), and a short optimisation run adapts the model to
        the target workload. Tokens unseen during pre-training map to UNK.

        Args:
            statements: Target-workload statements.
            labels: Target labels (same task as pre-training).
            epochs: Fine-tuning epochs (default: half the original budget).
            reset_head: Re-initialise the output layer before adapting.
        """
        if self.network is None or self.encoder is None:
            raise RuntimeError("finetune requires a fitted model")
        statements = list(statements)
        targets = self._encode_targets(labels)
        head = getattr(self.network, "head", None)
        if reset_head and head is not None:
            from repro.nn.initializers import glorot_uniform

            head.weight.value[...] = glorot_uniform(
                self.rng, *head.weight.value.shape
            )
            head.bias.value[...] = 0.0
        optimizer = AdaMax(
            self.network.parameters(),
            lr=self.hyper.lr,
            weight_decay=self.hyper.weight_decay,
        )
        encoded = [self.encoder.encode(s) for s in statements]
        budget = epochs if epochs is not None else max(self.hyper.epochs // 2, 1)
        self._run_epochs(statements, encoded, targets, budget, optimizer)
        return self

    def _pad(self, sequences: list[list[int]]) -> np.ndarray:
        from repro.text.encode import pad_sequences

        assert self.encoder is not None
        return pad_sequences(sequences, pad_id=self.encoder.vocab.pad_id)

    def _batched_outputs(self, statements: Sequence[str]) -> np.ndarray:
        if self.encoder is None or self.network is None:
            raise RuntimeError("model must be fitted first")
        self.network.eval()
        outputs: list[np.ndarray] = []
        # encode each statement exactly once up front; chunks below reuse
        # the id lists instead of re-running tokenization per chunk
        encoded = [self.encoder.encode(s) for s in statements]
        batch = max(self.hyper.batch_size * 4, 64)
        for start in range(0, len(encoded), batch):
            ids = self._pad(encoded[start : start + batch])
            lengths = self._lengths(ids, self.encoder.vocab.pad_id)
            outputs.append(self._forward_infer(ids, lengths))
        if not outputs:
            return np.zeros((0, self.out_dim))
        return np.concatenate(outputs, axis=0)

    def predict(self, statements: Sequence[str]) -> np.ndarray:
        output = self._batched_outputs(list(statements))
        if self.task is TaskKind.CLASSIFICATION:
            return output.argmax(axis=1)
        return output[:, 0] * self._target_scale + self._target_center

    def predict_proba(self, statements: Sequence[str]) -> np.ndarray:
        if self.task is not TaskKind.CLASSIFICATION:
            raise NotImplementedError("regression model has no probabilities")
        return softmax(self._batched_outputs(list(statements)))

    @property
    def vocab_size(self) -> int:
        return len(self.encoder.vocab) if self.encoder is not None else 0

    @property
    def num_parameters(self) -> int:
        return self.network.num_parameters() if self.network is not None else 0
