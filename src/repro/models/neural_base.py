"""Shared training harness for the neural text models (Sections 5.2-5.3).

Subclasses define the network (embedding → encoder → head) and the two
hooks ``_forward`` / ``_backward``; this base class owns vocabulary
construction, batching, the AdaMax loop with gradient clipping, and
prediction. Hyper-parameters default to the paper's fixed choices
(Section 6.1): learning rate 1e-3, batch size 16, embedding size 100.
"""

from __future__ import annotations

from abc import abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.models.base import QueryModel, TaskKind
from repro.nn.losses import HuberLoss, SoftmaxCrossEntropy, softmax
from repro.nn.module import Module
from repro.nn.optim import AdaMax, clip_grad_norm
from repro.text.encode import SequenceEncoder
from repro.text.vocab import Vocabulary, build_char_vocab, build_word_vocab

__all__ = ["NeuralHyperParams", "NeuralTextModel"]


@dataclass
class NeuralHyperParams:
    """Training hyper-parameters (paper defaults, Section 6.1)."""

    lr: float = 1e-3
    batch_size: int = 16
    embed_dim: int = 100
    epochs: int = 4
    clip_norm: float = 0.25  # 0 disables clipping
    weight_decay: float = 0.0
    max_len_char: int = 200
    max_len_word: int = 64
    max_vocab_char: int = 512
    max_vocab_word: int = 20_000
    seed: int = 0


class NeuralTextModel(QueryModel):
    """Base class for ``ccnn``/``wcnn``/``clstm``/``wlstm``."""

    def __init__(
        self,
        level: str,
        task: TaskKind,
        num_classes: int = 2,
        hyper: NeuralHyperParams | None = None,
    ):
        if level not in ("char", "word"):
            raise ValueError(f"level must be 'char' or 'word', got {level!r}")
        self.level = level
        self.task = task
        self.num_classes = num_classes
        self.hyper = hyper or NeuralHyperParams()
        self.rng = np.random.default_rng(self.hyper.seed)
        self.encoder: SequenceEncoder | None = None
        self.network: Module | None = None
        self.out_dim = num_classes if task is TaskKind.CLASSIFICATION else 1
        self.history: list[float] = []
        if task is TaskKind.CLASSIFICATION:
            self._loss = SoftmaxCrossEntropy()
        else:
            self._loss = HuberLoss(delta=1.0)
        # regression targets are standardized internally so the Huber
        # transition point sits at one robust standard deviation;
        # predictions are mapped back to the caller's (log-label) scale
        self._target_center = 0.0
        self._target_scale = 1.0

    # -- subclass hooks --------------------------------------------------- #

    @abstractmethod
    def _build_network(self, vocab_size: int, pad_id: int) -> Module:
        """Construct the network; called once, after the vocab is known."""

    @abstractmethod
    def _forward(self, ids: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """(B, T) ids → (B, out_dim) outputs. Must cache for backward."""

    @abstractmethod
    def _backward(self, dout: np.ndarray) -> None:
        """Backprop from (B, out_dim) output gradient."""

    # -- shared machinery -------------------------------------------------- #

    def _build_vocab(self, statements: Sequence[str]) -> Vocabulary:
        if self.level == "char":
            return build_char_vocab(statements, max_size=self.hyper.max_vocab_char)
        return build_word_vocab(
            statements, max_size=self.hyper.max_vocab_word, min_count=2
        )

    def _max_len(self) -> int:
        return (
            self.hyper.max_len_char
            if self.level == "char"
            else self.hyper.max_len_word
        )

    @staticmethod
    def _lengths(ids: np.ndarray, pad_id: int) -> np.ndarray:
        lengths = (ids != pad_id).sum(axis=1)
        return np.maximum(lengths, 1)

    def fit(self, statements: Sequence[str], labels: np.ndarray):
        statements = list(statements)
        vocab = self._build_vocab(statements)
        self.encoder = SequenceEncoder(vocab, self.level, self._max_len())
        self.network = self._build_network(len(vocab), vocab.pad_id)
        optimizer = AdaMax(
            self.network.parameters(),
            lr=self.hyper.lr,
            weight_decay=self.hyper.weight_decay,
        )
        if self.task is TaskKind.CLASSIFICATION:
            targets = np.asarray(labels, dtype=np.int64)
        else:
            raw = np.asarray(labels, dtype=np.float64)
            self._target_center = float(np.median(raw))
            spread = float(raw.std())
            self._target_scale = spread if spread > 1e-9 else 1.0
            targets = (raw - self._target_center) / self._target_scale
        encoded = [self.encoder.encode(s) for s in statements]
        n = len(statements)
        batch = self.hyper.batch_size
        self.network.train()
        for _ in range(self.hyper.epochs):
            order = self.rng.permutation(n)
            epoch_loss = 0.0
            steps = 0
            for start in range(0, n, batch):
                chosen = order[start : start + batch]
                ids = self._pad([encoded[i] for i in chosen])
                lengths = self._lengths(ids, self.encoder.vocab.pad_id)
                output = self._forward(ids, lengths)
                if self.task is TaskKind.CLASSIFICATION:
                    loss, dout = self._loss(output, targets[chosen])
                else:
                    loss, dgrad = self._loss(
                        output[:, 0], targets[chosen]
                    )
                    dout = dgrad[:, None]
                self.network.zero_grad()
                self._backward(dout)
                if self.hyper.clip_norm > 0:
                    clip_grad_norm(
                        self.network.parameters(), self.hyper.clip_norm
                    )
                optimizer.step()
                epoch_loss += loss
                steps += 1
            self.history.append(epoch_loss / max(steps, 1))
        self.network.eval()
        return self

    def finetune(
        self,
        statements: Sequence[str],
        labels: np.ndarray,
        epochs: int | None = None,
        reset_head: bool = True,
    ) -> "NeuralTextModel":
        """Continue training a fitted model on a new labelled corpus.

        Implements the paper's future-work transfer-learning idea
        (Section 8): the embedding and encoder weights learned on a large
        source workload are kept; only the output head is re-initialised
        (``reset_head``), and a short optimisation run adapts the model to
        the target workload. Tokens unseen during pre-training map to UNK.

        Args:
            statements: Target-workload statements.
            labels: Target labels (same task as pre-training).
            epochs: Fine-tuning epochs (default: half the original budget).
            reset_head: Re-initialise the output layer before adapting.
        """
        if self.network is None or self.encoder is None:
            raise RuntimeError("finetune requires a fitted model")
        statements = list(statements)
        if self.task is TaskKind.CLASSIFICATION:
            targets = np.asarray(labels, dtype=np.int64)
        else:
            raw = np.asarray(labels, dtype=np.float64)
            self._target_center = float(np.median(raw))
            spread = float(raw.std())
            self._target_scale = spread if spread > 1e-9 else 1.0
            targets = (raw - self._target_center) / self._target_scale
        head = getattr(self.network, "head", None)
        if reset_head and head is not None:
            from repro.nn.initializers import glorot_uniform

            head.weight.value[...] = glorot_uniform(
                self.rng, *head.weight.value.shape
            )
            head.bias.value[...] = 0.0
        optimizer = AdaMax(
            self.network.parameters(),
            lr=self.hyper.lr,
            weight_decay=self.hyper.weight_decay,
        )
        encoded = [self.encoder.encode(s) for s in statements]
        n = len(statements)
        batch = self.hyper.batch_size
        budget = epochs if epochs is not None else max(self.hyper.epochs // 2, 1)
        self.network.train()
        for _ in range(budget):
            order = self.rng.permutation(n)
            for start in range(0, n, batch):
                chosen = order[start : start + batch]
                ids = self._pad([encoded[i] for i in chosen])
                lengths = self._lengths(ids, self.encoder.vocab.pad_id)
                output = self._forward(ids, lengths)
                if self.task is TaskKind.CLASSIFICATION:
                    _, dout = self._loss(output, targets[chosen])
                else:
                    _, dgrad = self._loss(output[:, 0], targets[chosen])
                    dout = dgrad[:, None]
                self.network.zero_grad()
                self._backward(dout)
                if self.hyper.clip_norm > 0:
                    clip_grad_norm(
                        self.network.parameters(), self.hyper.clip_norm
                    )
                optimizer.step()
        self.network.eval()
        return self

    def _pad(self, sequences: list[list[int]]) -> np.ndarray:
        from repro.text.encode import pad_sequences

        assert self.encoder is not None
        return pad_sequences(sequences, pad_id=self.encoder.vocab.pad_id)

    def _batched_outputs(self, statements: Sequence[str]) -> np.ndarray:
        if self.encoder is None or self.network is None:
            raise RuntimeError("model must be fitted first")
        self.network.eval()
        outputs: list[np.ndarray] = []
        # encode each statement exactly once up front; chunks below reuse
        # the id lists instead of re-running tokenization per chunk
        encoded = [self.encoder.encode(s) for s in statements]
        batch = max(self.hyper.batch_size * 4, 64)
        for start in range(0, len(encoded), batch):
            ids = self._pad(encoded[start : start + batch])
            lengths = self._lengths(ids, self.encoder.vocab.pad_id)
            outputs.append(self._forward(ids, lengths))
        if not outputs:
            return np.zeros((0, self.out_dim))
        return np.concatenate(outputs, axis=0)

    def predict(self, statements: Sequence[str]) -> np.ndarray:
        output = self._batched_outputs(list(statements))
        if self.task is TaskKind.CLASSIFICATION:
            return output.argmax(axis=1)
        return output[:, 0] * self._target_scale + self._target_center

    def predict_proba(self, statements: Sequence[str]) -> np.ndarray:
        if self.task is not TaskKind.CLASSIFICATION:
            raise NotImplementedError("regression model has no probabilities")
        return softmax(self._batched_outputs(list(statements)))

    @property
    def vocab_size(self) -> int:
        return len(self.encoder.vocab) if self.encoder is not None else 0

    @property
    def num_parameters(self) -> int:
        return self.network.num_parameters() if self.network is not None else 0
