"""``clstm`` / ``wlstm``: the three-layer LSTM model (Section 5.2).

Architecture (Figure 18): embedding → 3 stacked LSTM layers → the last
layer's hidden state at the final token is the query representation →
linear head. Softmax + cross-entropy for classification, linear unit +
Huber loss for regression; AdaMax optimizer.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import TaskKind
from repro.models.neural_base import NeuralHyperParams, NeuralTextModel
from repro.nn.layers import Embedding, Linear
from repro.nn.lstm import StackedLSTM, gather_last, scatter_last
from repro.nn.module import Module

__all__ = ["TextLSTMModel"]


class _LSTMNetwork(Module):
    """embedding → stacked LSTM → last hidden state → linear head."""

    def __init__(
        self,
        vocab_size: int,
        pad_id: int,
        embed_dim: int,
        hidden: int,
        num_layers: int,
        out_dim: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.embedding = self.add_module(
            "embedding", Embedding(vocab_size, embed_dim, rng, pad_id=pad_id)
        )
        self.lstm = self.add_module(
            "lstm", StackedLSTM(embed_dim, hidden, num_layers, rng)
        )
        self.head = self.add_module("head", Linear(hidden, out_dim, rng))
        self._lengths: np.ndarray | None = None
        self._time: int = 0

    def forward(self, ids: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        self._lengths = lengths
        self._time = ids.shape[1]
        embedded = self.embedding.forward(ids)
        h_seq = self.lstm.forward(embedded)
        last = gather_last(h_seq, lengths)
        return self.head.forward(last)

    def infer(self, ids: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """No-grad forward: same math, no BPTT caches allocated."""
        embedded = self.embedding.infer(ids)
        h_seq = self.lstm.infer(embedded)
        return self.head.infer(gather_last(h_seq, lengths))

    def backward(self, dout: np.ndarray) -> None:
        assert self._lengths is not None
        dlast = self.head.backward(dout)
        dh_seq = scatter_last(dlast, self._lengths, self._time)
        dembedded = self.lstm.backward(dh_seq)
        self.embedding.backward(dembedded)


class TextLSTMModel(NeuralTextModel):
    """The paper's 3-layer LSTM at char (``clstm``) or word (``wlstm``) level.

    Args:
        level: ``"char"`` or ``"word"``.
        task: Classification or regression.
        num_classes: Output classes (classification only).
        hidden: Hidden units per layer (paper tried 150 and 300).
        num_layers: LSTM depth (paper: 3).
        hyper: Shared training hyper-parameters.
    """

    def __init__(
        self,
        level: str = "char",
        task: TaskKind = TaskKind.CLASSIFICATION,
        num_classes: int = 2,
        hidden: int = 150,
        num_layers: int = 3,
        hyper: NeuralHyperParams | None = None,
    ):
        super().__init__(level, task, num_classes, hyper)
        self.hidden = hidden
        self.num_layers = num_layers
        prefix = "c" if level == "char" else "w"
        self.name = f"{prefix}lstm"
        self._net: _LSTMNetwork | None = None

    def _build_network(self, vocab_size: int, pad_id: int) -> Module:
        self._net = _LSTMNetwork(
            vocab_size,
            pad_id,
            self.hyper.embed_dim,
            self.hidden,
            self.num_layers,
            self.out_dim,
            self.rng,
        )
        return self._net

    def _forward(self, ids: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        assert self._net is not None
        return self._net.forward(ids, lengths)

    def _forward_infer(
        self, ids: np.ndarray, lengths: np.ndarray
    ) -> np.ndarray:
        assert self._net is not None
        return self._net.infer(ids, lengths)

    def _backward(self, dout: np.ndarray) -> None:
        assert self._net is not None
        self._net.backward(dout)
