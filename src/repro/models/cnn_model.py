"""``ccnn`` / ``wcnn``: the shallow Kim-style text CNN (Section 5.3).

Architecture (Figure 11): embedding → parallel convolutions with window
sizes {3, 4, 5} → ReLU → max-over-time pooling → dropout → fully connected
output layer. Softmax + cross-entropy for classification, linear unit +
Huber loss for regression; AdaMax optimizer.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import TaskKind
from repro.models.neural_base import NeuralHyperParams, NeuralTextModel
from repro.nn.conv import MultiKernelTextConv
from repro.nn.layers import Dropout, Embedding, Linear
from repro.nn.module import Module

__all__ = ["TextCNNModel"]


class _CNNNetwork(Module):
    """embedding → multi-kernel conv/pool → dropout → linear head."""

    def __init__(
        self,
        vocab_size: int,
        pad_id: int,
        embed_dim: int,
        windows: tuple[int, ...],
        num_kernels: int,
        dropout: float,
        out_dim: int,
        rng: np.random.Generator,
        pooling: str = "max",
    ):
        super().__init__()
        self.embedding = self.add_module(
            "embedding", Embedding(vocab_size, embed_dim, rng, pad_id=pad_id)
        )
        self.conv = self.add_module(
            "conv",
            MultiKernelTextConv(embed_dim, windows, num_kernels, rng, pooling),
        )
        self.dropout = self.add_module("dropout", Dropout(dropout, rng))
        self.head = self.add_module(
            "head", Linear(self.conv.out_dim, out_dim, rng)
        )

    def forward(self, ids: np.ndarray) -> np.ndarray:
        embedded = self.embedding.forward(ids)
        pooled = self.conv.forward(embedded)
        dropped = self.dropout.forward(pooled)
        return self.head.forward(dropped)

    def infer(self, ids: np.ndarray) -> np.ndarray:
        """No-grad forward: same math, no backward caches allocated."""
        embedded = self.embedding.infer(ids)
        pooled = self.conv.infer(embedded)
        return self.head.infer(self.dropout.infer(pooled))

    def backward(self, dout: np.ndarray) -> None:
        dpooled = self.dropout.backward(self.head.backward(dout))
        dembedded = self.conv.backward(dpooled)
        self.embedding.backward(dembedded)


class TextCNNModel(NeuralTextModel):
    """The paper's CNN model at char (``ccnn``) or word (``wcnn``) level.

    Args:
        level: ``"char"`` or ``"word"``.
        task: Classification or regression.
        num_classes: Output classes (classification only).
        windows: Convolution window sizes (paper: (3, 4, 5)).
        num_kernels: Kernels per window size (paper tried 100 and 250).
        dropout: Dropout rate on the pooled features (paper tried 0.5, 0).
        hyper: Shared training hyper-parameters.
    """

    def __init__(
        self,
        level: str = "char",
        task: TaskKind = TaskKind.CLASSIFICATION,
        num_classes: int = 2,
        windows: tuple[int, ...] = (3, 4, 5),
        num_kernels: int = 100,
        dropout: float = 0.5,
        pooling: str = "max",
        hyper: NeuralHyperParams | None = None,
    ):
        super().__init__(level, task, num_classes, hyper)
        self.windows = windows
        self.num_kernels = num_kernels
        self.dropout_rate = dropout
        self.pooling = pooling
        prefix = "c" if level == "char" else "w"
        self.name = f"{prefix}cnn"
        self._net: _CNNNetwork | None = None

    def _build_network(self, vocab_size: int, pad_id: int) -> Module:
        self._net = _CNNNetwork(
            vocab_size,
            pad_id,
            self.hyper.embed_dim,
            self.windows,
            self.num_kernels,
            self.dropout_rate,
            self.out_dim,
            self.rng,
            self.pooling,
        )
        return self._net

    def _forward(self, ids: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        del lengths  # max-over-time pooling is length-agnostic
        assert self._net is not None
        return self._net.forward(ids)

    def _forward_infer(
        self, ids: np.ndarray, lengths: np.ndarray
    ) -> np.ndarray:
        del lengths
        assert self._net is not None
        return self._net.infer(ids)

    def _backward(self, dout: np.ndarray) -> None:
        assert self._net is not None
        self._net.backward(dout)
