"""The paper's model zoo (Section 5).

Naming follows the paper: a leading ``c`` means character-level input, a
leading ``w`` word-level input with digits masked to ``<DIGIT>``.

- ``mfreq`` / ``median`` — trivial baselines;
- ``ctfidf`` / ``wtfidf`` — bag-of-ngrams TF-IDF + logistic / Huber linear;
- ``ccnn`` / ``wcnn`` — shallow Kim-style text CNN;
- ``clstm`` / ``wlstm`` — three-layer LSTM;
- ``opt`` — linear regression over simulated optimizer cost estimates.

Build any of them by paper name via :func:`repro.models.factory.build_model`.

Beyond the paper's zoo, the Section 8 extensions add ``treelstm``
(:class:`~repro.models.tree_model.TreeLSTMModel`, Child-Sum Tree-LSTM over
ASTs) and ``knn`` (:class:`~repro.models.knn.KnnModel`, instance-based
retrieval) plus :class:`~repro.models.knn.SimilarQueryIndex` for surfacing
similar historical queries.
"""

from repro.models.base import QueryModel, TaskKind
from repro.models.baselines import MedianRegressor, MostFrequentClassifier
from repro.models.tfidf_model import TfidfClassifier, TfidfRegressor
from repro.models.cnn_model import TextCNNModel
from repro.models.lstm_model import TextLSTMModel
from repro.models.opt_model import OptimizerCostRegressor
from repro.models.knn import KnnModel, SimilarQueryIndex
from repro.models.tree_model import TreeLSTMModel
from repro.models.factory import MODEL_NAMES, build_model

__all__ = [
    "QueryModel",
    "TaskKind",
    "MostFrequentClassifier",
    "MedianRegressor",
    "TfidfClassifier",
    "TfidfRegressor",
    "TextCNNModel",
    "TextLSTMModel",
    "OptimizerCostRegressor",
    "KnnModel",
    "SimilarQueryIndex",
    "TreeLSTMModel",
    "build_model",
    "MODEL_NAMES",
]
