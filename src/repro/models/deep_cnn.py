"""Deep character-level CNN — the paper's cited future-work model ([9]).

A VDCNN-flavoured stack: embedding → N × (same-padded conv → ReLU) with a
stride-2 temporal max-pool between blocks → global max-over-time → dropout
→ linear head. The block count is the depth knob the extension benchmark
sweeps against the shallow Kim CNN.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import TaskKind
from repro.models.neural_base import NeuralHyperParams, NeuralTextModel
from repro.nn.deep_conv import GlobalMaxPool, SequenceConv1d, TemporalMaxPool
from repro.nn.layers import Dropout, Embedding, Linear, Relu
from repro.nn.module import Module

__all__ = ["DeepTextCNN"]


class _DeepCNNNetwork(Module):
    """The stacked architecture with cached intermediates for backprop."""

    def __init__(
        self,
        vocab_size: int,
        pad_id: int,
        embed_dim: int,
        channels: int,
        depth: int,
        dropout: float,
        out_dim: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.embedding = self.add_module(
            "embedding", Embedding(vocab_size, embed_dim, rng, pad_id=pad_id)
        )
        self.blocks: list[tuple[SequenceConv1d, Relu, TemporalMaxPool | None]] = []
        in_dim = embed_dim
        for idx in range(depth):
            conv = SequenceConv1d(in_dim, channels, 3, rng)
            relu = Relu()
            pool = TemporalMaxPool(2) if idx < depth - 1 else None
            self.add_module(f"conv{idx}", conv)
            self.add_module(f"relu{idx}", relu)
            if pool is not None:
                self.add_module(f"pool{idx}", pool)
            self.blocks.append((conv, relu, pool))
            in_dim = channels
        self.global_pool = self.add_module("global_pool", GlobalMaxPool())
        self.dropout = self.add_module("dropout", Dropout(dropout, rng))
        self.head = self.add_module("head", Linear(channels, out_dim, rng))

    def forward(self, ids: np.ndarray) -> np.ndarray:
        x = self.embedding.forward(ids)
        for conv, relu, pool in self.blocks:
            x = relu.forward(conv.forward(x))
            if pool is not None:
                x = pool.forward(x)
        pooled = self.global_pool.forward(x)
        return self.head.forward(self.dropout.forward(pooled))

    def backward(self, dout: np.ndarray) -> None:
        dx = self.dropout.backward(self.head.backward(dout))
        dx = self.global_pool.backward(dx)
        for conv, relu, pool in reversed(self.blocks):
            if pool is not None:
                dx = pool.backward(dx)
            dx = conv.backward(relu.backward(dx))
        self.embedding.backward(dx)


class DeepTextCNN(NeuralTextModel):
    """Deep character CNN (``cdeep``); depth 1 degenerates to a single
    same-padded conv + global pooling.

    Args:
        depth: Number of conv blocks (paper cites 9-29-layer variants; on
            CPU 2-3 blocks already demonstrate the trade-off).
        channels: Kernels per block.
    """

    def __init__(
        self,
        level: str = "char",
        task: TaskKind = TaskKind.CLASSIFICATION,
        num_classes: int = 2,
        depth: int = 2,
        channels: int = 64,
        dropout: float = 0.5,
        hyper: NeuralHyperParams | None = None,
    ):
        super().__init__(level, task, num_classes, hyper)
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        self.channels = channels
        self.dropout_rate = dropout
        self.name = f"{'c' if level == 'char' else 'w'}deep{depth}"
        self._net: _DeepCNNNetwork | None = None

    def _build_network(self, vocab_size: int, pad_id: int) -> Module:
        self._net = _DeepCNNNetwork(
            vocab_size,
            pad_id,
            self.hyper.embed_dim,
            self.channels,
            self.depth,
            self.dropout_rate,
            self.out_dim,
            self.rng,
        )
        return self._net

    def _forward(self, ids: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        del lengths
        assert self._net is not None
        return self._net.forward(ids)

    def _backward(self, dout: np.ndarray) -> None:
        assert self._net is not None
        self._net.backward(dout)
