"""Model factory: build any paper model by its paper name.

``build_model("ccnn", task, num_classes=3)`` returns a ready-to-fit model.
A single ``scale`` knob shrinks the neural/TF-IDF capacities uniformly so
experiments can trade fidelity for CPU time without touching per-model
hyper-parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.base import QueryModel, TaskKind
from repro.models.baselines import MedianRegressor, MostFrequentClassifier
from repro.models.cnn_model import TextCNNModel
from repro.models.lstm_model import TextLSTMModel
from repro.models.neural_base import NeuralHyperParams
from repro.models.opt_model import OptimizerCostRegressor
from repro.models.tfidf_model import TfidfClassifier, TfidfRegressor
from repro.workloads.schema import Catalog

__all__ = ["MODEL_NAMES", "ModelScale", "build_model"]

#: All model names the paper compares (Section 6.1). ``baseline`` resolves
#: to mfreq or median depending on the task; ``opt`` needs a catalog.
MODEL_NAMES = [
    "baseline",
    "ctfidf",
    "ccnn",
    "clstm",
    "wtfidf",
    "wcnn",
    "wlstm",
]


@dataclass(frozen=True)
class ModelScale:
    """Capacity/runtime knobs shared by experiment drivers.

    The paper's full-scale settings (500k TF-IDF features, embedding 100,
    100-250 kernels, hidden 150-300, long inputs) are CPU-hostile; the
    default scale keeps every architectural property while shrinking widths.
    """

    tfidf_features: int = 12_000
    tfidf_max_len: int = 300
    embed_dim: int = 48
    num_kernels: int = 96
    lstm_hidden: int = 64
    epochs: int = 14
    # the paper fixes lr=1e-3 for ~500k-sample training runs; at our
    # default (few-thousand-sample) scale the same optimizer needs a
    # larger step to leave the majority-class basin within the budget
    lr: float = 3e-3
    max_len_char: int = 168
    max_len_word: int = 48
    batch_size: int = 16
    seed: int = 0

    def hyper(self) -> NeuralHyperParams:
        return NeuralHyperParams(
            lr=self.lr,
            embed_dim=self.embed_dim,
            epochs=self.epochs,
            max_len_char=self.max_len_char,
            max_len_word=self.max_len_word,
            batch_size=self.batch_size,
            seed=self.seed,
        )


#: Paper-faithful scale (Section 6.1 hyper-parameters).
PAPER_SCALE = ModelScale(
    tfidf_features=500_000,
    tfidf_max_len=2048,
    embed_dim=100,
    num_kernels=100,
    lstm_hidden=150,
    epochs=10,
    lr=1e-3,
    max_len_char=1024,
    max_len_word=512,
)


def build_model(
    name: str,
    task: TaskKind,
    num_classes: int = 2,
    scale: ModelScale | None = None,
    catalog: Catalog | None = None,
) -> QueryModel:
    """Instantiate a model by paper name.

    Args:
        name: One of :data:`MODEL_NAMES`, or ``mfreq``/``median``/``opt``.
        task: Classification or regression.
        num_classes: Class count for classification tasks.
        scale: Capacity knobs (default :class:`ModelScale`).
        catalog: Required for ``opt`` (the optimizer needs the schema).

    Raises:
        ValueError: Unknown name or ``opt`` without a catalog.
    """
    scale = scale or ModelScale()
    is_classification = task is TaskKind.CLASSIFICATION
    if name in ("baseline", "mfreq", "median"):
        if is_classification:
            return MostFrequentClassifier(num_classes)
        return MedianRegressor()
    if name == "opt":
        if catalog is None:
            raise ValueError("the opt model requires a catalog")
        return OptimizerCostRegressor(catalog)
    if name in ("ctfidf", "wtfidf"):
        level = "char" if name[0] == "c" else "word"
        if is_classification:
            return TfidfClassifier(
                num_classes=num_classes,
                level=level,
                max_features=scale.tfidf_features,
                max_len=scale.tfidf_max_len,
                seed=scale.seed,
            )
        return TfidfRegressor(
            level=level,
            max_features=scale.tfidf_features,
            max_len=scale.tfidf_max_len,
            seed=scale.seed,
        )
    if name in ("ccnn", "wcnn"):
        return TextCNNModel(
            level="char" if name[0] == "c" else "word",
            task=task,
            num_classes=num_classes,
            num_kernels=scale.num_kernels,
            hyper=scale.hyper(),
        )
    if name in ("clstm", "wlstm"):
        return TextLSTMModel(
            level="char" if name[0] == "c" else "word",
            task=task,
            num_classes=num_classes,
            hidden=scale.lstm_hidden,
            hyper=scale.hyper(),
        )
    raise ValueError(f"unknown model name: {name!r}")
