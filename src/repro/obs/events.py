"""Structured JSONL event log, gated by ``REPRO_OBS_LOG``.

Metrics answer "how much / how fast"; events answer "what happened when".
When the environment variable ``REPRO_OBS_LOG`` names a file, every
:func:`emit` call appends one JSON object per line::

    {"ts": 1754500000.123, "event": "train.epoch", "model": "CharCNN",
     "epoch": 2, "loss": 0.41, "seconds": 3.2, "rows_per_s": 5100.0}

Producers in this repo: ``train.epoch`` and ``train.head`` from the
training loops, ``serve.batch`` access records from the serving worker
(one line per micro-batch), ``serve.start``/``serve.stop`` from the CLI.
``repro stats <file>`` summarizes a log; any JSONL tool can read it.

When the variable is unset (the default), :func:`emit` is two dict
lookups and a ``None`` check — safe to leave on hot-ish paths (it is
called per epoch and per served batch, never per statement). Writes are
line-buffered appends under a lock, so concurrent threads interleave
whole lines, never fragments.
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = ["EventLog", "get_event_log", "emit", "ENV_VAR", "read_events"]

#: Environment variable naming the JSONL file to append events to.
ENV_VAR = "REPRO_OBS_LOG"


class EventLog:
    """Append-only JSONL event writer (thread-safe, line-buffered)."""

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8", buffering=1)

    def emit(self, event: str, **fields) -> None:
        """Append one event line; non-JSON-safe values become strings."""
        record = {"ts": time.time(), "event": event, **fields}
        line = json.dumps(record, default=str)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


_cache_lock = threading.Lock()
_cached: tuple[str, EventLog] | None = None


def get_event_log() -> EventLog | None:
    """The process event log, or ``None`` when ``REPRO_OBS_LOG`` is unset.

    The open handle is cached per path; changing the variable mid-process
    (tests do) closes the old log and opens the new one.
    """
    global _cached
    path = os.environ.get(ENV_VAR)
    if not path:
        if _cached is not None:
            with _cache_lock:
                if _cached is not None:
                    _cached[1].close()
                    _cached = None
        return None
    cached = _cached
    if cached is not None and cached[0] == path:
        return cached[1]
    with _cache_lock:
        cached = _cached
        if cached is not None and cached[0] == path:
            return cached[1]
        if cached is not None:
            cached[1].close()
        log = EventLog(path)
        _cached = (path, log)
        return log


def emit(event: str, **fields) -> None:
    """Emit one event if logging is enabled; no-op (and cheap) otherwise."""
    log = get_event_log()
    if log is not None:
        log.emit(event, **fields)


def read_events(path: str) -> list[dict]:
    """Read a JSONL event log back (skips blank/corrupt trailing lines)."""
    events: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn final line from a killed process
    return events
