"""Fixed-bucket histograms: the latency/size primitive behind the registry.

A :class:`Histogram` is the Prometheus histogram shape — cumulative
``le``-bucket counts plus a running sum and count — over a *fixed* bucket
layout chosen at construction. Observation is O(log buckets) (one bisect,
one lock, two adds): cheap enough to sit on every request of the serving
hot path. Reads are snapshot-on-read; nothing is computed until asked.

Bucket layouts are plain tuples of upper bounds (the implicit ``+Inf``
bucket is always appended). Two layouts cover the repo's needs:

- :data:`LATENCY_BUCKETS_S` — request/stage wall-clock in seconds,
  sub-millisecond to minutes (the paper's facilitator sits inline in an
  interactive SQL workflow, so the interesting mass is 0.1ms–1s);
- :data:`SIZE_BUCKETS` — batch sizes / row counts, powers of two.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Sequence

__all__ = [
    "Histogram",
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS",
    "percentile_from_buckets",
]

#: Wall-clock layout (seconds): 0.1ms .. 60s, roughly 1-2-5 per decade.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Count layout (batch sizes, fan-outs): powers of two up to 4096.
SIZE_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    2048.0, 4096.0,
)


class Histogram:
    """Thread-safe fixed-bucket histogram (Prometheus semantics).

    Args:
        buckets: Strictly increasing upper bounds. An observation lands in
            the first bucket whose bound is ``>= value`` (Prometheus ``le``
            semantics); values beyond the last bound land in ``+Inf``.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS_S):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must increase: {bounds}")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> dict:
        """Cumulative bucket counts plus sum/count, read atomically.

        Returns ``{"buckets": [(bound, cumulative), ...], "sum": float,
        "count": int}`` where the final bound is ``float("inf")``.
        """
        with self._lock:
            counts = list(self._counts)
            total = self._count
            total_sum = self._sum
        cumulative: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds + (float("inf"),), counts):
            running += count
            cumulative.append((bound, running))
        return {"buckets": cumulative, "sum": total_sum, "count": total}

    def percentile(self, fraction: float) -> float:
        """Estimated percentile via linear interpolation within buckets.

        The estimate is exact at bucket boundaries and linear between
        them; good enough for p50/p95 dashboards, not for SLA contracts
        (use the raw latency window for those).
        """
        return percentile_from_buckets(self.snapshot(), fraction)

    def reset(self) -> None:
        """Zero every bucket (per-instance stats windows, tests)."""
        with self._lock:
            self._counts = [0] * len(self._counts)
            self._sum = 0.0
            self._count = 0


def percentile_from_buckets(snapshot: dict, fraction: float) -> float:
    """Percentile estimate from a :meth:`Histogram.snapshot` payload."""
    buckets = snapshot["buckets"]
    total = snapshot["count"]
    if total <= 0:
        return 0.0
    rank = fraction * total
    previous_bound = 0.0
    previous_cumulative = 0
    for bound, cumulative in buckets:
        if cumulative >= rank:
            if bound == float("inf"):
                # open-ended bucket: report its lower edge
                return previous_bound
            span = cumulative - previous_cumulative
            if span <= 0:
                return bound
            weight = (rank - previous_cumulative) / span
            return previous_bound + weight * (bound - previous_bound)
        previous_bound = bound
        previous_cumulative = cumulative
    return previous_bound
