"""MetricsRegistry: process-global named counters, gauges, and histograms.

The registry is the one place every layer's telemetry lands, so one
scrape (``GET /metrics``) or one snapshot (``repro stats``) sees the whole
process: pipeline cache effectiveness, serving queue/latency, per-head
predict time, training progress, workload I/O volume.

Design constraints, in order:

1. **Negligible-overhead increments.** ``counter.inc()`` is one lock
   acquire and one add; hot paths hold the metric object (one dict lookup
   at setup, zero per increment). Nothing is formatted, allocated, or
   aggregated on the write path.
2. **Snapshot-on-read.** Aggregation (cumulative buckets, callback
   evaluation) happens only when someone asks — scrapes pay, requests
   don't.
3. **Dependency-free.** Pure stdlib; Prometheus semantics (monotonic
   counters, ``le`` histogram buckets, labeled families) without the
   client library.

Metric *families* are keyed by name and carry a type, help text, and zero
or more labeled children; asking for the same ``(name, labels)`` twice
returns the same object. Components that own their counters (a
:class:`~repro.serving.service.FacilitatorService`, the shared analysis
pipeline) ``attach()`` them so the registry exports the live objects
instead of copies, and read-only quantities (queue depth, cache size) are
``register_callback`` gauges evaluated at snapshot time.
"""

from __future__ import annotations

import re
import threading
from collections.abc import Callable, Sequence

from repro.obs.histograms import LATENCY_BUCKETS_S, Histogram

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


class Counter:
    """Monotonic counter (thread-safe)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Gauge:
    """Settable instantaneous value (thread-safe)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Family:
    """One named metric family: type + help + labeled children."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help: str, buckets):
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        # label key -> metric object or zero-arg callable (callback gauge)
        self.children: dict[tuple, object] = {}


class MetricsRegistry:
    """Named, labeled metric families with snapshot-on-read export."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # -- creation ------------------------------------------------------------ #

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """Get-or-create the counter for ``(name, labels)``."""
        return self._child(name, "counter", help, None, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """Get-or-create the gauge for ``(name, labels)``."""
        return self._child(name, "gauge", help, None, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
        **labels: str,
    ) -> Histogram:
        """Get-or-create the histogram for ``(name, labels)``.

        The bucket layout is a family-level property: the first call fixes
        it and later calls reuse it (mismatched layouts would not sum).
        """
        family = self._family(name, "histogram", help, tuple(buckets))
        return self._resolve(family, labels, lambda: Histogram(family.buckets))

    def register_callback(
        self,
        name: str,
        fn: Callable[[], float],
        kind: str = "gauge",
        help: str = "",
        **labels: str,
    ) -> None:
        """Export ``fn()`` under ``(name, labels)``, evaluated per snapshot.

        Re-registering the same ``(name, labels)`` replaces the previous
        callback — the idiom for "the current default pipeline" or "the
        most recently started service" owning a name.
        """
        if kind not in ("gauge", "counter"):
            raise ValueError(f"callback kind must be gauge|counter, got {kind!r}")
        family = self._family(name, kind, help, None)
        with self._lock:
            family.children[_label_key(labels)] = fn

    def attach(
        self,
        name: str,
        metric: Counter | Gauge | Histogram,
        help: str = "",
        **labels: str,
    ) -> None:
        """Bind an existing metric object under ``(name, labels)``.

        Components that keep per-instance metric objects (so their own
        stats views stay instance-scoped) attach them here; the registry
        then exports the live object. Rebinding the same ``(name,
        labels)`` replaces the previous instance — the newest component
        owns the exported series.
        """
        kind = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}.get(
            type(metric)
        )
        if kind is None:
            raise TypeError(f"cannot attach {type(metric).__name__}")
        buckets = metric.bounds if isinstance(metric, Histogram) else None
        family = self._family(name, kind, help, buckets)
        with self._lock:
            family.children[_label_key(labels)] = metric

    # -- reading ------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """Everything the registry knows, as plain JSON-safe data.

        Returns ``{name: {"type": ..., "help": ..., "samples": [{"labels":
        {...}, "value": number} ...]}}``; histogram samples carry
        ``"buckets"``/``"sum"``/``"count"`` instead of ``"value"``.
        Callback children are evaluated here (and only here); a callback
        that raises is skipped rather than failing the scrape.
        """
        with self._lock:
            families = [
                (f.name, f.kind, f.help, list(f.children.items()))
                for f in self._families.values()
            ]
        out: dict[str, dict] = {}
        for name, kind, help_text, children in sorted(families):
            samples = []
            for key, child in sorted(children):
                labels = dict(key)
                if isinstance(child, Histogram):
                    sample = dict(labels=labels, **child.snapshot())
                elif isinstance(child, (Counter, Gauge)):
                    sample = {"labels": labels, "value": child.value}
                else:  # callback
                    try:
                        sample = {"labels": labels, "value": float(child())}
                    except Exception:
                        continue
                samples.append(sample)
            out[name] = {"type": kind, "help": help_text, "samples": samples}
        return out

    def clear(self) -> None:
        """Drop every family (test isolation)."""
        with self._lock:
            self._families.clear()

    # -- internals ------------------------------------------------------------ #

    def _family(self, name: str, kind: str, help: str, buckets) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                if not _NAME_RE.match(name):
                    raise ValueError(f"bad metric name {name!r}")
                family = _Family(name, kind, help, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            if help and not family.help:
                family.help = help
            return family

    def _child(self, name, kind, help, buckets, labels, factory) -> object:
        family = self._family(name, kind, help, buckets)
        return self._resolve(family, labels, factory)

    def _resolve(self, family: _Family, labels: dict, factory):
        key = _label_key(labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                for label in labels:
                    if not _LABEL_RE.match(label):
                        raise ValueError(f"bad label name {label!r}")
                child = factory()
                family.children[key] = child
            elif callable(child) and not isinstance(
                child, (Counter, Gauge, Histogram)
            ):
                raise ValueError(
                    f"{family.name!r}{dict(key)} is a callback metric"
                )
            return child


# -- process-global default registry ------------------------------------------ #

_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented layer writes into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (test isolation); returns the old one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
