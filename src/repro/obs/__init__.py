"""``repro.obs`` — the unified telemetry core (metrics, traces, events).

Every hot path in this repo (featurize → serve → train) reports into one
dependency-free instrumentation spine, so a single scrape or snapshot can
answer both "how is the process doing" and "where did this slow request
spend its time":

- :class:`MetricsRegistry` (:mod:`repro.obs.registry`) — process-global
  named **counters**, **gauges**, and fixed-bucket **histograms**, with
  Prometheus-style labeled families. Increments are one lock + one add;
  aggregation happens only on read. Components that keep per-instance
  stats ``attach()`` their live metric objects; derived quantities (queue
  depth, cache size) are snapshot-time callbacks.
- :func:`span` (:mod:`repro.obs.spans`) — a ``with span("stage",
  **tags):`` tracer. Stage durations always land in the
  ``repro_stage_seconds{stage=...}`` histogram; when a request-scoped
  :class:`Trace` is active (the serving worker samples one batch at a
  time), each span also records a per-stage breakdown entry
  (offset, duration, nesting depth, tags) — ``GET /stats?trace=1``
  returns it.
- :mod:`repro.obs.textfmt` — renders a registry snapshot as Prometheus
  text exposition format 0.0.4 (this is what ``GET /metrics`` serves)
  and parses it back (this is what ``repro stats <url>`` reads).
- :mod:`repro.obs.events` — an optional structured JSONL event log gated
  by the ``REPRO_OBS_LOG`` environment variable: per-epoch training
  events, per-batch serving access records.

Metric name catalog (see ROADMAP.md "Observability" for the full list):
``repro_pipeline_cache_*`` (analysis-cache hits/misses/evictions/size),
``repro_service_*`` (requests, statements, batches, queue depth, batch
size and request latency histograms, insight-memo hits),
``repro_http_*`` (per-route request/error counters),
``repro_stage_seconds`` (per-stage spans: featurize, tfidf, predict:*,
encode, decode, ...), ``repro_train_*`` (per-epoch loss/duration/rows
per second), ``repro_io_*`` (workload records/bytes read and written).

Quick start::

    from repro.obs import get_registry, span, render

    requests = get_registry().counter("myapp_requests_total")
    with span("work", kind="demo"):
        requests.inc()
    print(render(get_registry().snapshot()))
"""

from repro.obs.events import EventLog, emit, get_event_log, read_events
from repro.obs.histograms import (
    LATENCY_BUCKETS_S,
    SIZE_BUCKETS,
    Histogram,
    percentile_from_buckets,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.spans import (
    Trace,
    current_trace,
    end_trace,
    span,
    start_trace,
    traced,
)
from repro.obs.textfmt import CONTENT_TYPE, parse_text, render

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS",
    "percentile_from_buckets",
    "span",
    "Trace",
    "traced",
    "start_trace",
    "end_trace",
    "current_trace",
    "render",
    "parse_text",
    "CONTENT_TYPE",
    "EventLog",
    "emit",
    "get_event_log",
    "read_events",
]
