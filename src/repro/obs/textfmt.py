"""Prometheus text exposition format over a registry snapshot.

:func:`render` turns :meth:`MetricsRegistry.snapshot` output into the
text format version 0.0.4 every Prometheus-compatible scraper speaks
(``# HELP`` / ``# TYPE`` comments, ``name{label="value"} value`` samples,
cumulative ``_bucket``/``_sum``/``_count`` triplets for histograms), with
the mandated escaping: ``\\``, ``"`` and newlines in label values, ``\\``
and newlines in help text.

:func:`parse_text` is the minimal inverse — enough to round-trip what
:func:`render` emits — so ``repro stats`` can pretty-print a scraped
``/metrics`` payload and the test suite can assert the output parses.
"""

from __future__ import annotations

import math
import re

__all__ = ["render", "parse_text", "CONTENT_TYPE"]

#: The Content-Type a /metrics response must declare.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _escape_help(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_str(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def render(snapshot: dict) -> str:
    """Registry snapshot → Prometheus text exposition (one big string)."""
    lines: list[str] = []
    for name, family in snapshot.items():
        if family["help"]:
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if family["type"] == "histogram":
                for bound, cumulative in sample["buckets"]:
                    le = "+Inf" if bound == float("inf") else _format_value(bound)
                    lines.append(
                        f"{name}_bucket{_label_str(labels, {'le': le})} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_label_str(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_str(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_label_str(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


# -- minimal parser ----------------------------------------------------------- #

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:\\.|[^"\\])*)"\s*(?:,|$)'
)


def _unescape_label(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_text(text: str) -> dict:
    """Parse Prometheus text exposition into plain sample data.

    Returns ``{metric_name: {"type": str | None, "help": str,
    "samples": [{"labels": {...}, "value": float}, ...]}}`` where
    histogram series keep their ``_bucket``/``_sum``/``_count`` suffixed
    names (this parser reads *samples*, it does not reassemble histogram
    objects). Raises ``ValueError`` on a malformed line.
    """
    families: dict[str, dict] = {}
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            try:
                _, _, name, kind = line.split(None, 3)
            except ValueError as exc:
                raise ValueError(f"line {line_no}: bad TYPE comment") from exc
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise ValueError(f"line {line_no}: bad HELP comment")
            helps[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {line_no}: unparseable sample {raw!r}")
        labels: dict[str, str] = {}
        label_blob = match.group("labels")
        if label_blob:
            pos = 0
            while pos < len(label_blob):
                pair = _LABEL_PAIR_RE.match(label_blob, pos)
                if not pair:
                    raise ValueError(
                        f"line {line_no}: bad label set {label_blob!r}"
                    )
                labels[pair.group("key")] = _unescape_label(pair.group("value"))
                pos = pair.end()
        name = match.group("name")
        family = families.setdefault(name, {"samples": []})
        family["samples"].append(
            {"labels": labels, "value": _parse_value(match.group("value"))}
        )
    for name, family in families.items():
        base = re.sub(r"_(bucket|sum|count)\Z", "", name)
        family["type"] = types.get(name) or types.get(base)
        family["help"] = helps.get(name, helps.get(base, ""))
    return families
