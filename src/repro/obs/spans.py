"""``span()``: per-stage wall-clock tracing for the hot paths.

Every instrumented stage (featurize, tfidf, per-head predict, encode,
decode, ...) wraps itself in ``with span("stage", **tags):``. Two things
happen on exit:

1. the stage duration is observed into the registry histogram
   ``repro_stage_seconds{stage="..."}`` — always, so ``/metrics`` carries
   per-stage latency distributions unconditionally (one ``perf_counter``
   pair and one histogram observe; tags deliberately do **not** become
   histogram labels, so high-cardinality tags cannot explode the series
   space);
2. if a :class:`Trace` is active on the current context, a
   :class:`SpanRecord` (name, offset, duration, nesting depth, tags) is
   appended to it — this is how a *sampled* request gets its per-stage
   breakdown without taxing the other 99.9%.

Traces are request-scoped through a :mod:`contextvars` variable, so
nested spans know their depth and concurrent requests cannot see each
other's traces. A trace is single-threaded by design: activate it on the
thread that executes the stages (the service worker does exactly this
when sampling a batch).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.obs.registry import get_registry

__all__ = ["span", "Trace", "start_trace", "end_trace", "traced", "current_trace"]

#: Registry histogram family every span observes into.
STAGE_HISTOGRAM = "repro_stage_seconds"

_active_trace: ContextVar["Trace | None"] = ContextVar(
    "repro_obs_trace", default=None
)
_depth: ContextVar[int] = ContextVar("repro_obs_span_depth", default=0)


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One finished span inside a trace."""

    name: str
    offset_s: float  #: start, relative to the trace's start
    seconds: float
    depth: int  #: 0 = top-level stage of the traced unit
    tags: dict = field(default_factory=dict)


class Trace:
    """Per-request collection of finished spans (single-threaded)."""

    __slots__ = ("records", "started_at", "ended_at")

    def __init__(self):
        self.records: list[SpanRecord] = []
        self.started_at = time.perf_counter()
        self.ended_at: float | None = None

    @property
    def total_seconds(self) -> float:
        end = self.ended_at if self.ended_at is not None else time.perf_counter()
        return end - self.started_at

    def breakdown(self) -> dict:
        """JSON-safe per-stage breakdown of the traced unit.

        ``stages`` lists every span in start order with its nesting depth;
        ``stage_total_ms`` sums only depth-0 spans (nested spans are
        refinements of their parents, counting them would double-bill), so
        for a fully-instrumented unit it lands within a few percent of
        ``total_ms``.
        """
        stages = sorted(self.records, key=lambda r: r.offset_s)
        return {
            "total_ms": round(self.total_seconds * 1000.0, 3),
            "stage_total_ms": round(
                sum(r.seconds for r in stages if r.depth == 0) * 1000.0, 3
            ),
            "stages": [
                {
                    "stage": r.name,
                    "offset_ms": round(r.offset_s * 1000.0, 3),
                    "ms": round(r.seconds * 1000.0, 3),
                    "depth": r.depth,
                    **({"tags": r.tags} if r.tags else {}),
                }
                for r in stages
            ],
        }


def start_trace() -> Trace:
    """Activate a fresh trace on the current context and return it."""
    trace = Trace()
    _active_trace.set(trace)
    _depth.set(0)
    return trace


def end_trace(trace: Trace) -> dict:
    """Deactivate ``trace`` and return its breakdown."""
    trace.ended_at = time.perf_counter()
    if _active_trace.get() is trace:
        _active_trace.set(None)
    return trace.breakdown()


def current_trace() -> Trace | None:
    """The trace active on this context, if any."""
    return _active_trace.get()


@contextmanager
def traced():
    """``with traced() as trace:`` — trace the enclosed spans."""
    trace = start_trace()
    try:
        yield trace
    finally:
        trace.ended_at = time.perf_counter()
        if _active_trace.get() is trace:
            _active_trace.set(None)


@contextmanager
def span(name: str, **tags):
    """Time the enclosed block as one named stage.

    The duration always lands in ``repro_stage_seconds{stage=name}``;
    when a trace is active it also becomes a :class:`SpanRecord` carrying
    ``tags`` (tags are trace-only — never histogram labels).
    """
    trace = _active_trace.get()
    if trace is not None:
        depth = _depth.get()
        depth_token = _depth.set(depth + 1)
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        get_registry().histogram(STAGE_HISTOGRAM, stage=name).observe(elapsed)
        if trace is not None:
            _depth.reset(depth_token)
            trace.records.append(
                SpanRecord(
                    name=name,
                    offset_s=start - trace.started_at,
                    seconds=elapsed,
                    depth=depth,
                    tags=tags,
                )
            )
