"""Distribution summaries matching the stat boxes in Figures 3, 4 and 6."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

__all__ = ["DistributionSummary", "summarize", "log_histogram"]


@dataclass(frozen=True)
class DistributionSummary:
    """The five-number-ish summary the paper annotates on each panel:
    mean (μ), standard deviation (σ), min, max, mode, median."""

    mean: float
    std: float
    minimum: float
    maximum: float
    mode: float
    median: float
    count: int

    def as_row(self) -> list[float]:
        return [
            self.mean,
            self.std,
            self.minimum,
            self.maximum,
            self.mode,
            self.median,
        ]


def summarize(values: np.ndarray) -> DistributionSummary:
    """Compute the Figure 3/4/6 panel statistics for one distribution."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot summarize an empty distribution")
    counts = Counter(values.tolist())
    mode_value = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]
    return DistributionSummary(
        mean=float(values.mean()),
        std=float(values.std()),
        minimum=float(values.min()),
        maximum=float(values.max()),
        mode=float(mode_value),
        median=float(np.median(values)),
        count=int(values.size),
    )


def log_histogram(
    values: np.ndarray, num_bins: int = 12
) -> list[tuple[float, float, int]]:
    """Histogram with log-spaced bins (the figures' log-log panels).

    Returns (bin_low, bin_high, count) triples; non-positive values fall
    into the first bin.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return []
    positive = values[values > 0]
    if positive.size == 0:
        return [(0.0, 1.0, int(values.size))]
    lo = max(positive.min(), 1e-9)
    hi = max(positive.max(), lo * 10)
    edges = np.logspace(np.log10(lo), np.log10(hi), num_bins + 1)
    counts, _ = np.histogram(positive, bins=edges)
    out: list[tuple[float, float, int]] = []
    non_positive = int((values <= 0).sum())
    if non_positive:
        out.append((0.0, float(edges[0]), non_positive))
    for i in range(num_bins):
        out.append((float(edges[i]), float(edges[i + 1]), int(counts[i])))
    return out
