"""Structural property analysis of query statements (Figures 3 and 4).

Extracts the ten Section 4.3.1 syntactic properties for every statement in
a workload and summarizes each property's distribution — the machinery
behind the ten panels of Figure 3 (SDSS) and Figure 4 (SQLShare), plus the
prose statistics (fraction with joins, nested, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.stats import DistributionSummary, summarize
from repro.sqlang.features import FEATURE_NAMES
from repro.sqlang.pipeline import get_pipeline
from repro.workloads.records import Workload

__all__ = ["StructuralTable", "structural_table"]


@dataclass
class StructuralTable:
    """Per-statement feature matrix plus per-feature summaries."""

    feature_names: list[str]
    matrix: np.ndarray  # (n_statements, n_features)
    summaries: dict[str, DistributionSummary] = field(default_factory=dict)

    def column(self, name: str) -> np.ndarray:
        return self.matrix[:, self.feature_names.index(name)]

    # -- the prose statistics of Section 4.3.1 ------------------------------ #

    @property
    def fraction_with_joins(self) -> float:
        return float((self.column("num_joins") >= 1).mean())

    @property
    def fraction_multi_table(self) -> float:
        return float((self.column("num_tables") > 1).mean())

    @property
    def fraction_nested(self) -> float:
        return float((self.column("nestedness_level") >= 1).mean())

    @property
    def fraction_nested_aggregation(self) -> float:
        return float((self.column("nested_aggregation") > 0).mean())


def structural_table(workload: Workload) -> StructuralTable:
    """Extract and summarize structural features for a whole workload.

    Featurization goes through the shared batch pipeline: each distinct
    statement in the workload is lexed/parsed/featurized once, and repeats
    (the dominant case in real logs, Figure 20) are cache hits.
    """
    matrix = get_pipeline().feature_matrix(workload.statements())
    table = StructuralTable(feature_names=list(FEATURE_NAMES), matrix=matrix)
    for i, name in enumerate(FEATURE_NAMES):
        if matrix.shape[0]:
            table.summaries[name] = summarize(matrix[:, i])
    return table
