"""Per-session-class label and size analysis (Figure 8).

Box-plot statistics (quartiles, median, mean) of answer size, CPU time and
statement length, broken down by session class — the evidence that
no_web_hit and browser queries are the complex, human-authored ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sqlang.normalize import word_tokens
from repro.workloads.records import Workload

__all__ = ["BoxStats", "by_session_class"]


@dataclass(frozen=True)
class BoxStats:
    """Box-plot summary for one session class and one quantity."""

    q1: float
    median: float
    q3: float
    mean: float
    count: int

    @classmethod
    def from_values(cls, values: np.ndarray) -> "BoxStats":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return cls(0.0, 0.0, 0.0, 0.0, 0)
        return cls(
            q1=float(np.percentile(values, 25)),
            median=float(np.percentile(values, 50)),
            q3=float(np.percentile(values, 75)),
            mean=float(values.mean()),
            count=int(values.size),
        )


def by_session_class(workload: Workload) -> dict[str, dict[str, BoxStats]]:
    """Figure 8 statistics: quantity → session class → box stats.

    Quantities: ``answer_size``, ``cpu_time`` (error sentinels excluded),
    ``num_characters``, ``num_words``.
    """
    classes: dict[str, list[int]] = {}
    for idx, record in enumerate(workload):
        if record.session_class is None:
            raise ValueError("workload records lack session_class labels")
        classes.setdefault(record.session_class, []).append(idx)
    answer = workload.labels("answer_size")
    cpu = workload.labels("cpu_time")
    chars = np.asarray(
        [len(r.statement) for r in workload], dtype=np.float64
    )
    words = np.asarray(
        [len(word_tokens(r.statement)) for r in workload], dtype=np.float64
    )
    out: dict[str, dict[str, BoxStats]] = {
        "answer_size": {},
        "cpu_time": {},
        "num_characters": {},
        "num_words": {},
    }
    for cls, indices in sorted(classes.items()):
        idx = np.asarray(indices)
        ans = answer[idx]
        out["answer_size"][cls] = BoxStats.from_values(ans[ans >= 0])
        out["cpu_time"][cls] = BoxStats.from_values(cpu[idx])
        out["num_characters"][cls] = BoxStats.from_values(chars[idx])
        out["num_words"][cls] = BoxStats.from_values(words[idx])
    return out
