"""Correlation matrix of structural properties (Figure 7).

Pearson correlations between the ten Section 4.3.1 features. The paper uses
this matrix to choose a non-redundant subset of complexity proxies for its
qualitative analysis (number of characters, functions, joins, nestedness
level, nested aggregation) — exported here as
:data:`COMPLEXITY_PROXY_FEATURES`.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.structural import StructuralTable

__all__ = ["structural_correlation_matrix", "COMPLEXITY_PROXY_FEATURES"]

#: The Section 4.4.2 complexity-proxy subset.
COMPLEXITY_PROXY_FEATURES = [
    "num_characters",
    "num_functions",
    "num_joins",
    "nestedness_level",
    "nested_aggregation",
]


def structural_correlation_matrix(table: StructuralTable) -> np.ndarray:
    """Pearson correlation matrix over the feature columns.

    Constant columns (zero variance) yield zero correlation rather than
    NaN so downstream reporting stays clean.
    """
    matrix = table.matrix
    if matrix.shape[0] < 2:
        return np.eye(matrix.shape[1])
    stds = matrix.std(axis=0)
    safe = matrix.copy()
    # give constant columns unit variance noise-free placeholder to avoid
    # divide-by-zero; their correlations are forced to 0 below
    constant = stds < 1e-12
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.corrcoef(safe, rowvar=False)
    corr = np.nan_to_num(corr, nan=0.0)
    for i in np.flatnonzero(constant):
        corr[i, :] = 0.0
        corr[:, i] = 0.0
        corr[i, i] = 1.0
    return corr
