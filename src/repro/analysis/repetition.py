"""Statement repetition analysis (Figure 20 / Appendix B.3).

Engine-backed: the histogram is computed in one chunked pass with
O(sessions + distinct statements-per-session) memory, so gzipped streams
from :func:`repro.workloads.io.iter_log` flow straight in without a list
copy. The per-session sample is drawn uniformly over the session's hits
(the mergeable weighted draw of
:class:`~repro.analytics.aggregators.RepetitionAggregator`), deterministic
given ``seed`` and independent of chunk boundaries.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analytics.core import DEFAULT_CHUNK_SIZE, ChunkedScan
from repro.analytics.aggregators import RepetitionAggregator
from repro.workloads.records import LogEntry

__all__ = ["repetition_histogram_of_log"]


def repetition_histogram_of_log(
    log: Iterable[LogEntry],
    seed: int = 0,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: int = 0,
) -> dict[str, int]:
    """Figure 20 from a raw log: sample one hit per session, then bucket
    sampled entries by how often their statement recurs.

    ``log`` may be any iterable of entries, including the generator from
    :func:`repro.workloads.io.iter_log`; ``workers`` fans the pass out to
    a process pool with bit-identical results.
    """
    scan = ChunkedScan(log, chunk_size=chunk_size, workers=workers)
    return scan.run({"repetition": RepetitionAggregator(seed=seed)})["repetition"]
