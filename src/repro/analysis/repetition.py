"""Statement repetition analysis (Figure 20 / Appendix B.3)."""

from __future__ import annotations

import numpy as np

from repro.workloads.dedup import repetition_histogram, sample_one_per_session
from repro.workloads.records import LogEntry

__all__ = ["repetition_histogram_of_log"]


def repetition_histogram_of_log(
    log: list[LogEntry], seed: int = 0
) -> dict[str, int]:
    """Figure 20 from a raw log: sample one hit per session, then bucket
    sampled entries by how often their statement recurs."""
    rng = np.random.default_rng(seed)
    sampled = sample_one_per_session(log, rng)
    return repetition_histogram(sampled)
