"""Label distribution analysis (Figure 6).

Class shares for the two classification problems (6a, 6b) and heavy-tail
summaries for the regression labels (6c-6e).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.analysis.stats import DistributionSummary, summarize
from repro.workloads.records import Workload

__all__ = ["class_distribution", "regression_label_summary"]


def class_distribution(
    workload: Workload, label_column: str
) -> dict[str, tuple[int, float]]:
    """Per-class (count, share) for a classification label column."""
    labels = [str(v) for v in workload.labels(label_column)]
    counts = Counter(labels)
    total = max(len(labels), 1)
    return {
        cls: (count, count / total)
        for cls, count in sorted(counts.items(), key=lambda kv: -kv[1])
    }


def regression_label_summary(
    workload: Workload, label_column: str
) -> DistributionSummary:
    """Figure 6c-6e panel statistics for a regression label column.

    Error sentinels (answer size -1 for failed queries) are excluded, like
    the paper's Figure 6c whose minimum is the smallest *returned* size.
    """
    values = workload.labels(label_column)
    valid = values[np.asarray(values, dtype=np.float64) >= 0]
    return summarize(valid)
