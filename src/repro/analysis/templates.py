"""Template mining over workloads and raw logs.

Appendix B.3 observes that bot and administrative sessions resubmit the
same statement *template* with different constants — 18.5% of unique SDSS
statements repeat, and whole sessions are template-generated. Grouping by
template (digits and string literals masked, case folded) is how a DBA
separates mechanical traffic from genuinely new queries; this module turns
that observation into a report.

Mining runs through the :mod:`repro.analytics` chunked map-combine-reduce
engine: the input may be any iterable (a materialized list, a
:class:`~repro.workloads.records.Workload`, or a gzipped stream from
:func:`repro.workloads.io.iter_log`), memory stays O(templates) — the seed
implementation's per-template statement-string lists are replaced by
per-template counters, one example and a blake2b distinct-statement digest
set — and ``workers=N`` fans chunks out to a process pool with bit-identical
results.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.analytics.core import DEFAULT_CHUNK_SIZE, ChunkedScan
from repro.analytics.aggregators import TemplateAggregator, _TemplateGroup
from repro.workloads.records import LogEntry, QueryRecord, Workload

__all__ = [
    "TemplateStats",
    "mine_workload_templates",
    "mine_log_templates",
    "summarize_template_groups",
]


@dataclass
class TemplateStats:
    """Aggregate statistics for one statement template."""

    template: str
    count: int
    distinct_statements: int
    example: str
    mean_cpu_time: float | None = None
    session_classes: dict[str, int] = field(default_factory=dict)

    @property
    def constants_only_vary(self) -> bool:
        """True when the template repeats with different constants —
        the bot/admin signature of Appendix B.3."""
        return self.count > 1 and self.distinct_statements > 1


def summarize_template_groups(
    groups: dict[str, _TemplateGroup], top: int | None = None
) -> list[TemplateStats]:
    """Sorted ``TemplateStats`` report from a finalized template aggregate."""
    stats = [
        TemplateStats(
            template=template,
            count=group.count,
            distinct_statements=len(group.digests),
            example=group.example,
            mean_cpu_time=(
                group.cpu_sum.value / group.cpu_count
                if group.cpu_count
                else None
            ),
            session_classes=dict(group.classes),
        )
        for template, group in groups.items()
    ]
    stats.sort(key=lambda s: (-s.count, s.template))
    return stats[:top] if top is not None else stats


def _mine(
    records: Iterable,
    weighted: bool,
    top: int | None,
    chunk_size: int,
    workers: int,
) -> list[TemplateStats]:
    scan = ChunkedScan(records, chunk_size=chunk_size, workers=workers)
    groups = scan.run({"templates": TemplateAggregator(weighted=weighted)})
    return summarize_template_groups(groups["templates"], top=top)


def mine_workload_templates(
    workload: Workload | Iterable[QueryRecord],
    top: int | None = None,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: int = 0,
) -> list[TemplateStats]:
    """Group a deduplicated workload's statements by template.

    ``count`` weighs each record by its ``num_duplicates`` so the report
    reflects the raw log volume, not just unique statements. ``workload``
    may be any iterable of records (``iter_workload`` streams included);
    ``workers`` fans the scan out to a process pool.
    """
    return _mine(workload, True, top, chunk_size, workers)


def mine_log_templates(
    entries: Iterable[LogEntry],
    top: int | None = None,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: int = 0,
) -> list[TemplateStats]:
    """Group raw (pre-dedup) log entries by template.

    ``entries`` may be any iterable — pass ``iter_log(path)`` to mine a
    gzipped on-disk log without materializing it.
    """
    return _mine(entries, False, top, chunk_size, workers)
