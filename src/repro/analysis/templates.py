"""Template mining over workloads and raw logs.

Appendix B.3 observes that bot and administrative sessions resubmit the
same statement *template* with different constants — 18.5% of unique SDSS
statements repeat, and whole sessions are template-generated. Grouping by
template (digits and string literals masked, case folded) is how a DBA
separates mechanical traffic from genuinely new queries; this module turns
that observation into a report.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.sqlang.normalize import template_of
from repro.workloads.records import LogEntry, Workload

__all__ = ["TemplateStats", "mine_workload_templates", "mine_log_templates"]


@dataclass
class TemplateStats:
    """Aggregate statistics for one statement template."""

    template: str
    count: int
    distinct_statements: int
    example: str
    mean_cpu_time: float | None = None
    session_classes: dict[str, int] = field(default_factory=dict)

    @property
    def constants_only_vary(self) -> bool:
        """True when the template repeats with different constants —
        the bot/admin signature of Appendix B.3."""
        return self.count > 1 and self.distinct_statements > 1


def _summarize(
    groups: dict[str, list],
    statements: dict[str, list[str]],
    cpu: dict[str, list[float]],
    classes: dict[str, Counter],
    top: int | None,
) -> list[TemplateStats]:
    stats = []
    for template, members in groups.items():
        cpu_values = [v for v in cpu[template] if v is not None]
        stats.append(
            TemplateStats(
                template=template,
                count=len(members),
                distinct_statements=len(set(statements[template])),
                example=statements[template][0],
                mean_cpu_time=(
                    float(np.mean(cpu_values)) if cpu_values else None
                ),
                session_classes=dict(classes[template]),
            )
        )
    stats.sort(key=lambda s: (-s.count, s.template))
    return stats[:top] if top is not None else stats


def mine_workload_templates(
    workload: Workload, top: int | None = None
) -> list[TemplateStats]:
    """Group a deduplicated workload's statements by template.

    ``count`` weighs each record by its ``num_duplicates`` so the report
    reflects the raw log volume, not just unique statements.
    """
    groups: dict[str, list] = defaultdict(list)
    statements: dict[str, list[str]] = defaultdict(list)
    cpu: dict[str, list[float]] = defaultdict(list)
    classes: dict[str, Counter] = defaultdict(Counter)
    for record in workload:
        template = template_of(record.statement)
        groups[template].extend([record] * record.num_duplicates)
        statements[template].append(record.statement)
        cpu[template].append(record.cpu_time)
        if record.session_class is not None:
            classes[template][record.session_class] += record.num_duplicates
    return _summarize(groups, statements, cpu, classes, top)


def mine_log_templates(
    entries: list[LogEntry], top: int | None = None
) -> list[TemplateStats]:
    """Group raw (pre-dedup) log entries by template."""
    groups: dict[str, list] = defaultdict(list)
    statements: dict[str, list[str]] = defaultdict(list)
    cpu: dict[str, list[float]] = defaultdict(list)
    classes: dict[str, Counter] = defaultdict(Counter)
    for entry in entries:
        template = template_of(entry.statement)
        groups[template].append(entry)
        statements[template].append(entry.statement)
        cpu[template].append(entry.cpu_time)
        classes[template][entry.session_class] += 1
    return _summarize(groups, statements, cpu, classes, top)
