"""Workload analysis (Section 4.3): the machinery behind Figures 3-8 and 20."""

from repro.analysis.stats import DistributionSummary, summarize
from repro.analysis.structural import StructuralTable, structural_table
from repro.analysis.label_analysis import (
    class_distribution,
    regression_label_summary,
)
from repro.analysis.correlation import structural_correlation_matrix
from repro.analysis.by_session import BoxStats, by_session_class
from repro.analysis.repetition import repetition_histogram_of_log
from repro.analysis.templates import (
    TemplateStats,
    mine_log_templates,
    mine_workload_templates,
)

__all__ = [
    "DistributionSummary",
    "summarize",
    "StructuralTable",
    "structural_table",
    "class_distribution",
    "regression_label_summary",
    "structural_correlation_matrix",
    "BoxStats",
    "by_session_class",
    "repetition_histogram_of_log",
    "TemplateStats",
    "mine_workload_templates",
    "mine_log_templates",
]
