"""Drivers for Figures 12-14: error analysis of the regression models.

These slice per-query squared errors (on log labels) by session class
(Figure 12), by structural properties (Figure 13), and across the three
problem settings (Figure 14).
"""

from __future__ import annotations

import numpy as np

from repro.core.problems import Problem, Setting
from repro.evalx.reporting import format_table
from repro.experiments import runner
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import sdss_structural_table
from repro.sqlang.pipeline import get_pipeline

__all__ = [
    "fig12_mse_by_session",
    "fig13_error_by_structure",
    "fig14_error_by_setting",
    "mse_by_session_class",
]

_SESSION_ORDER = [
    "no_web_hit",
    "unknown",
    "bot",
    "admin",
    "program",
    "anonymous",
    "browser",
]


def mse_by_session_class(
    config: ExperimentConfig, problem: Problem
) -> dict[str, dict[str, float]]:
    """model → session class → MSE on the SDSS test set (plus 'all')."""
    outcome = runner.regression_outcome(
        config, problem, Setting.HOMOGENEOUS_INSTANCE
    )
    split = runner.sdss_split(config)
    session = np.asarray(
        [r.session_class for r in split.test], dtype=object
    )
    y_true = outcome.y_true_log
    assert y_true is not None
    result: dict[str, dict[str, float]] = {}
    for model, pred in outcome.predictions_log.items():
        squared = (pred - y_true) ** 2
        per_class = {"all": float(squared.mean())}
        for cls in _SESSION_ORDER:
            mask = session == cls
            if mask.any():
                per_class[cls] = float(squared[mask].mean())
        result[model] = per_class
    return result


def fig12_mse_by_session(config: ExperimentConfig) -> str:
    """Figure 12: MSE by session class for both regression problems."""
    parts = []
    for problem, label in [
        (Problem.CPU_TIME, "Figure 12a: CPU time prediction MSE by session class"),
        (Problem.ANSWER_SIZE, "Figure 12b: answer size prediction MSE by session class"),
    ]:
        data = mse_by_session_class(config, problem)
        classes = ["all"] + [
            c for c in _SESSION_ORDER if any(c in d for d in data.values())
        ]
        rows = []
        for model, per_class in data.items():
            rows.append(
                [model]
                + [per_class.get(c, float("nan")) for c in classes]
            )
        parts.append(format_table(["Model", *classes], rows, title=label))
    return "\n\n".join(parts)


_CHAR_BINS = [(0, 60), (60, 120), (120, 240), (240, 480), (480, 10**9)]


def _binned_mse(
    squared: np.ndarray, values: np.ndarray, bins: list[tuple[float, float]]
) -> list[float]:
    out = []
    for lo, hi in bins:
        mask = (values >= lo) & (values < hi)
        out.append(float(squared[mask].mean()) if mask.any() else float("nan"))
    return out


def fig13_error_by_structure(config: ExperimentConfig) -> str:
    """Figure 13: answer size squared error vs structural properties (SDSS)."""
    outcome = runner.regression_outcome(
        config, Problem.ANSWER_SIZE, Setting.HOMOGENEOUS_INSTANCE
    )
    split = runner.sdss_split(config)
    table = sdss_structural_table(config)
    test_idx = split.test_idx
    chars = table.column("num_characters")[test_idx]
    functions = table.column("num_functions")[test_idx]
    joins = table.column("num_joins")[test_idx]
    nested = table.column("nestedness_level")[test_idx]
    nested_agg = table.column("nested_aggregation")[test_idx]
    y_true = outcome.y_true_log
    assert y_true is not None

    parts = []
    char_rows = []
    for model, pred in outcome.predictions_log.items():
        squared = (pred - y_true) ** 2
        char_rows.append([model] + _binned_mse(squared, chars, _CHAR_BINS))
    parts.append(
        format_table(
            ["Model"] + [f"chars[{lo},{hi})" for lo, hi in _CHAR_BINS[:-1]]
            + [f"chars>={_CHAR_BINS[-1][0]}"],
            char_rows,
            title="Figure 13a: answer size sq. error by number of characters",
        )
    )

    ccnn_pred = outcome.predictions_log.get("ccnn")
    if ccnn_pred is not None:
        squared = (ccnn_pred - y_true) ** 2
        rows = []
        for name, values, levels in [
            ("num_functions", functions, [0, 1, 2, 3]),
            ("num_joins", joins, [0, 1, 2, 3]),
            ("nestedness_level", nested, [0, 1, 2, 3]),
            ("nested_aggregation", nested_agg, [0, 1]),
        ]:
            for level in levels:
                mask = values == level
                if not mask.any():
                    continue
                rows.append(
                    [name, level, float(squared[mask].mean()), int(mask.sum())]
                )
            tail = values > levels[-1]
            if tail.any():
                rows.append(
                    [
                        name,
                        f">{levels[-1]}",
                        float(squared[tail].mean()),
                        int(tail.sum()),
                    ]
                )
        parts.append(
            format_table(
                ["property", "value", "ccnn sq. error", "n"],
                rows,
                title="Figures 13b-13e: ccnn answer size error by structure",
            )
        )
    return "\n\n".join(parts)


def fig14_error_by_setting(config: ExperimentConfig) -> str:
    """Figure 14: CPU time error across the three problem settings."""
    settings = [
        (Setting.HOMOGENEOUS_INSTANCE, "Homogeneous Instance"),
        (Setting.HOMOGENEOUS_SCHEMA, "Homogeneous Schema"),
        (Setting.HETEROGENEOUS_SCHEMA, "Heterogeneous Schema"),
    ]
    parts = []
    mse_rows: dict[str, list[object]] = {}
    for setting, label in settings:
        outcome = runner.regression_outcome(
            config, Problem.CPU_TIME, setting
        )
        y_true = outcome.y_true_log
        assert y_true is not None
        for model, pred in outcome.predictions_log.items():
            mse_value = float(((pred - y_true) ** 2).mean())
            mse_rows.setdefault(model, [model]).append(mse_value)
    rows = [row for row in mse_rows.values() if len(row) == len(settings) + 1]
    parts.append(
        format_table(
            ["Model"] + [label for _, label in settings],
            rows,
            title="Figure 14 (left): CPU time MSE per setting",
        )
    )

    nested_rows = []
    for setting, label in settings:
        outcome = runner.regression_outcome(config, Problem.CPU_TIME, setting)
        pred = outcome.predictions_log.get("ccnn")
        y_true = outcome.y_true_log
        if pred is None or y_true is None:
            continue
        if setting is Setting.HOMOGENEOUS_INSTANCE:
            split = runner.sdss_split(config)
        else:
            split = runner.sqlshare_split(config, setting)
        # batch featurization via the shared pipeline: the same test
        # statements were already analyzed for the structural table, so
        # these are cache hits
        analyses = get_pipeline().analyze_batch(
            [r.statement for r in split.test]
        )
        nested = np.asarray(
            [a.features.nestedness_level for a in analyses],
            dtype=np.float64,
        )
        squared = (pred - y_true) ** 2
        for level in [0, 1, 2, 3]:
            mask = nested == level
            if mask.any():
                nested_rows.append(
                    [label, level, float(squared[mask].mean()), int(mask.sum())]
                )
    parts.append(
        format_table(
            ["setting", "nestedness", "ccnn sq. error", "n"],
            nested_rows,
            title="Figure 14 (right): ccnn CPU time error by nestedness level",
        )
    )
    return "\n\n".join(parts)
