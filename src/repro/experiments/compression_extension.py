"""Extension experiment: training on compressed workloads (Section 8).

The paper names workload compression [8] as an orthogonal extension of its
data-extraction stage. This driver quantifies the trade: compress the SDSS
workload to 10% / 25% with each strategy, train ccnn for answer-size
prediction on the kept (weight-expanded) records, and compare test MSE
against training on the full workload.

The strategies optimize different objectives and the bench shows it:
k-center minimizes the coverage radius (best for retrieval indexes —
see ``coverage_radius``) but deliberately over-samples structural
outliers, which distorts the *training* distribution; stratified
sampling preserves the label mix and is the strongest training
compressor, with uniform random in between.
"""

from __future__ import annotations

import numpy as np

from repro.core.problems import Problem
from repro.evalx.metrics import mse
from repro.evalx.reporting import format_table
from repro.experiments import runner
from repro.experiments.config import ExperimentConfig
from repro.ml.preprocessing import LogLabelTransform
from repro.models.base import TaskKind
from repro.models.cnn_model import TextCNNModel
from repro.workloads.compression import compress_workload
from repro.workloads.records import Workload

__all__ = ["compression_experiment"]


def _train_mse(
    config: ExperimentConfig,
    train: Workload,
    test_statements: list[str],
    y_test: np.ndarray,
    transform: LogLabelTransform,
) -> float:
    scale = config.model_scale
    model = TextCNNModel(
        level="char",
        task=TaskKind.REGRESSION,
        num_kernels=scale.num_kernels,
        hyper=scale.hyper(),
    )
    label = Problem.ANSWER_SIZE.label_column
    y_train = transform.transform(train.labels(label))
    model.fit(train.statements(), y_train)
    return mse(y_test, model.predict(test_statements))


def compression_experiment(config: ExperimentConfig) -> str:
    """ccnn answer-size MSE: full workload vs compressed training sets."""
    split = runner.sdss_split(config)
    train, test = split.train, split.test
    label = Problem.ANSWER_SIZE.label_column
    transform = LogLabelTransform().fit(train.labels(label))
    y_test = transform.transform(test.labels(label))
    test_statements = test.statements()

    rows = [
        [
            "full",
            "-",
            len(train),
            _train_mse(config, train, test_statements, y_test, transform),
        ]
    ]
    for ratio in (0.25, 0.1):
        for strategy in ("kcenter", "stratified", "random"):
            compressed = compress_workload(
                train, ratio=ratio, strategy=strategy, seed=config.seed
            )
            expanded = Workload(
                f"{train.name}-{strategy}-{ratio}",
                compressed.repeated_records(),
            )
            rows.append(
                [
                    f"{ratio:.0%}",
                    strategy,
                    len(compressed.workload),
                    _train_mse(
                        config, expanded, test_statements, y_test, transform
                    ),
                ]
            )
    return format_table(
        ["kept", "strategy", "unique statements", "test MSE (log answer size)"],
        rows,
        title=(
            "Extension: workload compression for training "
            "(paper Sec. 8, Chaudhuri et al. [8])"
        ),
    )
