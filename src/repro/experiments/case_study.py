"""Section 6.3.3 case study: per-query predictions for the Q1/Q2 shapes.

The paper inspects two queries — Q1, a long three-way join over large
tables (Figure 15), and Q2, a short but deeply nested admin query over
small tables (Figure 16) — and compares per-model CPU time and answer size
predictions. This driver reproduces the comparison on the synthetic SDSS
workload's trained models.
"""

from __future__ import annotations

import numpy as np

from repro.core.problems import Problem
from repro.evalx.reporting import format_table
from repro.experiments import runner
from repro.experiments.config import ExperimentConfig
from repro.sqlang.pipeline import analyze_batch

__all__ = ["Q1", "Q2", "case_study"]

#: The paper's Q1 shape: long statement, three large tables, many columns.
Q1 = (
    "SELECT q.objID AS qname,dbo.fDistanceArcMinEq(q.ra,q.dec,p.ra,p.dec),"
    "s.specObjID,s.z,s.zErr,s.zConf,s.specClass,s.modelMag_u,s.modelMag_g,"
    "p.objID,p.ra,p.dec,p.u,p.g,p.r,p.i,p.z,p.type,p.mode,p.flags,p.status,"
    "p.modelMag_u,p.modelMag_g,p.modelMag_r,p.psfMag_r,p.psfMagErr_u,"
    "p.petroR50_r,p.extinction_r,q.run,q.rerun,q.camcol,q.field "
    "FROM SpecObj AS s, PhotoTag AS q, PhotoObj AS p "
    "WHERE ((s.bestObjID=p.objID) AND (s.ra BETWEEN 185 AND 190) "
    "AND (q.type=6)) ORDER BY q.ra"
)

#: The paper's Q2 shape: short, nestedness 3, small admin tables.
Q2 = (
    "SELECT j.target,cast(j.estimate AS varchar) AS queue,j.status "
    "FROM Jobs j,Users u,Status s,"
    "(SELECT DISTINCT target,queue FROM Servers s1 WHERE s1.name NOT IN "
    "(SELECT name FROM Servers s,(SELECT target,min(queue) AS queue "
    "FROM Servers GROUP BY target) AS a WHERE a.target=s.target)) b "
    "WHERE j.outputtype LIKE '%QUERY%' AND j.jobID>500"
)


def case_study(config: ExperimentConfig) -> str:
    """ccnn CPU time and answer size predictions for Q1 and Q2."""
    queries = {"Q1": Q1, "Q2": Q2}
    parts = []
    feature_rows = []
    analyses = analyze_batch(list(queries.values()))
    for (name, statement), analysis in zip(queries.items(), analyses):
        features = analysis.features
        feature_rows.append(
            [
                name,
                features.num_characters,
                features.num_words,
                features.num_functions,
                features.num_joins,
                features.nestedness_level,
            ]
        )
    parts.append(
        format_table(
            ["query", "chars", "words", "functions", "joins", "nestedness"],
            feature_rows,
            title="Case study queries (Figures 15-16 shapes)",
        )
    )
    rows = []
    from repro.core.facilitator import QueryFacilitator

    facilitator = QueryFacilitator(
        model_name="ccnn", scale=config.model_scale
    ).fit(
        runner.sdss_workload(config),
        problems=[Problem.CPU_TIME, Problem.ANSWER_SIZE],
    )
    for name, statement in queries.items():
        insights = facilitator.insights(statement)
        rows.append(
            [
                name,
                float(np.round(insights.cpu_time_seconds or 0.0, 2)),
                float(np.round(insights.answer_size or 0.0, 1)),
            ]
        )
    parts.append(
        format_table(
            ["query", "ccnn CPU time (s)", "ccnn answer size"],
            rows,
            title="ccnn pre-execution predictions",
        )
    )
    return "\n\n".join(parts)
