"""Ablation studies for the design choices DESIGN.md calls out.

All on SDSS answer-size prediction (the problem where the design choices
matter most):

- **loss**: Huber vs squared training loss (Section 4.4.1 robustness);
- **transform**: log label transform on vs off (Section 4.4.1 skew);
- **cnn**: window sizes {3,4,5} vs single windows; max vs mean pooling;
- **lstm depth**: 1 layer vs the paper's 3 layers;
- **digit masking**: the ``<DIGIT>`` open-vocabulary control on vs off
  for word-level features (Section 4.4.1).
"""

from __future__ import annotations

import numpy as np

from repro.core.problems import Problem
from repro.evalx.metrics import mse
from repro.evalx.reporting import format_table
from repro.experiments import runner
from repro.experiments.config import ExperimentConfig
from repro.ml.preprocessing import LogLabelTransform
from repro.models.base import TaskKind
from repro.models.cnn_model import TextCNNModel
from repro.models.lstm_model import TextLSTMModel
from repro.models.tfidf_model import TfidfRegressor
from repro.nn.losses import SquaredLoss

__all__ = [
    "ablation_loss_and_transform",
    "ablation_cnn_architecture",
    "ablation_lstm_depth",
    "ablation_digit_masking",
]


def _answer_size_data(config: ExperimentConfig):
    split = runner.sdss_split(config)
    train = split.train
    test = split.test
    label = Problem.ANSWER_SIZE.label_column
    y_train_raw = train.labels(label)
    y_test_raw = test.labels(label)
    transform = LogLabelTransform().fit(y_train_raw)
    return (
        train.statements(),
        test.statements(),
        y_train_raw,
        y_test_raw,
        transform,
    )


def _make_cnn(config: ExperimentConfig, **kwargs) -> TextCNNModel:
    scale = config.model_scale
    return TextCNNModel(
        level="char",
        task=TaskKind.REGRESSION,
        num_kernels=kwargs.pop("num_kernels", scale.num_kernels),
        hyper=scale.hyper(),
        **kwargs,
    )


def ablation_loss_and_transform(config: ExperimentConfig) -> str:
    """Huber vs squared loss × log transform on vs off (ccnn, answer size)."""
    (
        train_statements,
        test_statements,
        y_train_raw,
        y_test_raw,
        transform,
    ) = _answer_size_data(config)
    y_train_log = transform.transform(y_train_raw)
    y_test_log = transform.transform(y_test_raw)
    rows = []
    for loss_name in ("huber", "squared"):
        for use_log in (True, False):
            model = _make_cnn(config)
            if loss_name == "squared":
                model._loss = SquaredLoss()
            y_fit = y_train_log if use_log else y_train_raw
            model.fit(train_statements, y_fit)
            pred = model.predict(test_statements)
            if not use_log:
                # map raw-scale predictions onto the log scale for a fair
                # comparison (clamp to the transform's domain first)
                pred = transform.transform(np.maximum(pred, transform.min_y))
            rows.append(
                [
                    loss_name,
                    "log" if use_log else "raw",
                    mse(y_test_log, pred),
                ]
            )
    return format_table(
        ["train loss", "labels", "test MSE (log scale)"],
        rows,
        title="Ablation: Huber vs squared loss x log transform (ccnn, answer size)",
    )


def ablation_cnn_architecture(config: ExperimentConfig) -> str:
    """Window-size sets and pooling variants of the ccnn (answer size)."""
    (
        train_statements,
        test_statements,
        y_train_raw,
        y_test_raw,
        transform,
    ) = _answer_size_data(config)
    y_train_log = transform.transform(y_train_raw)
    y_test_log = transform.transform(y_test_raw)
    rows = []
    variants = [
        ("windows {3,4,5}, max-pool", dict(windows=(3, 4, 5), pooling="max")),
        ("windows {3}, max-pool", dict(windows=(3,), pooling="max")),
        ("windows {5}, max-pool", dict(windows=(5,), pooling="max")),
        ("windows {3,4,5}, mean-pool", dict(windows=(3, 4, 5), pooling="mean")),
    ]
    for label, kwargs in variants:
        model = _make_cnn(config, **kwargs)
        model.fit(train_statements, y_train_log)
        pred = model.predict(test_statements)
        rows.append([label, mse(y_test_log, pred), model.num_parameters])
    return format_table(
        ["variant", "test MSE (log scale)", "params"],
        rows,
        title="Ablation: ccnn window sizes and pooling (answer size)",
    )


def ablation_lstm_depth(config: ExperimentConfig) -> str:
    """1-layer vs 3-layer clstm (answer size)."""
    (
        train_statements,
        test_statements,
        y_train_raw,
        y_test_raw,
        transform,
    ) = _answer_size_data(config)
    y_train_log = transform.transform(y_train_raw)
    y_test_log = transform.transform(y_test_raw)
    scale = config.model_scale
    rows = []
    for depth in (1, 3):
        model = TextLSTMModel(
            level="char",
            task=TaskKind.REGRESSION,
            hidden=scale.lstm_hidden,
            num_layers=depth,
            hyper=scale.hyper(),
        )
        model.fit(train_statements, y_train_log)
        pred = model.predict(test_statements)
        rows.append([depth, mse(y_test_log, pred), model.num_parameters])
    return format_table(
        ["layers", "test MSE (log scale)", "params"],
        rows,
        title="Ablation: clstm depth (answer size)",
    )


def ablation_digit_masking(config: ExperimentConfig) -> str:
    """<DIGIT> masking on vs off for word-level TF-IDF (answer size).

    Section 4.4.1's open-vocabulary argument: literal digits explode the
    word vocabulary with rare tokens that never recur at test time. The
    bench compares wtfidf with masking (the paper's configuration) against
    raw digits, reporting feature-space size alongside accuracy.
    """
    (
        train_statements,
        test_statements,
        y_train_raw,
        y_test_raw,
        transform,
    ) = _answer_size_data(config)
    y_train_log = transform.transform(y_train_raw)
    y_test_log = transform.transform(y_test_raw)
    scale = config.model_scale
    rows = []
    for mask in (True, False):
        model = TfidfRegressor(
            level="word",
            max_features=scale.tfidf_features,
            max_len=scale.tfidf_max_len,
            epochs=scale.epochs,
            mask_digits=mask,
        )
        model.fit(train_statements, y_train_log)
        pred = model.predict(test_statements)
        rows.append(
            [
                "<DIGIT> masked" if mask else "raw digits",
                model.vocab_size,
                mse(y_test_log, pred),
            ]
        )
    return format_table(
        ["tokenization", "features", "test MSE (log scale)"],
        rows,
        title="Ablation: digit masking for word-level models (answer size)",
    )
