"""Extension experiment: deep character CNN vs the shallow Kim CNN.

The paper's future work cites very deep character CNNs [9] as a possible
upgrade. This driver sweeps depth on SDSS answer-size prediction to show
the trade-off at workload scale: parameters and runtime grow, accuracy
saturates (or regresses) on small training sets.
"""

from __future__ import annotations

import time

from repro.core.problems import Problem
from repro.evalx.metrics import mse
from repro.evalx.reporting import format_table
from repro.experiments import runner
from repro.experiments.config import ExperimentConfig
from repro.ml.preprocessing import LogLabelTransform
from repro.models.base import TaskKind
from repro.models.cnn_model import TextCNNModel
from repro.models.deep_cnn import DeepTextCNN

__all__ = ["deep_cnn_experiment"]


def deep_cnn_experiment(config: ExperimentConfig) -> str:
    """Shallow ccnn vs deep variants on SDSS answer-size prediction."""
    scale = config.model_scale
    split = runner.sdss_split(config)
    train, test = split.train, split.test
    label = Problem.ANSWER_SIZE.label_column
    transform = LogLabelTransform().fit(train.labels(label))
    y_train = transform.transform(train.labels(label))
    y_test = transform.transform(test.labels(label))

    rows = []
    shallow = TextCNNModel(
        level="char",
        task=TaskKind.REGRESSION,
        num_kernels=scale.num_kernels,
        hyper=scale.hyper(),
    )
    start = time.perf_counter()
    shallow.fit(train.statements(), y_train)
    elapsed = time.perf_counter() - start
    rows.append(
        [
            "ccnn (shallow, Kim)",
            mse(y_test, shallow.predict(test.statements())),
            shallow.num_parameters,
            round(elapsed, 1),
        ]
    )
    for depth in (1, 2):
        model = DeepTextCNN(
            level="char",
            task=TaskKind.REGRESSION,
            depth=depth,
            channels=scale.num_kernels // 2,
            hyper=scale.hyper(),
        )
        start = time.perf_counter()
        model.fit(train.statements(), y_train)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                f"cdeep{depth}",
                mse(y_test, model.predict(test.statements())),
                model.num_parameters,
                round(elapsed, 1),
            ]
        )
    return format_table(
        ["model", "test MSE (log answer size)", "params", "train s"],
        rows,
        title=(
            "Extension: deep character CNN vs shallow ccnn "
            "(paper Sec. 8 future work)"
        ),
    )
