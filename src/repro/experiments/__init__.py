"""Experiment drivers: one module per table/figure of the evaluation.

Every driver takes an :class:`~repro.experiments.config.ExperimentConfig`
and returns a formatted report string (plus structured data where useful).
Heavy artifacts — generated workloads, fitted models, prediction vectors —
are cached per config in :mod:`repro.experiments.runner`, so the benchmark
suite can regenerate all tables without retraining for each one.
"""

from repro.experiments.config import ExperimentConfig, default_config

__all__ = ["ExperimentConfig", "default_config"]
