"""Drivers for Tables 1-7: formatted reproductions of the paper's tables."""

from __future__ import annotations

from repro.core.problems import Problem, Setting
from repro.evalx.reporting import format_table
from repro.experiments import runner
from repro.experiments.config import ExperimentConfig

__all__ = [
    "table1_splits",
    "table2_homogeneous_instance",
    "table3_answer_size_qerror",
    "table4_session_classification",
    "table5_sqlshare_cpu",
    "table6_qerror_homogeneous_schema",
    "table7_qerror_heterogeneous_schema",
]


def table1_splits(config: ExperimentConfig) -> str:
    """Table 1: query counts per partition for the three settings."""
    sdss = runner.sdss_split(config)
    homog = runner.sqlshare_split(config, Setting.HOMOGENEOUS_SCHEMA)
    heterog = runner.sqlshare_split(config, Setting.HETEROGENEOUS_SCHEMA)
    rows = []
    for label, split in [
        ("Total", None),
        ("Train", 0),
        ("Valid.", 1),
        ("Test", 2),
    ]:
        if split is None:
            rows.append(
                [
                    label,
                    len(sdss.workload),
                    len(homog.workload),
                    len(heterog.workload),
                ]
            )
        else:
            rows.append(
                [
                    label,
                    sdss.sizes()[split],
                    homog.sizes()[split],
                    heterog.sizes()[split],
                ]
            )
    return format_table(
        ["", "Homogeneous Instance", "Homogeneous Schema", "Heterogeneous Schema"],
        rows,
        title="Table 1: number of queries and data split",
    )


def table2_homogeneous_instance(config: ExperimentConfig) -> str:
    """Table 2: error classification + CPU time + answer size on SDSS."""
    error = runner.classification_outcome(config, Problem.ERROR_CLASSIFICATION)
    cpu = runner.regression_outcome(
        config, Problem.CPU_TIME, Setting.HOMOGENEOUS_INSTANCE
    )
    answer = runner.regression_outcome(
        config, Problem.ANSWER_SIZE, Setting.HOMOGENEOUS_INSTANCE
    )
    cpu_loss = {r.model: r.loss for r in cpu.reports}
    answer_loss = {r.model: r.loss for r in answer.reports}
    rows = []
    for report in error.reports:
        name = report.model
        reg_name = "median" if name == "mfreq" else name
        rows.append(
            [
                name,
                report.vocab_size,
                report.num_parameters,
                report.accuracy,
                report.f_per_class.get("severe", 0.0),
                report.f_per_class.get("success", 0.0),
                report.f_per_class.get("non_severe", 0.0),
                report.loss,
                cpu_loss.get(reg_name, float("nan")),
                answer_loss.get(reg_name, float("nan")),
            ]
        )
    return format_table(
        [
            "Model",
            "v",
            "p",
            "Accuracy",
            "F_severe",
            "F_success",
            "F_non_severe",
            "Loss(err)",
            "Loss(cpu)",
            "Loss(answer)",
        ],
        rows,
        title=(
            "Table 2: error classification (left), CPU time and answer size "
            "prediction (right), Homogeneous Instance (SDSS)"
        ),
    )


def _qerror_table(
    outcome, percentiles: tuple[float, ...], title: str
) -> str:
    rows = []
    for report in outcome.reports:
        row: list[object] = [report.model]
        for p in percentiles:
            row.append(report.qerror_percentiles.get(p, float("nan")))
        rows.append(row)
    headers = ["Model"] + [f"{int(p)}%" for p in percentiles]
    return format_table(headers, rows, title=title)


def table3_answer_size_qerror(config: ExperimentConfig) -> str:
    """Table 3: answer size qerror percentiles on SDSS."""
    outcome = runner.regression_outcome(
        config, Problem.ANSWER_SIZE, Setting.HOMOGENEOUS_INSTANCE
    )
    return _qerror_table(
        outcome,
        (50, 75, 80, 85, 90, 95),
        "Table 3: answer size prediction qerror (SDSS)",
    )


def table4_session_classification(config: ExperimentConfig) -> str:
    """Table 4: session classification on SDSS."""
    outcome = runner.classification_outcome(
        config, Problem.SESSION_CLASSIFICATION
    )
    class_order = [
        "no_web_hit",
        "unknown",
        "bot",
        "program",
        "anonymous",
        "browser",
    ]
    rows = []
    for report in outcome.reports:
        row: list[object] = [
            report.model,
            report.vocab_size,
            report.num_parameters,
            report.loss,
        ]
        for cls in class_order:
            row.append(report.f_per_class.get(cls, 0.0))
        row.append(report.accuracy)
        rows.append(row)
    headers = (
        ["Model", "v", "p", "Loss"]
        + [f"F_{c}" for c in class_order]
        + ["Accuracy"]
    )
    return format_table(
        headers, rows, title="Table 4: session classification (SDSS)"
    )


def table5_sqlshare_cpu(config: ExperimentConfig) -> str:
    """Table 5: CPU time prediction on SQLShare, both schema settings."""
    homog = runner.regression_outcome(
        config, Problem.CPU_TIME, Setting.HOMOGENEOUS_SCHEMA
    )
    heterog = runner.regression_outcome(
        config, Problem.CPU_TIME, Setting.HETEROGENEOUS_SCHEMA
    )
    heterog_loss = {r.model: r.loss for r in heterog.reports}
    rows = []
    for report in homog.reports:
        rows.append(
            [
                report.model,
                report.vocab_size,
                report.num_parameters,
                report.loss,
                heterog_loss.get(report.model, float("nan")),
            ]
        )
    return format_table(
        ["Model", "v", "p", "Loss(HomogSchema)", "Loss(HeterogSchema)"],
        rows,
        title="Table 5: query CPU time prediction (SQLShare)",
    )


def table6_qerror_homogeneous_schema(config: ExperimentConfig) -> str:
    """Table 6: CPU time qerror, SQLShare Homogeneous Schema."""
    outcome = runner.regression_outcome(
        config, Problem.CPU_TIME, Setting.HOMOGENEOUS_SCHEMA
    )
    return _qerror_table(
        outcome,
        (40, 50, 60, 70, 75, 80),
        "Table 6: CPU time prediction qerror (SQLShare, Homogeneous Schema)",
    )


def table7_qerror_heterogeneous_schema(config: ExperimentConfig) -> str:
    """Table 7: CPU time qerror, SQLShare Heterogeneous Schema."""
    outcome = runner.regression_outcome(
        config, Problem.CPU_TIME, Setting.HETEROGENEOUS_SCHEMA
    )
    return _qerror_table(
        outcome,
        (10, 20, 30, 40, 50, 60),
        "Table 7: CPU time prediction qerror (SQLShare, Heterogeneous Schema)",
    )
