"""Shared cached artifacts: workloads, splits, and fitted-model outcomes.

Tables 2-7 and Figures 12-14 reuse the same trained models and prediction
vectors; everything here is memoized per :class:`ExperimentConfig` so the
full table suite trains each (model, problem, setting) combination once.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from repro.core.evaluation import (
    ClassificationOutcome,
    RegressionOutcome,
    evaluate_classification,
    evaluate_regression,
)
from repro.core.problems import Problem, Setting
from repro.core.splits import DataSplit, random_split, user_split
from repro.experiments.config import (
    SDSS_MODEL_NAMES,
    SQLSHARE_MODEL_NAMES,
    ExperimentConfig,
)
from repro.models.base import QueryModel, TaskKind
from repro.models.factory import build_model
from repro.workloads.records import LogEntry, Workload
from repro.workloads.schema import (
    Catalog,
    sdss_catalog,
    sqlshare_catalog,
    sqlshare_username,
)
from repro.workloads.io import load_log, load_workload, save_log, save_workload
from repro.workloads.sdss import generate_sdss_log, generate_sdss_workload
from repro.workloads.sqlshare import generate_sqlshare_workload

__all__ = [
    "sdss_log",
    "sdss_workload",
    "sqlshare_workload",
    "sdss_split",
    "sqlshare_split",
    "classification_outcome",
    "regression_outcome",
    "clear_cache",
    "workload_cache_dir",
    "train_workers",
    "train_facilitator",
    "sdss_facilitator",
]

_CACHE: dict[tuple[Any, ...], Any] = {}


def clear_cache() -> None:
    """Drop all cached workloads and outcomes (mainly for tests)."""
    _CACHE.clear()


def _cached(key: tuple[Any, ...], factory) -> Any:
    if key not in _CACHE:
        _CACHE[key] = factory()
    return _CACHE[key]


def workload_cache_dir() -> Path | None:
    """Optional on-disk workload cache directory (``REPRO_WORKLOAD_CACHE``).

    When set, generated workloads and logs persist as gzipped JSONL through
    the streaming I/O core, so repeated experiment runs (benchmark suites,
    CI) skip regeneration instead of re-simulating every session.
    """
    value = os.environ.get("REPRO_WORKLOAD_CACHE")
    if not value:
        return None
    directory = Path(value)
    directory.mkdir(parents=True, exist_ok=True)
    return directory


#: On-disk workload cache schema/generation tag, part of every cache file
#: name. Bump when workload generation or the simulated execution engine
#: changes behaviour, so stale caches are bypassed instead of silently
#: reused (``path.exists()`` is the only validity check).
_CACHE_GENERATION = 1


def _cache_path(directory: Path, stem: str) -> Path:
    return directory / f"{stem}.v{_CACHE_GENERATION}.jsonl.gz"


def _atomic_save(path: Path, write) -> None:
    """Write through a same-directory temp file + ``os.replace``.

    A crash mid-write (or two runs racing on the same stem) must never
    leave a truncated file at ``path`` — ``path.exists()`` is the cache's
    only validity check. The temp name keeps the final suffix so the
    ``.gz``-sensitive writers compress it identically.
    """
    tmp = path.with_name(f"{path.stem}.tmp{os.getpid()}{path.suffix}")
    try:
        write(tmp)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _disk_cached_workload(stem: str, factory) -> Workload:
    directory = workload_cache_dir()
    if directory is None:
        return factory()
    path = _cache_path(directory, stem)
    if path.exists():
        return load_workload(path)
    workload = factory()
    _atomic_save(path, lambda tmp: save_workload(workload, tmp))
    return workload


def _disk_cached_log(stem: str, factory) -> list[LogEntry]:
    directory = workload_cache_dir()
    if directory is None:
        return factory()
    path = _cache_path(directory, stem)
    if path.exists():
        return load_log(path)
    entries = factory()
    _atomic_save(path, lambda tmp: save_log(entries, tmp, name=stem))
    return entries


# -- multi-head training --------------------------------------------------- #


def train_workers() -> int | None:
    """Process-pool width for multi-head training (``REPRO_TRAIN_WORKERS``).

    Facilitator heads are independent seeded models, so fanning them out
    across processes returns the identical fitted artifact, just faster
    on multi-core boxes. Unset (or ``<= 1``) trains serially.
    """
    value = os.environ.get("REPRO_TRAIN_WORKERS")
    if not value:
        return None
    try:
        workers = int(value)
    except ValueError:
        raise ValueError(
            f"REPRO_TRAIN_WORKERS must be an integer, got {value!r}"
        ) from None
    return workers if workers > 1 else None


def train_facilitator(
    workload,
    model_name: str = "ccnn",
    scale=None,
    problems=None,
    workers: int | None = None,
):
    """Train a multi-head facilitator, heads fanned out over a process pool.

    The experiment-side entry point for end-to-end training: one
    :class:`~repro.core.facilitator.QueryFacilitator` with every problem
    head the workload supports, trained concurrently when ``workers``
    (default: :func:`train_workers`) allows. Workers return their heads
    in artifact form (manifest entry + codec payload) and the parent
    merges them through the :mod:`repro.models.serialize` registry, so
    the result is indistinguishable from serial training.
    """
    from repro.core.facilitator import QueryFacilitator

    workers = workers if workers is not None else train_workers()
    facilitator = QueryFacilitator(model_name=model_name, scale=scale)
    return facilitator.fit(workload, problems=problems, workers=workers)


def sdss_facilitator(
    config: ExperimentConfig, model_name: str = "ccnn"
) -> "QueryFacilitator":
    """Cached multi-head facilitator over the SDSS workload for ``config``."""
    return _cached(
        ("facilitator", config, model_name),
        lambda: train_facilitator(
            sdss_workload(config), model_name, config.model_scale
        ),
    )


# -- workloads ------------------------------------------------------------ #


def sdss_log(config: ExperimentConfig) -> list[LogEntry]:
    """The raw (pre-dedup) SDSS log for this config."""
    return _cached(
        ("sdss_log", config),
        lambda: _disk_cached_log(
            f"sdss-log-{config.sdss_sessions}-{config.sdss_seed}",
            lambda: generate_sdss_log(
                n_sessions=config.sdss_sessions, seed=config.sdss_seed
            ),
        ),
    )


def sdss_workload(config: ExperimentConfig) -> Workload:
    """The extracted (deduplicated) SDSS workload."""
    return _cached(
        ("sdss_workload", config),
        lambda: _disk_cached_workload(
            f"sdss-{config.sdss_sessions}-{config.sdss_seed}",
            lambda: generate_sdss_workload(
                n_sessions=config.sdss_sessions, seed=config.sdss_seed
            ),
        ),
    )


def sqlshare_workload(config: ExperimentConfig) -> Workload:
    """The SQLShare workload (CPU time labels only)."""
    return _cached(
        ("sqlshare_workload", config),
        lambda: _disk_cached_workload(
            f"sqlshare-{config.sqlshare_users}-{config.sqlshare_seed}",
            lambda: generate_sqlshare_workload(
                n_users=config.sqlshare_users, seed=config.sqlshare_seed
            ),
        ),
    )


# -- splits (Table 1) ------------------------------------------------------- #


def sdss_split(config: ExperimentConfig) -> DataSplit:
    """Homogeneous Instance: random 80/10/10 split of SDSS."""
    return _cached(
        ("sdss_split", config),
        lambda: random_split(sdss_workload(config), seed=config.seed),
    )


def sqlshare_split(config: ExperimentConfig, setting: Setting) -> DataSplit:
    """Homogeneous Schema (random) or Heterogeneous Schema (by-user)."""
    if setting is Setting.HOMOGENEOUS_SCHEMA:
        return _cached(
            ("sqlshare_random_split", config),
            lambda: random_split(sqlshare_workload(config), seed=config.seed),
        )
    if setting is Setting.HETEROGENEOUS_SCHEMA:
        return _cached(
            ("sqlshare_user_split", config),
            lambda: user_split(sqlshare_workload(config), seed=config.seed),
        )
    raise ValueError(f"SQLShare has no split for {setting}")


# -- model construction ------------------------------------------------------ #


def sqlshare_catalog_union(config: ExperimentConfig) -> Catalog:
    """Union of every SQLShare user's catalog (what the real optimizer sees)."""

    def build() -> Catalog:
        union = Catalog("sqlshare-union")
        for user_idx in range(config.sqlshare_users):
            user = sqlshare_username(user_idx)
            user_seed = config.sqlshare_seed * 100_003 + user_idx
            per_user = sqlshare_catalog(user, seed=user_seed)
            union.tables.update(per_user.tables)
            union.functions.update(per_user.functions)
        return union

    return _cached(("sqlshare_catalog_union", config), build)


def _build_models(
    config: ExperimentConfig,
    names: list[str],
    task: TaskKind,
    num_classes: int,
    catalog: Catalog | None = None,
) -> dict[str, QueryModel]:
    catalog = catalog if catalog is not None else sdss_catalog()
    models: dict[str, QueryModel] = {}
    for name in names:
        models[name] = build_model(
            name,
            task,
            num_classes=num_classes,
            scale=config.model_scale,
            catalog=catalog,
        )
    return models


def _display_name(name: str, task: TaskKind) -> str:
    if name != "baseline":
        return name
    return "mfreq" if task is TaskKind.CLASSIFICATION else "median"


# -- outcomes ------------------------------------------------------------- #


def classification_outcome(
    config: ExperimentConfig, problem: Problem
) -> ClassificationOutcome:
    """Cached Table 2/4 classification run on SDSS (Homogeneous Instance)."""
    if not problem.is_classification:
        raise ValueError(f"{problem} is not a classification problem")

    def run() -> ClassificationOutcome:
        split = sdss_split(config)
        labels = split.workload.labels(problem.label_column)
        num_classes = len(set(labels.tolist()))
        built = _build_models(
            config, SDSS_MODEL_NAMES, TaskKind.CLASSIFICATION, num_classes
        )
        models = {
            _display_name(name, TaskKind.CLASSIFICATION): model
            for name, model in built.items()
        }
        return evaluate_classification(problem, split, models)

    return _cached(("classification", config, problem), run)


def regression_outcome(
    config: ExperimentConfig,
    problem: Problem,
    setting: Setting,
    percentiles: tuple[float, ...] = (10, 20, 30, 40, 50, 60, 70, 75, 80, 85, 90, 95),
) -> RegressionOutcome:
    """Cached regression run for (problem, setting).

    SDSS serves Homogeneous Instance; SQLShare serves the other two
    settings (Table 5) and includes the ``opt`` model.
    """
    if problem.is_classification:
        raise ValueError(f"{problem} is not a regression problem")

    def run() -> RegressionOutcome:
        if setting is Setting.HOMOGENEOUS_INSTANCE:
            split = sdss_split(config)
            names = SDSS_MODEL_NAMES
            catalog = sdss_catalog()
        else:
            split = sqlshare_split(config, setting)
            names = SQLSHARE_MODEL_NAMES
            catalog = sqlshare_catalog_union(config)
        built = _build_models(
            config, names, TaskKind.REGRESSION, 2, catalog=catalog
        )
        models = {
            _display_name(name, TaskKind.REGRESSION): model
            for name, model in built.items()
        }
        return evaluate_regression(
            problem, split, models, percentiles=percentiles
        )

    return _cached(("regression", config, problem, setting), run)
