"""Experiment scaling configuration.

The paper trains on 618k (SDSS) / 27k (SQLShare) statements with 500k-token
TF-IDF vocabularies and full-width networks. That is not CPU-friendly, so
experiments run at a configurable scale; set the ``REPRO_SCALE`` environment
variable to ``small`` (default), ``medium``, or ``large``. Every generator
and model takes its size from this config, so scaling up is one env var.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.models.factory import ModelScale

__all__ = ["ExperimentConfig", "default_config", "SCALES"]

#: Models compared in the SDSS tables (paper order).
SDSS_MODEL_NAMES = ["baseline", "ctfidf", "ccnn", "clstm", "wtfidf", "wcnn", "wlstm"]

#: Models compared in the SQLShare tables (Table 5 adds ``opt``).
SQLSHARE_MODEL_NAMES = [
    "baseline",
    "opt",
    "ctfidf",
    "ccnn",
    "clstm",
    "wtfidf",
    "wcnn",
    "wlstm",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Reproducible experiment sizing. Hashable so results can be cached."""

    name: str = "small"
    sdss_sessions: int = 3200
    sqlshare_users: int = 70
    seed: int = 13
    model_scale: ModelScale = field(default_factory=ModelScale)

    @property
    def sdss_seed(self) -> int:
        return self.seed

    @property
    def sqlshare_seed(self) -> int:
        return self.seed + 1000


SCALES: dict[str, ExperimentConfig] = {
    # sized so the full benchmark suite finishes in under an hour on one
    # CPU core while every Section 6 ordering still reproduces
    "small": ExperimentConfig(
        name="small",
        sdss_sessions=2200,
        sqlshare_users=60,
        model_scale=ModelScale(
            epochs=8,
            lstm_hidden=48,
            max_len_char=144,
        ),
    ),
    "medium": ExperimentConfig(
        name="medium",
        sdss_sessions=8000,
        sqlshare_users=200,
        model_scale=ModelScale(
            epochs=10,
            tfidf_features=50_000,
            embed_dim=64,
            num_kernels=100,
            lstm_hidden=96,
        ),
    ),
    "large": ExperimentConfig(
        name="large",
        sdss_sessions=30_000,
        sqlshare_users=600,
        model_scale=ModelScale(
            epochs=8,
            tfidf_features=200_000,
            embed_dim=100,
            num_kernels=100,
            lstm_hidden=150,
            max_len_char=400,
            max_len_word=128,
        ),
    ),
}


def default_config() -> ExperimentConfig:
    """Config selected by the ``REPRO_SCALE`` env var (default ``small``)."""
    scale = os.environ.get("REPRO_SCALE", "small").lower()
    if scale not in SCALES:
        raise ValueError(
            f"REPRO_SCALE must be one of {sorted(SCALES)}, got {scale!r}"
        )
    return SCALES[scale]
