"""Extension experiment: Tree-LSTM over ASTs vs sequential models.

The paper's future work (Section 8) cites tree-structured architectures
[52] as a possible upgrade over flat token sequences. This driver trains
the Child-Sum Tree-LSTM on SDSS answer-size prediction and compares it
against the sequential clstm and the paper's winning ccnn, both on overall
test MSE and specifically on *nested* queries — the inputs whose structure
the flat models cannot see.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.problems import Problem
from repro.evalx.metrics import mse
from repro.evalx.reporting import format_table
from repro.experiments import runner
from repro.experiments.config import ExperimentConfig
from repro.ml.preprocessing import LogLabelTransform
from repro.models.base import TaskKind
from repro.models.cnn_model import TextCNNModel
from repro.models.lstm_model import TextLSTMModel
from repro.models.tree_model import TreeLSTMModel
from repro.sqlang.pipeline import get_pipeline

__all__ = ["tree_lstm_experiment"]


def tree_lstm_experiment(config: ExperimentConfig) -> str:
    """treelstm vs clstm vs ccnn on SDSS answer size, overall and nested."""
    scale = config.model_scale
    split = runner.sdss_split(config)
    train, test = split.train, split.test
    label = Problem.ANSWER_SIZE.label_column
    transform = LogLabelTransform().fit(train.labels(label))
    y_train = transform.transform(train.labels(label))
    y_test = transform.transform(test.labels(label))

    test_statements = test.statements()
    nested_mask = np.asarray(
        [
            a.features.nestedness_level > 0
            for a in get_pipeline().analyze_batch(test_statements)
        ]
    )

    models = {
        "ccnn": TextCNNModel(
            level="char",
            task=TaskKind.REGRESSION,
            num_kernels=scale.num_kernels,
            hyper=scale.hyper(),
        ),
        "clstm": TextLSTMModel(
            level="char",
            task=TaskKind.REGRESSION,
            hidden=scale.lstm_hidden,
            hyper=scale.hyper(),
        ),
        "treelstm": TreeLSTMModel(
            task=TaskKind.REGRESSION,
            embed_dim=scale.embed_dim,
            hidden=scale.lstm_hidden,
            epochs=max(scale.epochs // 2, 3),
            lr=scale.lr,
            seed=scale.seed,
        ),
    }

    rows = []
    for name, model in models.items():
        start = time.perf_counter()
        model.fit(train.statements(), y_train)
        elapsed = time.perf_counter() - start
        preds = model.predict(test_statements)
        overall = mse(y_test, preds)
        nested = (
            mse(y_test[nested_mask], preds[nested_mask])
            if nested_mask.any()
            else float("nan")
        )
        rows.append(
            [name, overall, nested, model.num_parameters, round(elapsed, 1)]
        )
    return format_table(
        [
            "model",
            "test MSE (log answer size)",
            f"MSE on nested (n={int(nested_mask.sum())})",
            "params",
            "train s",
        ],
        rows,
        title=(
            "Extension: Child-Sum Tree-LSTM over ASTs "
            "(paper Sec. 8 future work, Tai et al. [52])"
        ),
    )
