"""Drivers for Figures 3-8 and 20: workload analysis reproductions."""

from __future__ import annotations

import numpy as np

from repro.analysis.by_session import by_session_class
from repro.analysis.correlation import structural_correlation_matrix
from repro.analysis.label_analysis import (
    class_distribution,
    regression_label_summary,
)
from repro.analysis.repetition import repetition_histogram_of_log
from repro.analysis.structural import StructuralTable, structural_table
from repro.evalx.reporting import format_table
from repro.experiments import runner
from repro.experiments.config import ExperimentConfig

__all__ = [
    "fig3_sdss_structure",
    "fig4_sqlshare_structure",
    "fig6_label_distributions",
    "fig7_correlation",
    "fig8_by_session_class",
    "fig20_repetition",
    "sdss_structural_table",
    "sqlshare_structural_table",
]

_STRUCTURE_CACHE: dict[tuple, StructuralTable] = {}


def sdss_structural_table(config: ExperimentConfig) -> StructuralTable:
    key = ("sdss", config)
    if key not in _STRUCTURE_CACHE:
        _STRUCTURE_CACHE[key] = structural_table(runner.sdss_workload(config))
    return _STRUCTURE_CACHE[key]


def sqlshare_structural_table(config: ExperimentConfig) -> StructuralTable:
    key = ("sqlshare", config)
    if key not in _STRUCTURE_CACHE:
        _STRUCTURE_CACHE[key] = structural_table(
            runner.sqlshare_workload(config)
        )
    return _STRUCTURE_CACHE[key]


def _structure_report(table: StructuralTable, title: str) -> str:
    rows = []
    for name in table.feature_names:
        summary = table.summaries[name]
        rows.append(
            [
                name,
                summary.mean,
                summary.std,
                summary.minimum,
                summary.maximum,
                summary.mode,
                summary.median,
            ]
        )
    header = format_table(
        ["property", "mean", "std", "min", "max", "mode", "median"],
        rows,
        title=title,
    )
    extras = (
        f"\nwith >=1 join: {table.fraction_with_joins:.2%}   "
        f"multi-table: {table.fraction_multi_table:.2%}   "
        f"nested: {table.fraction_nested:.2%}   "
        f"nested aggregation: {table.fraction_nested_aggregation:.2%}"
    )
    return header + extras


def fig3_sdss_structure(config: ExperimentConfig) -> str:
    """Figure 3: structural properties of SDSS query statements."""
    return _structure_report(
        sdss_structural_table(config),
        "Figure 3: structural properties of SDSS statements",
    )


def fig4_sqlshare_structure(config: ExperimentConfig) -> str:
    """Figure 4: structural properties of SQLShare query statements."""
    return _structure_report(
        sqlshare_structural_table(config),
        "Figure 4: structural properties of SQLShare statements",
    )


def fig6_label_distributions(config: ExperimentConfig) -> str:
    """Figure 6: label distributions for all four problems."""
    sdss = runner.sdss_workload(config)
    sqlshare = runner.sqlshare_workload(config)
    parts: list[str] = []

    error_rows = [
        [cls, count, share]
        for cls, (count, share) in class_distribution(
            sdss, "error_class"
        ).items()
    ]
    parts.append(
        format_table(
            ["error class", "queries", "share"],
            error_rows,
            title="Figure 6a: SDSS error class distribution",
        )
    )
    session_rows = [
        [cls, count, share]
        for cls, (count, share) in class_distribution(
            sdss, "session_class"
        ).items()
    ]
    parts.append(
        format_table(
            ["session class", "queries", "share"],
            session_rows,
            title="Figure 6b: SDSS session class distribution",
        )
    )
    reg_rows = []
    for title, workload, column in [
        ("SDSS answer size", sdss, "answer_size"),
        ("SDSS CPU time", sdss, "cpu_time"),
        ("SQLShare CPU time", sqlshare, "cpu_time"),
    ]:
        summary = regression_label_summary(workload, column)
        reg_rows.append(
            [
                title,
                summary.mean,
                summary.std,
                summary.minimum,
                summary.maximum,
                summary.mode,
                summary.median,
            ]
        )
    parts.append(
        format_table(
            ["label", "mean", "std", "min", "max", "mode", "median"],
            reg_rows,
            title="Figures 6c-6e: regression label distributions",
        )
    )
    return "\n\n".join(parts)


def fig7_correlation(config: ExperimentConfig) -> str:
    """Figure 7: correlation matrices of the structural properties."""
    parts = []
    for label, table in [
        ("SDSS", sdss_structural_table(config)),
        ("SQLShare", sqlshare_structural_table(config)),
    ]:
        corr = structural_correlation_matrix(table)
        short = [n.replace("num_", "")[:12] for n in table.feature_names]
        rows = [
            [short[i]] + [float(corr[i, j]) for j in range(len(short))]
            for i in range(len(short))
        ]
        parts.append(
            format_table(
                ["", *short],
                rows,
                title=f"Figure 7 ({label}): structural property correlations",
            )
        )
    return "\n\n".join(parts)


def fig8_by_session_class(config: ExperimentConfig) -> str:
    """Figure 8: SDSS label/length box statistics by session class."""
    stats = by_session_class(runner.sdss_workload(config))
    parts = []
    for quantity, per_class in stats.items():
        rows = [
            [cls, box.q1, box.median, box.q3, box.mean, box.count]
            for cls, box in per_class.items()
        ]
        parts.append(
            format_table(
                ["session class", "q1", "median", "q3", "mean", "n"],
                rows,
                title=f"Figure 8: {quantity} by session class",
            )
        )
    return "\n\n".join(parts)


def fig20_repetition(config: ExperimentConfig) -> str:
    """Figure 20: histogram of statement repetition in the sampled log."""
    histogram = repetition_histogram_of_log(
        runner.sdss_log(config), seed=config.seed
    )
    total = max(sum(histogram.values()), 1)
    repeated = sum(v for k, v in histogram.items() if k != "1")
    rows = [[label, count] for label, count in histogram.items()]
    table = format_table(
        ["times repeated", "samples in dataset"],
        rows,
        title="Figure 20: statement repetition histogram",
    )
    return table + (
        f"\nsamples with a repeated statement: {repeated / total:.1%}"
    )


def fig6_answer_size_histogram(config: ExperimentConfig) -> list[tuple]:
    """Log-histogram data behind Figure 6c (used by tests/benches)."""
    from repro.analysis.stats import log_histogram

    values = runner.sdss_workload(config).labels("answer_size")
    return log_histogram(values[np.asarray(values) >= 0])
