"""Future-work extensions (paper Section 8): transfer and multi-task learning.

Two experiments beyond the paper's evaluation:

- **transfer**: pre-train ccnn for CPU-time prediction on the large SDSS
  workload, then fine-tune on the Heterogeneous-Schema SQLShare split —
  the paper's proposed remedy for heterogeneity. Compared against training
  from scratch on the target data alone.
- **multi-task**: one shared ccnn encoder with four heads (error class,
  session class, CPU time, answer size) versus four independently trained
  single-task ccnn models on SDSS.
"""

from __future__ import annotations

import numpy as np

from repro.core.problems import Problem, Setting
from repro.evalx.metrics import accuracy, huber_loss, mse
from repro.evalx.reporting import format_table
from repro.experiments import runner
from repro.experiments.config import ExperimentConfig
from repro.ml.preprocessing import LabelEncoder, LogLabelTransform
from repro.models.base import TaskKind
from repro.models.cnn_model import TextCNNModel
from repro.models.multitask import MultiTaskTextCNN, TaskSpec

__all__ = ["transfer_learning_experiment", "multitask_experiment"]


def transfer_learning_experiment(config: ExperimentConfig) -> str:
    """ccnn from scratch vs SDSS-pretrained + fine-tuned, CPU time,
    Heterogeneous Schema."""
    scale = config.model_scale
    source = runner.sdss_workload(config)
    target_split = runner.sqlshare_split(
        config, Setting.HETEROGENEOUS_SCHEMA
    )
    train = target_split.train
    test = target_split.test
    y_train_raw = train.labels("cpu_time")
    y_test_raw = test.labels("cpu_time")
    transform = LogLabelTransform().fit(y_train_raw)
    y_train = transform.transform(y_train_raw)
    y_test = transform.transform(y_test_raw)

    # from scratch on the target only
    scratch = TextCNNModel(
        level="char",
        task=TaskKind.REGRESSION,
        num_kernels=scale.num_kernels,
        hyper=scale.hyper(),
    )
    scratch.fit(train.statements(), y_train)
    scratch_mse = mse(y_test, scratch.predict(test.statements()))

    # pre-train on SDSS CPU time, fine-tune on the target
    source_transform = LogLabelTransform().fit(source.labels("cpu_time"))
    pretrained = TextCNNModel(
        level="char",
        task=TaskKind.REGRESSION,
        num_kernels=scale.num_kernels,
        hyper=scale.hyper(),
    )
    pretrained.fit(
        source.statements(),
        source_transform.transform(source.labels("cpu_time")),
    )
    pretrained.finetune(train.statements(), y_train)
    transfer_mse = mse(y_test, pretrained.predict(test.statements()))

    rows = [
        ["ccnn (scratch, target only)", scratch_mse],
        ["ccnn (SDSS-pretrained + fine-tuned)", transfer_mse],
    ]
    return format_table(
        ["variant", "test MSE (log CPU time)"],
        rows,
        title=(
            "Extension: transfer learning for Heterogeneous Schema "
            "(paper Sec. 8 future work)"
        ),
    )


def multitask_experiment(config: ExperimentConfig) -> str:
    """Multi-task ccnn vs four single-task ccnn models on SDSS."""
    scale = config.model_scale
    split = runner.sdss_split(config)
    train, test = split.train, split.test

    error_enc = LabelEncoder().fit(
        list(split.workload.labels("error_class"))
    )
    session_enc = LabelEncoder().fit(
        list(split.workload.labels("session_class"))
    )
    cpu_tf = LogLabelTransform().fit(train.labels("cpu_time"))
    ans_tf = LogLabelTransform().fit(train.labels("answer_size"))

    train_labels = {
        "error_class": error_enc.transform(
            list(train.labels("error_class"))
        ),
        "session_class": session_enc.transform(
            list(train.labels("session_class"))
        ),
        "cpu_time": cpu_tf.transform(train.labels("cpu_time")),
        "answer_size": ans_tf.transform(train.labels("answer_size")),
    }
    test_labels = {
        "error_class": error_enc.transform(list(test.labels("error_class"))),
        "session_class": session_enc.transform(
            list(test.labels("session_class"))
        ),
        "cpu_time": cpu_tf.transform(test.labels("cpu_time")),
        "answer_size": ans_tf.transform(test.labels("answer_size")),
    }

    tasks = [
        TaskSpec("error_class", TaskKind.CLASSIFICATION, error_enc.num_classes),
        TaskSpec(
            "session_class", TaskKind.CLASSIFICATION, session_enc.num_classes
        ),
        TaskSpec("cpu_time", TaskKind.REGRESSION),
        TaskSpec("answer_size", TaskKind.REGRESSION),
    ]
    multitask = MultiTaskTextCNN(
        tasks,
        level="char",
        num_kernels=scale.num_kernels,
        hyper=scale.hyper(),
    )
    multitask.fit(train.statements(), train_labels)

    rows = []
    for task in tasks:
        # single-task counterpart
        single = TextCNNModel(
            level="char",
            task=task.kind,
            num_classes=task.num_classes,
            num_kernels=scale.num_kernels,
            hyper=scale.hyper(),
        )
        single.fit(train.statements(), train_labels[task.name])
        single_pred = single.predict(test.statements())
        multi_pred = multitask.predict(task.name, test.statements())
        truth = test_labels[task.name]
        if task.kind is TaskKind.CLASSIFICATION:
            rows.append(
                [
                    task.name,
                    "accuracy",
                    accuracy(truth, single_pred),
                    accuracy(truth, multi_pred),
                ]
            )
        else:
            rows.append(
                [
                    task.name,
                    "huber loss",
                    huber_loss(truth, single_pred),
                    huber_loss(truth, multi_pred),
                ]
            )
    return format_table(
        ["task", "metric", "single-task ccnn", "multi-task ccnn"],
        rows,
        title=(
            "Extension: multi-task ccnn vs single-task ccnn on SDSS "
            "(paper Sec. 8 future work)"
        ),
    )
