"""Extension experiment: elapsed-time prediction (paper Section 8).

The paper's conclusion proposes predicting the *elapsed* time of queries —
the SqlLog ``elapsed`` column — in addition to the ``busy`` CPU time its
evaluation uses. Elapsed time adds I/O stalls, result transfer, and
queueing delay on top of CPU work, so the label is strictly noisier; this
driver trains the same models on both targets and reports how much of the
CPU-time accuracy survives.
"""

from __future__ import annotations

from repro.core.problems import Problem
from repro.evalx.metrics import mse
from repro.evalx.reporting import format_table
from repro.experiments import runner
from repro.experiments.config import ExperimentConfig
from repro.ml.preprocessing import LogLabelTransform
from repro.models.base import TaskKind
from repro.models.baselines import MedianRegressor
from repro.models.cnn_model import TextCNNModel
from repro.models.tfidf_model import TfidfRegressor

__all__ = ["elapsed_time_experiment"]


def _models(config: ExperimentConfig) -> dict:
    scale = config.model_scale
    return {
        "median": MedianRegressor(),
        "ctfidf": TfidfRegressor(
            level="char",
            max_features=scale.tfidf_features,
            max_len=scale.tfidf_max_len,
            epochs=scale.epochs,
        ),
        "ccnn": TextCNNModel(
            level="char",
            task=TaskKind.REGRESSION,
            num_kernels=scale.num_kernels,
            hyper=scale.hyper(),
        ),
    }


def elapsed_time_experiment(config: ExperimentConfig) -> str:
    """CPU time vs elapsed time predictability on SDSS."""
    split = runner.sdss_split(config)
    train, test = split.train, split.test

    rows = []
    for problem in (Problem.CPU_TIME, Problem.ELAPSED_TIME):
        label = problem.label_column
        transform = LogLabelTransform().fit(train.labels(label))
        y_train = transform.transform(train.labels(label))
        y_test = transform.transform(test.labels(label))
        for name, model in _models(config).items():
            model.fit(train.statements(), y_train)
            rows.append(
                [
                    label,
                    name,
                    mse(y_test, model.predict(test.statements())),
                ]
            )
    return format_table(
        ["target", "model", "test MSE (log scale)"],
        rows,
        title=(
            "Extension: elapsed-time prediction vs CPU time "
            "(paper Sec. 8 future work)"
        ),
    )
