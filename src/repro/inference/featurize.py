"""Compiled TF-IDF featurization for inference plans.

:class:`CompiledVectorizer` is the feature stage of a compiled
:class:`~repro.inference.plan.InferencePlan`: a fitted
:class:`~repro.text.tfidf.TfidfVectorizer` whose vocabulary has been
lowered into numpy tables so a whole micro-batch is counted with
vectorized kernels instead of per-gram Python dictionaries.

Char-level vocabularies compile to a *perfect* integer encoding: the
distinct characters appearing in vocabulary grams form an alphabet of
size ``A``; a window of ``n`` characters maps injectively to
``sum(id_k * (A+1)**k)`` (base ``A+1`` positional encoding, id 0 reserved
for out-of-alphabet characters — a vocabulary gram never contains a zero
digit, so windows with unknown characters can never collide with one).
Counting a batch is then: encode all statements into one code-point
array, build the window values per ``n`` with a vectorized polynomial
recurrence, match them against the vocabulary — a direct value → column
gather for gram lengths whose encoding space is small, binary search
(``np.searchsorted``) for the rest — and aggregate ``(row, feature)``
hits with one linear ``np.bincount`` pass (``np.unique`` when the dense
key space would be too large). The result is **exactly** the count
matrix the Python
``Counter`` path produces — no hashing, no collisions — so the compiled
transform is value-identical (bitwise, per element) to
``TfidfVectorizer.transform``.

Word-level vocabularies (and degenerate char alphabets whose encoding
would overflow ``int64``) fall back to the vectorizer's own counting
pass (:meth:`TfidfVectorizer.transform_counts`); the weighting stage is
shared either way, so equivalence is structural.

The weighting stage applies the plan's dtype policy: ``idf`` is cast to
the plan dtype at compile time and the TF ratio is cast *before* the
multiply, so a plan compiled from float64 weights (a freshly fitted
model) and a plan compiled from their float32 stored form (a loaded
artifact) produce bitwise-identical feature matrices — the property the
artifact roundtrip tests assert end to end.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import sparse

from repro.sqlang.normalize import char_text
from repro.text.ngrams import NGRAM_SEP
from repro.text.tfidf import TfidfVectorizer

__all__ = ["CompiledVectorizer"]

#: Window encodings must stay clear of int64 overflow: ``(A+1)**max_n``
#: below this bound leaves headroom for any digit combination.
_MAX_ENCODED = 2**62

#: Give up on the table-lookup path when the alphabet needs a lookup
#: table larger than this many code points (pathological vocabularies).
_MAX_TABLE = 1 << 20

#: Gram lengths whose encoding space fits under this bound get a direct
#: value → feature-column table (one gather per window) instead of a
#: binary search; longer grams keep ``np.searchsorted``.
_MAX_DIRECT = 1 << 22

#: Aggregate (row, feature) hit keys with ``np.bincount`` (linear, no
#: sort) while the dense key space stays below this; larger batches fall
#: back to ``np.unique``.
_MAX_BINCOUNT = 1 << 24


def _char_gram_chars(key: str) -> str:
    """Characters of a char-level vocab key (separators at odd positions)."""
    return key[0::2]


class CompiledVectorizer:
    """A fitted TF-IDF vectorizer lowered to vectorized batch kernels.

    Args:
        vectorizer: Fitted :class:`TfidfVectorizer` to compile.
        dtype: Output dtype policy of the owning plan (float32 default;
            float64 is the exact-equivalence escape hatch).
    """

    def __init__(self, vectorizer: TfidfVectorizer, dtype=np.float32):
        if vectorizer.idf_ is None:
            raise ValueError("cannot compile an unfitted vectorizer")
        self.vectorizer = vectorizer
        self.dtype = np.dtype(dtype)
        # canonical cast: float64 → float32 is deterministic, and casting
        # an already-float32 (loaded) idf is the identity, so plans
        # compiled before save and after load share bitwise-equal weights
        self.idf = np.asarray(vectorizer.idf_, dtype=self.dtype)
        self.num_features = len(vectorizer.vocabulary_)
        self._fast = False
        if vectorizer.level == "char":
            self._compile_char_tables()

    # -- compilation ------------------------------------------------------- #

    def _compile_char_tables(self) -> None:
        vectorizer = self.vectorizer
        vocab = vectorizer.vocabulary_
        alphabet = sorted({c for key in vocab for c in _char_gram_chars(key)})
        if not alphabet:
            return
        base = len(alphabet) + 1
        max_n = vectorizer.max_n
        max_cp = ord(alphabet[-1])
        if base**max_n >= _MAX_ENCODED or max_cp >= _MAX_TABLE:
            return
        table = np.zeros(max_cp + 1, dtype=np.int64)
        for i, ch in enumerate(alphabet):
            table[ord(ch)] = i + 1
        id_of = {ch: i + 1 for i, ch in enumerate(alphabet)}
        # per gram length: sorted window encodings + their feature columns
        by_n: dict[int, tuple[list[int], list[int]]] = {}
        for key, col in vocab.items():
            chars = _char_gram_chars(key)
            value = 0
            for k, ch in enumerate(chars):
                value += id_of[ch] * base**k
            vals, cols = by_n.setdefault(len(chars), ([], []))
            vals.append(value)
            cols.append(col)
        grams_n: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        direct_n: dict[int, np.ndarray] = {}
        for n, (vals, cols) in by_n.items():
            vals_arr = np.asarray(vals, dtype=np.int64)
            order = np.argsort(vals_arr)
            grams_n[n] = (
                vals_arr[order],
                np.asarray(cols, dtype=np.int64)[order],
            )
            space = base**n
            if space <= _MAX_DIRECT:
                # every window value is < base**n, so a flat value →
                # column table turns the vocab probe into one gather
                lut = np.full(space, -1, dtype=np.int32)
                lut[vals_arr] = cols
                direct_n[n] = lut
        self._direct_n = direct_n
        self._base = base
        self._table = table
        self._grams_n = grams_n
        self._min_n = vectorizer.min_n
        self._max_n = max_n
        self._fast = True

    # -- transform --------------------------------------------------------- #

    def transform(self, statements: Sequence[str]) -> sparse.csr_matrix:
        """TF-IDF matrix in the plan dtype, canonically sorted per row."""
        if self._fast:
            indices, indptr, counts, row_totals = self._count_char_batch(
                statements
            )
        else:
            indices, indptr, counts, row_totals = (
                self.vectorizer.transform_counts(statements)
            )
        return self._assemble(len(statements), indices, indptr, counts,
                              row_totals, canonical=self._fast)

    def _assemble(
        self,
        n_rows: int,
        indices: np.ndarray,
        indptr: np.ndarray,
        counts: np.ndarray,
        row_totals: np.ndarray,
        canonical: bool = False,
    ) -> sparse.csr_matrix:
        totals = np.repeat(row_totals, np.diff(indptr))
        tf = counts / totals  # float64, exact integer ratios either path
        if self.dtype == np.float64:
            data = tf * self.idf[indices]
        else:
            # cast the ratio first: float32(tf) * float32(idf) depends only
            # on values that survive the float32 artifact roundtrip
            data = tf.astype(self.dtype) * self.idf[indices]
        matrix = sparse.csr_matrix(
            (data, indices, indptr), shape=(n_rows, self.num_features)
        )
        if canonical:
            # the fast path emits row-major keys with ascending columns,
            # so the CSR is already in canonical order — skip the scan
            matrix.has_sorted_indices = True
        else:
            matrix.sort_indices()
        return matrix

    def _count_char_batch(
        self, statements: Sequence[str]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized equivalent of ``TfidfVectorizer.transform_counts``."""
        vectorizer = self.vectorizer
        texts = [char_text(s, vectorizer.max_len) for s in statements]
        lengths = np.asarray([len(t) for t in texts], dtype=np.int64)
        n_rows = len(texts)
        min_n, max_n = self._min_n, self._max_n
        # row totals: all grams of every length, even out-of-vocab ones
        row_totals = np.zeros(n_rows, dtype=np.int64)
        for n in range(min_n, max_n + 1):
            row_totals += np.maximum(lengths - n + 1, 0)
        row_totals = np.maximum(row_totals, 1).astype(np.float64)

        total = int(lengths.sum())
        if total == 0:
            return (
                np.zeros(0, dtype=np.int32),
                np.zeros(n_rows + 1, dtype=np.int32),
                np.zeros(0, dtype=np.float64),
                row_totals,
            )
        # one flat code-point array for the whole batch ("utf-32-le" emits
        # no BOM, so the buffer is exactly one uint32 per character)
        codes = np.frombuffer(
            "".join(texts).encode("utf-32-le"), dtype="<u4"
        )
        table = self._table
        if int(codes.max()) < len(table):
            ids = table[codes]
        else:
            ids = np.where(
                codes < len(table),
                table[np.minimum(codes, len(table) - 1)],
                0,
            )
        # chars left in the row at each position, for boundary masking of
        # multi-char windows
        starts = np.zeros(n_rows, dtype=np.int64)
        np.cumsum(lengths[:-1], out=starts[1:])
        row_of = np.repeat(np.arange(n_rows, dtype=np.int64), lengths)
        ends = starts + lengths
        room = ends[row_of] - np.arange(total, dtype=np.int64)

        base = self._base
        hit_rows: list[np.ndarray] = []
        hit_cols: list[np.ndarray] = []
        values = ids.copy()  # window encodings, grown one char at a time
        for n in range(1, max_n + 1):
            width = total - (n - 1)
            if width <= 0:
                break
            if n > 1:
                values[:width] += ids[n - 1 :] * base ** (n - 1)
            if n < min_n:
                continue
            grams = self._grams_n.get(n)
            if grams is None:
                continue
            vals_n = values[:width]
            lut = self._direct_n.get(n)
            if lut is not None:
                hit = lut[vals_n]
                matched = hit >= 0
                if n > 1:
                    matched &= room[:width] >= n
                idx = np.flatnonzero(matched)
                if idx.size:
                    hit_rows.append(row_of[idx])
                    hit_cols.append(hit[idx])
                continue
            sorted_vals, cols = grams
            pos = np.searchsorted(sorted_vals, vals_n)
            # clip-take folds the pos == len bound into one comparison:
            # an over-the-end probe compares against the largest vocab
            # value, which a larger-than-it window can never equal
            matched = sorted_vals.take(pos, mode="clip") == vals_n
            matched &= room[:width] >= n
            idx = np.flatnonzero(matched)
            if idx.size:
                hit_rows.append(row_of[idx])
                hit_cols.append(cols[pos[idx]])
        if not hit_rows:
            return (
                np.zeros(0, dtype=np.int32),
                np.zeros(n_rows + 1, dtype=np.int32),
                np.zeros(0, dtype=np.float64),
                row_totals,
            )
        rows = np.concatenate(hit_rows)
        cols = np.concatenate(hit_cols)
        # aggregate duplicate (row, feature) hits into counts; the combined
        # key orders row-major with ascending columns, i.e. canonical CSR
        num_features = self.num_features
        keys = rows * np.int64(num_features) + cols
        key_space = n_rows * num_features
        if key_space <= _MAX_BINCOUNT:
            # linear aggregation, and row/column recovery without int64
            # division: per-row nnz comes from a row-shaped nonzero count,
            # columns from subtracting each row's key base
            dense = np.bincount(keys, minlength=key_space)
            unique_keys = np.flatnonzero(dense)
            counts = dense[unique_keys]
            per_row = np.count_nonzero(
                dense.reshape(n_rows, num_features), axis=1
            )
            indptr = np.zeros(n_rows + 1, dtype=np.int32)
            np.cumsum(per_row, out=indptr[1:])
            row_base = np.repeat(
                np.arange(n_rows, dtype=np.int64) * num_features, per_row
            )
            indices = (unique_keys - row_base).astype(np.int32)
        else:
            unique_keys, counts = np.unique(keys, return_counts=True)
            unique_rows = unique_keys // num_features
            indices = (unique_keys % num_features).astype(np.int32)
            indptr = np.searchsorted(
                unique_rows, np.arange(n_rows + 1, dtype=np.int64)
            ).astype(np.int32)
        return indices, indptr, counts.astype(np.float64), row_totals
