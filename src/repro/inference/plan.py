"""Compiled inference plans: fused cross-head scoring for serving.

A fitted :class:`~repro.core.facilitator.QueryFacilitator` is a zoo of
per-problem heads that, served naively, each re-run featurize → transform
→ predict on every micro-batch. :func:`compile_plan` compiles that zoo
once — at load (or first batch) — into an :class:`InferencePlan`:

- **TF-IDF heads sharing a feature fingerprint fuse into one block.**
  Every head's weight matrix is stacked column-wise into a single
  ``(vocab, Σ num_outputs)`` dense block, so scoring *all* heads is one
  CSR × dense matmul per micro-batch; per-head output slices then get
  softmax/argmax/identity decoding. Featurization itself runs through
  :class:`~repro.inference.featurize.CompiledVectorizer` — the vocabulary
  lowered into vectorized counting kernels.
- **Neural and baseline heads pass through** their normal
  ``predict_into`` path (neural models use the no-grad ``infer`` forward,
  which skips the BPTT caches).

Numerics policy: the plan computes the fused block in float32 by default.
Weights, biases, idf, and the TF ratio are all cast to float32 *at
compile time*, regardless of whether the source model holds float64
(fresh fit) or float32 (loaded from a v3 artifact) — float64→float32
casting is deterministic, so both compile to bitwise-identical plans and
facilitator predictions survive a save/load roundtrip bit-for-bit.
Probabilities and regressions agree with the per-head float64 loop to
~1e-6 relative; label decisions agree exactly away from decision-boundary
ties. ``compile_plan(facilitator, dtype=np.float64)`` is the documented
exact-equivalence escape hatch: a float64 plan is *bitwise* equal to the
per-head loop, because a CSR × dense product computes each output column
independently in the same accumulation order (column slices of the fused
product equal the per-head products exactly) and the softmax code is
shared.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.core.heads import REGRESSION_INSIGHT_ATTRS, ProblemHead
from repro.core.problems import Problem
from repro.inference.featurize import CompiledVectorizer
from repro.ml.logistic import softmax_into
from repro.models.tfidf_model import TfidfClassifier, TfidfRegressor
from repro.obs.spans import span

__all__ = ["InferencePlan", "compile_plan"]


@dataclass
class _Segment:
    """One head's output columns inside a fused score block."""

    head: ProblemHead
    lo: int
    hi: int
    #: precomputed ``str(c)`` keys for the error-probability dict
    class_names: list[str] | None = None


@dataclass
class _FusedBlock:
    """All TF-IDF heads sharing one feature fingerprint, fused."""

    vectorizer: CompiledVectorizer
    weight: np.ndarray  #: (F, total_outputs), plan dtype, C-order
    bias: np.ndarray  #: (total_outputs,), plan dtype
    segments: list[_Segment] = field(default_factory=list)


class InferencePlan:
    """Compiled scoring plan for one facilitator's model zoo.

    Build with :func:`compile_plan`. ``predict_into`` mirrors the
    semantics of the facilitator's per-head loop (same
    :class:`QueryInsights` fields, same obs span stages) over the fused
    execution.
    """

    def __init__(
        self,
        blocks: list[_FusedBlock],
        passthrough: list[ProblemHead],
        dtype: np.dtype,
    ):
        self.blocks = blocks
        self.passthrough = passthrough
        self.dtype = dtype

    @property
    def fused_heads(self) -> int:
        """Number of heads scored by fused matmuls."""
        return sum(len(b.segments) for b in self.blocks)

    def predict_into(self, statements: Sequence[str], results: list) -> None:
        """Write every head's predictions into the aligned results."""
        for block in self.blocks:
            with span("featurize", statements=len(statements)):
                with span("tfidf", statements=len(statements)):
                    features = block.vectorizer.transform(statements)
            with span("predict:fused", heads=len(block.segments)):
                scores = features @ block.weight
                scores += block.bias
            for segment in block.segments:
                head = segment.head
                head_name = head.problem.name.lower()
                with span(f"predict:{head_name}", head=head_name):
                    self._decode(segment, scores, results)
        for head in self.passthrough:
            head_name = head.problem.name.lower()
            with span(f"predict:{head_name}", head=head_name):
                head.predict_into(statements, results, features=None)

    @staticmethod
    def _decode(
        segment: _Segment, scores: np.ndarray, results: list
    ) -> None:
        head = segment.head
        block = scores[:, segment.lo : segment.hi]
        if head.problem.is_classification:
            assert head.encoder is not None
            if head.problem is Problem.ERROR_CLASSIFICATION:
                probs = softmax_into(np.ascontiguousarray(block))
                names = head.encoder.inverse(probs.argmax(axis=1))
                class_names = segment.class_names or []
                # one C-level tolist beats n_rows × n_classes float() calls
                rows = probs.tolist()
                for i, result in enumerate(results):
                    result.error_class = str(names[i])
                    result.error_probabilities = dict(
                        zip(class_names, rows[i])
                    )
            else:
                names = head.encoder.inverse(block.argmax(axis=1))
                for i, result in enumerate(results):
                    result.session_class = str(names[i])
            return
        assert head.transform is not None
        pred = np.maximum(
            head.transform.inverse(block[:, 0]), 0.0
        ).tolist()
        attr = REGRESSION_INSIGHT_ATTRS[head.problem]
        for i, result in enumerate(results):
            setattr(result, attr, pred[i])


def _fusable(head: ProblemHead) -> bool:
    model = head.model
    if isinstance(model, TfidfClassifier):
        return model.classifier.weight is not None
    if isinstance(model, TfidfRegressor):
        return model.regressor.weight is not None
    return False


def compile_plan(facilitator, dtype=np.float32) -> InferencePlan:
    """Compile a fitted facilitator's heads into an :class:`InferencePlan`.

    Args:
        facilitator: A fitted ``QueryFacilitator`` (duck-typed: anything
            with a ``heads`` mapping of :class:`ProblemHead`).
        dtype: Numerics policy for the fused TF-IDF blocks. ``np.float32``
            (default) halves memory traffic and matches stored artifacts;
            ``np.float64`` is the exact escape hatch — bitwise equal to
            the per-head loop.
    """
    dtype = np.dtype(dtype)
    groups: dict[bytes, list[ProblemHead]] = {}
    passthrough: list[ProblemHead] = []
    for head in facilitator.heads.values():
        fingerprint = (
            head.model.feature_fingerprint() if _fusable(head) else None
        )
        if fingerprint is None:
            passthrough.append(head)
        else:
            groups.setdefault(fingerprint, []).append(head)
    blocks: list[_FusedBlock] = []
    for heads in groups.values():
        vectorizer = CompiledVectorizer(
            heads[0].model.vectorizer, dtype=dtype
        )
        columns: list[np.ndarray] = []
        biases: list[np.ndarray] = []
        segments: list[_Segment] = []
        offset = 0
        for head in heads:
            if isinstance(head.model, TfidfClassifier):
                w = head.model.classifier.weight
                b = head.model.classifier.bias
            else:
                w = head.model.regressor.weight[:, None]
                b = np.asarray([head.model.regressor.bias])
            columns.append(np.asarray(w, dtype=dtype))
            biases.append(np.asarray(b, dtype=dtype))
            segment = _Segment(head, offset, offset + w.shape[1])
            if head.encoder is not None:
                segment.class_names = [
                    str(c) for c in head.encoder.classes_
                ]
            segments.append(segment)
            offset += w.shape[1]
        blocks.append(
            _FusedBlock(
                vectorizer=vectorizer,
                weight=np.ascontiguousarray(np.concatenate(columns, axis=1)),
                bias=np.concatenate(biases),
                segments=segments,
            )
        )
    return InferencePlan(blocks, passthrough, dtype)
