"""Compiled inference plans (serving-side execution layer).

Compiles a fitted facilitator's per-problem model zoo into a fused
scoring plan: one CSR × dense matmul scores every TF-IDF head per
micro-batch, featurization runs through vectorized counting kernels, and
neural heads take the no-grad ``infer`` forward. See
:mod:`repro.inference.plan` for the numerics policy (float32 by default,
float64 as the exact-equivalence escape hatch).
"""

from repro.inference.featurize import CompiledVectorizer
from repro.inference.plan import InferencePlan, compile_plan

__all__ = ["CompiledVectorizer", "InferencePlan", "compile_plan"]
