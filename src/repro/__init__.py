"""repro — reproduction of "Facilitating SQL Query Composition and Analysis".

Zolaktaf, Milani, Pottinger (SIGMOD 2020, arXiv:2002.09091).

The library predicts properties of a SQL query *before execution* — error
class, CPU time, answer size, and the session class of the client that wrote
it — using only the raw query text and a historical query workload. No access
to the database instance, its statistics, or execution plans is required.

Public entry points:

- :class:`repro.core.QueryFacilitator` — train on a workload, then ask for
  pre-execution insights about new queries.
- :mod:`repro.workloads` — synthetic SDSS / SQLShare workload generators
  (substitutes for the proprietary logs; see DESIGN.md).
- :mod:`repro.models` — the paper's model zoo (mfreq, median, opt,
  ctfidf/wtfidf, ccnn/wcnn, clstm/wlstm).
- :mod:`repro.experiments` — drivers that regenerate every table and figure
  of the paper's evaluation section.
- :mod:`repro.serving` — run a fitted facilitator as a micro-batching
  service (``FacilitatorService``) or JSON/HTTP endpoint (``repro serve``).
"""

__version__ = "1.0.0"

_LAZY_EXPORTS = {
    "QueryFacilitator": ("repro.core.facilitator", "QueryFacilitator"),
    "QueryInsights": ("repro.core.facilitator", "QueryInsights"),
    "ArtifactFormatError": ("repro.models.serialize", "ArtifactFormatError"),
    "Problem": ("repro.core.problems", "Problem"),
    "Setting": ("repro.core.problems", "Setting"),
    "TaskType": ("repro.core.problems", "TaskType"),
    "FacilitatorService": ("repro.serving", "FacilitatorService"),
}


def __getattr__(name: str):
    """Lazily resolve the public API so `import repro` stays cheap."""
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__all__ = [
    "QueryFacilitator",
    "QueryInsights",
    "ArtifactFormatError",
    "Problem",
    "Setting",
    "TaskType",
    "FacilitatorService",
    "__version__",
]
