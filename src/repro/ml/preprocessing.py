"""Label preprocessing: the paper's log transform and a label encoder.

Section 4.4.1: regression labels (answer size, CPU time) are heavy-tailed,
so models are trained on ``y' = ln(y + eps - min(y))`` with ``eps = 1``,
making the transform non-negative and defined at the minimum.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["LogLabelTransform", "LabelEncoder"]


class LogLabelTransform:
    """Invertible log transform ``y' = ln(y + eps - min_y)``.

    ``min_y`` is learned from the training labels; ``eps > 0`` keeps the
    logarithm's argument positive at the minimum (paper uses 1).
    """

    def __init__(self, eps: float = 1.0):
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = eps
        self.min_y: float | None = None

    def fit(self, y: np.ndarray) -> "LogLabelTransform":
        y = np.asarray(y, dtype=np.float64)
        if y.size == 0:
            raise ValueError("cannot fit on empty labels")
        self.min_y = float(y.min())
        return self

    def transform(self, y: np.ndarray) -> np.ndarray:
        if self.min_y is None:
            raise RuntimeError("LogLabelTransform must be fitted first")
        y = np.asarray(y, dtype=np.float64)
        # values below the training minimum (possible at test time) are
        # clamped so the log stays defined
        shifted = np.maximum(y - self.min_y, 0.0) + self.eps
        return np.log(shifted)

    def fit_transform(self, y: np.ndarray) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse(self, y_log: np.ndarray) -> np.ndarray:
        """Map transformed values back to the original label scale."""
        if self.min_y is None:
            raise RuntimeError("LogLabelTransform must be fitted first")
        return np.exp(np.asarray(y_log, dtype=np.float64)) - self.eps + self.min_y


class LabelEncoder:
    """String/class labels ↔ contiguous integer ids (stable, sorted)."""

    def __init__(self):
        self.classes_: list = []
        self._index: dict = {}

    def fit(self, labels: Sequence) -> "LabelEncoder":
        self.classes_ = sorted(set(labels), key=str)
        self._index = {c: i for i, c in enumerate(self.classes_)}
        return self

    @classmethod
    def from_classes(cls, classes: Sequence) -> "LabelEncoder":
        """Rebuild an encoder from a stored vocabulary, preserving order.

        Artifact loading uses this instead of :meth:`fit`, which would
        re-sort and could reorder ids relative to the trained model.
        """
        encoder = cls()
        encoder.classes_ = list(classes)
        encoder._index = {c: i for i, c in enumerate(encoder.classes_)}
        return encoder

    @property
    def num_classes(self) -> int:
        return len(self.classes_)

    def transform(self, labels: Sequence) -> np.ndarray:
        try:
            return np.asarray([self._index[label] for label in labels])
        except KeyError as exc:
            raise ValueError(f"unseen label: {exc.args[0]!r}") from exc

    def fit_transform(self, labels: Sequence) -> np.ndarray:
        return self.fit(labels).transform(labels)

    def inverse(self, ids: Sequence[int]) -> list:
        return [self.classes_[int(i)] for i in ids]
