"""Ordinary least squares — the prediction stage of the ``opt`` baseline.

Following [2, 14, 39], the ``opt`` model fits a linear regression from the
query optimizer's cost estimate to the (log-transformed) CPU time.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LeastSquaresRegression"]


class LeastSquaresRegression:
    """Closed-form OLS on dense (low-dimensional) features."""

    def __init__(self):
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LeastSquaresRegression":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[0] == 1 and x.shape[1] > 1 and np.ndim(y) == 1 and len(y) > 1:
            x = x.T  # accept 1-D feature vectors
        y = np.asarray(y, dtype=np.float64)
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x rows ({x.shape[0]}) must match y length ({y.shape[0]})"
            )
        design = np.column_stack([x, np.ones(x.shape[0])])
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        self.coef_ = solution[:-1]
        self.intercept_ = float(solution[-1])
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("LeastSquaresRegression must be fitted first")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.coef_.shape[0]:
            x = x.T
        return x @ self.coef_ + self.intercept_
