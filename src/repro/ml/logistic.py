"""Multinomial logistic regression on sparse feature matrices.

The prediction stage of ``ctfidf``/``wtfidf`` for classification problems
(Section 5.1): unweighted cross-entropy loss (Section 4.4.1), trained with
mini-batch Adam, optional L2 regularization.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.ml.sparse_ops import iter_csr_row_blocks
from repro.nn.losses import log_softmax, softmax

__all__ = ["LogisticRegression", "softmax_into"]


def softmax_into(scores: np.ndarray) -> np.ndarray:
    """Row-wise softmax computed in place over ``scores``.

    Identical operation sequence to :func:`repro.nn.losses.softmax`
    (max-shift, exp, normalize) so the two are value-equal — but the
    shifted/exponentiated intermediates reuse the input buffer instead of
    allocating fresh ``(n, C)`` temporaries per call. The serving-path
    primitive behind :meth:`LogisticRegression.predict_proba_into` and
    the fused inference plan's classification decode.
    """
    peak = scores.max(axis=-1, keepdims=True)
    np.subtract(scores, peak, out=scores)
    np.exp(scores, out=scores)
    scores /= scores.sum(axis=-1, keepdims=True)
    return scores


class LogisticRegression:
    """Softmax classifier ``p = softmax(X W + b)``.

    Args:
        num_classes: Number of output classes.
        lr: Adam learning rate.
        l2: L2 penalty on the weight matrix (not the bias).
        epochs: Passes over the training data.
        batch_size: Mini-batch size.
        seed: Shuffling seed for reproducibility.
    """

    def __init__(
        self,
        num_classes: int,
        lr: float = 0.05,
        l2: float = 1e-6,
        epochs: int = 10,
        batch_size: int = 64,
        seed: int = 0,
    ):
        if num_classes < 2:
            raise ValueError("need at least two classes")
        self.num_classes = num_classes
        self.lr = lr
        self.l2 = l2
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.weight: np.ndarray | None = None
        self.bias: np.ndarray | None = None

    def fit(self, x: sparse.spmatrix, y: np.ndarray) -> "LogisticRegression":
        """Train on sparse features ``x`` and integer labels ``y``.

        Converts to CSR once, re-materializes the permuted matrix once
        per epoch so every mini-batch is a cheap contiguous row slice
        (instead of a fancy-indexed gather per step), and runs the Adam
        update through preallocated buffers — no per-step ``(F, C)``
        temporaries beyond the one sparse-matmul product. The update
        arithmetic keeps the reference expression order, so fitted
        weights are unchanged.
        """
        x = sparse.csr_matrix(x)
        y = np.asarray(y, dtype=np.int64)
        n, num_features = x.shape
        if n == 0:
            raise ValueError("cannot fit on empty data")
        rng = np.random.default_rng(self.seed)
        w = np.zeros((num_features, self.num_classes))
        b = np.zeros(self.num_classes)
        # Adam state
        m_w = np.zeros_like(w)
        v_w = np.zeros_like(w)
        m_b = np.zeros_like(b)
        v_b = np.zeros_like(b)
        scratch = np.empty_like(w)
        denom = np.empty_like(w)
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        rows = np.arange(min(self.batch_size, n))
        t = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            x_perm = x[order]  # one gather per epoch, then zero-copy blocks
            y_perm = y[order]
            for start, xb in iter_csr_row_blocks(x_perm, self.batch_size):
                yb = y_perm[start : start + self.batch_size]
                logits = xb @ w + b
                probs = softmax(logits)
                probs[rows[: len(yb)], yb] -= 1.0
                probs /= len(yb)
                grad_w = xb.T @ probs  # the one dense (F, C) product
                np.multiply(w, self.l2, out=scratch)
                grad_w += scratch
                grad_b = probs.sum(axis=0)
                t += 1
                bias1 = 1.0 - beta1**t
                bias2 = 1.0 - beta2**t
                m_w *= beta1
                np.multiply(grad_w, 1 - beta1, out=scratch)
                m_w += scratch
                v_w *= beta2
                np.multiply(grad_w, grad_w, out=scratch)
                scratch *= 1 - beta2
                v_w += scratch
                m_b = beta1 * m_b + (1 - beta1) * grad_b
                v_b = beta2 * v_b + (1 - beta2) * grad_b**2
                np.divide(v_w, bias2, out=denom)
                np.sqrt(denom, out=denom)
                denom += eps
                np.divide(m_w, bias1, out=scratch)
                scratch *= self.lr
                scratch /= denom
                w -= scratch
                b -= self.lr * (m_b / bias1) / (np.sqrt(v_b / bias2) + eps)
        self.weight = w
        self.bias = b
        return self

    def _require_fitted(self) -> tuple[np.ndarray, np.ndarray]:
        if self.weight is None or self.bias is None:
            raise RuntimeError("LogisticRegression must be fitted first")
        return self.weight, self.bias

    def decision_function(self, x: sparse.spmatrix) -> np.ndarray:
        """Raw logits ``X W + b``."""
        w, b = self._require_fitted()
        return sparse.csr_matrix(x) @ w + b

    def predict_proba(self, x: sparse.spmatrix) -> np.ndarray:
        """Class probabilities (in-place softmax over the logits buffer)."""
        return softmax_into(self.decision_function(x))

    def predict_proba_into(
        self, x: sparse.spmatrix, out: np.ndarray
    ) -> np.ndarray:
        """Write class probabilities into the preallocated ``out`` buffer.

        ``out`` must be ``(n_rows, num_classes)`` float; beyond the one
        unavoidable sparse-matmul product, no per-call temporaries are
        allocated — the softmax runs in place on ``out``.
        """
        w, b = self._require_fitted()
        np.add(sparse.csr_matrix(x) @ w, b, out=out)
        return softmax_into(out)

    def predict_log_proba(self, x: sparse.spmatrix) -> np.ndarray:
        """Log class probabilities."""
        return log_softmax(self.decision_function(x))

    def predict(self, x: sparse.spmatrix) -> np.ndarray:
        """Most likely class per row."""
        return self.decision_function(x).argmax(axis=1)

    @property
    def num_parameters(self) -> int:
        """Scalar parameter count (the paper's ``p`` column)."""
        w, b = self._require_fitted()
        return int(w.size + b.size)
