"""Multinomial logistic regression on sparse feature matrices.

The prediction stage of ``ctfidf``/``wtfidf`` for classification problems
(Section 5.1): unweighted cross-entropy loss (Section 4.4.1), trained with
mini-batch Adam, optional L2 regularization.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.nn.losses import log_softmax, softmax

__all__ = ["LogisticRegression"]


class LogisticRegression:
    """Softmax classifier ``p = softmax(X W + b)``.

    Args:
        num_classes: Number of output classes.
        lr: Adam learning rate.
        l2: L2 penalty on the weight matrix (not the bias).
        epochs: Passes over the training data.
        batch_size: Mini-batch size.
        seed: Shuffling seed for reproducibility.
    """

    def __init__(
        self,
        num_classes: int,
        lr: float = 0.05,
        l2: float = 1e-6,
        epochs: int = 10,
        batch_size: int = 64,
        seed: int = 0,
    ):
        if num_classes < 2:
            raise ValueError("need at least two classes")
        self.num_classes = num_classes
        self.lr = lr
        self.l2 = l2
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.weight: np.ndarray | None = None
        self.bias: np.ndarray | None = None

    def fit(self, x: sparse.spmatrix, y: np.ndarray) -> "LogisticRegression":
        """Train on sparse features ``x`` and integer labels ``y``."""
        x = sparse.csr_matrix(x)
        y = np.asarray(y, dtype=np.int64)
        n, num_features = x.shape
        if n == 0:
            raise ValueError("cannot fit on empty data")
        rng = np.random.default_rng(self.seed)
        w = np.zeros((num_features, self.num_classes))
        b = np.zeros(self.num_classes)
        # Adam state
        m_w = np.zeros_like(w)
        v_w = np.zeros_like(w)
        m_b = np.zeros_like(b)
        v_b = np.zeros_like(b)
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        t = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                xb = x[batch]
                yb = y[batch]
                logits = xb @ w + b
                probs = softmax(logits)
                probs[np.arange(len(yb)), yb] -= 1.0
                probs /= len(yb)
                grad_w = xb.T @ probs + self.l2 * w
                grad_b = probs.sum(axis=0)
                t += 1
                bias1 = 1.0 - beta1**t
                bias2 = 1.0 - beta2**t
                m_w = beta1 * m_w + (1 - beta1) * grad_w
                v_w = beta2 * v_w + (1 - beta2) * grad_w**2
                m_b = beta1 * m_b + (1 - beta1) * grad_b
                v_b = beta2 * v_b + (1 - beta2) * grad_b**2
                w -= self.lr * (m_w / bias1) / (np.sqrt(v_w / bias2) + eps)
                b -= self.lr * (m_b / bias1) / (np.sqrt(v_b / bias2) + eps)
        self.weight = w
        self.bias = b
        return self

    def _require_fitted(self) -> tuple[np.ndarray, np.ndarray]:
        if self.weight is None or self.bias is None:
            raise RuntimeError("LogisticRegression must be fitted first")
        return self.weight, self.bias

    def decision_function(self, x: sparse.spmatrix) -> np.ndarray:
        """Raw logits ``X W + b``."""
        w, b = self._require_fitted()
        return sparse.csr_matrix(x) @ w + b

    def predict_proba(self, x: sparse.spmatrix) -> np.ndarray:
        """Class probabilities."""
        return softmax(self.decision_function(x))

    def predict_log_proba(self, x: sparse.spmatrix) -> np.ndarray:
        """Log class probabilities."""
        return log_softmax(self.decision_function(x))

    def predict(self, x: sparse.spmatrix) -> np.ndarray:
        """Most likely class per row."""
        return self.decision_function(x).argmax(axis=1)

    @property
    def num_parameters(self) -> int:
        """Scalar parameter count (the paper's ``p`` column)."""
        w, b = self._require_fitted()
        return int(w.size + b.size)
