"""Huber-loss linear regression on sparse feature matrices.

The prediction stage of ``ctfidf``/``wtfidf`` for regression problems
(Section 5.1): a linear model trained with the Huber loss of Eq. A.1 on
log-transformed labels, robust to the workloads' outliers.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.ml.sparse_ops import iter_csr_row_blocks

__all__ = ["HuberLinearRegression"]


class HuberLinearRegression:
    """Linear regressor ``y = X w + b`` trained with Huber loss via Adam.

    Args:
        delta: Huber transition point between quadratic and linear regime.
        lr: Adam learning rate.
        l2: L2 penalty on weights.
        epochs: Passes over the training data.
        batch_size: Mini-batch size.
        seed: Shuffling seed.
    """

    def __init__(
        self,
        delta: float = 1.0,
        lr: float = 0.05,
        l2: float = 1e-6,
        epochs: int = 10,
        batch_size: int = 64,
        seed: int = 0,
    ):
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta
        self.lr = lr
        self.l2 = l2
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.weight: np.ndarray | None = None
        self.bias: float = 0.0

    def fit(self, x: sparse.spmatrix, y: np.ndarray) -> "HuberLinearRegression":
        """Train with mini-batch Adam on the Huber objective.

        Same batching/update discipline as
        :class:`~repro.ml.logistic.LogisticRegression`: CSR once, one
        permuted materialization per epoch so batches are contiguous row
        slices, Adam through preallocated buffers with the reference
        expression order (fitted weights unchanged).
        """
        x = sparse.csr_matrix(x)
        y = np.asarray(y, dtype=np.float64)
        n, num_features = x.shape
        if n == 0:
            raise ValueError("cannot fit on empty data")
        rng = np.random.default_rng(self.seed)
        w = np.zeros(num_features)
        b = float(np.median(y))  # warm-start at the median
        m_w = np.zeros_like(w)
        v_w = np.zeros_like(w)
        m_b = 0.0
        v_b = 0.0
        scratch = np.empty_like(w)
        denom = np.empty_like(w)
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        t = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            x_perm = x[order]  # one gather per epoch, then zero-copy blocks
            y_perm = y[order]
            for start, xb in iter_csr_row_blocks(x_perm, self.batch_size):
                yb = y_perm[start : start + self.batch_size]
                pred = xb @ w + b
                residual = pred - yb
                grad_out = np.where(
                    np.abs(residual) <= self.delta,
                    residual,
                    self.delta * np.sign(residual),
                ) / len(yb)
                grad_w = xb.T @ grad_out
                np.multiply(w, self.l2, out=scratch)
                grad_w += scratch
                grad_b = float(grad_out.sum())
                t += 1
                bias1 = 1.0 - beta1**t
                bias2 = 1.0 - beta2**t
                m_w *= beta1
                np.multiply(grad_w, 1 - beta1, out=scratch)
                m_w += scratch
                v_w *= beta2
                np.multiply(grad_w, grad_w, out=scratch)
                scratch *= 1 - beta2
                v_w += scratch
                m_b = beta1 * m_b + (1 - beta1) * grad_b
                v_b = beta2 * v_b + (1 - beta2) * grad_b**2
                np.divide(v_w, bias2, out=denom)
                np.sqrt(denom, out=denom)
                denom += eps
                np.divide(m_w, bias1, out=scratch)
                scratch *= self.lr
                scratch /= denom
                w -= scratch
                b -= self.lr * (m_b / bias1) / (np.sqrt(v_b / bias2) + eps)
        self.weight = w
        self.bias = b
        return self

    def predict(self, x: sparse.spmatrix) -> np.ndarray:
        if self.weight is None:
            raise RuntimeError("HuberLinearRegression must be fitted first")
        return sparse.csr_matrix(x) @ self.weight + self.bias

    @property
    def num_parameters(self) -> int:
        if self.weight is None:
            raise RuntimeError("HuberLinearRegression must be fitted first")
        return int(self.weight.size + 1)
