"""Huber-loss linear regression on sparse feature matrices.

The prediction stage of ``ctfidf``/``wtfidf`` for regression problems
(Section 5.1): a linear model trained with the Huber loss of Eq. A.1 on
log-transformed labels, robust to the workloads' outliers.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

__all__ = ["HuberLinearRegression"]


class HuberLinearRegression:
    """Linear regressor ``y = X w + b`` trained with Huber loss via Adam.

    Args:
        delta: Huber transition point between quadratic and linear regime.
        lr: Adam learning rate.
        l2: L2 penalty on weights.
        epochs: Passes over the training data.
        batch_size: Mini-batch size.
        seed: Shuffling seed.
    """

    def __init__(
        self,
        delta: float = 1.0,
        lr: float = 0.05,
        l2: float = 1e-6,
        epochs: int = 10,
        batch_size: int = 64,
        seed: int = 0,
    ):
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta
        self.lr = lr
        self.l2 = l2
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.weight: np.ndarray | None = None
        self.bias: float = 0.0

    def fit(self, x: sparse.spmatrix, y: np.ndarray) -> "HuberLinearRegression":
        x = sparse.csr_matrix(x)
        y = np.asarray(y, dtype=np.float64)
        n, num_features = x.shape
        if n == 0:
            raise ValueError("cannot fit on empty data")
        rng = np.random.default_rng(self.seed)
        w = np.zeros(num_features)
        b = float(np.median(y))  # warm-start at the median
        m_w = np.zeros_like(w)
        v_w = np.zeros_like(w)
        m_b = 0.0
        v_b = 0.0
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        t = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                xb = x[batch]
                yb = y[batch]
                pred = xb @ w + b
                residual = pred - yb
                grad_out = np.where(
                    np.abs(residual) <= self.delta,
                    residual,
                    self.delta * np.sign(residual),
                ) / len(yb)
                grad_w = xb.T @ grad_out + self.l2 * w
                grad_b = float(grad_out.sum())
                t += 1
                bias1 = 1.0 - beta1**t
                bias2 = 1.0 - beta2**t
                m_w = beta1 * m_w + (1 - beta1) * grad_w
                v_w = beta2 * v_w + (1 - beta2) * grad_w**2
                m_b = beta1 * m_b + (1 - beta1) * grad_b
                v_b = beta2 * v_b + (1 - beta2) * grad_b**2
                w -= self.lr * (m_w / bias1) / (np.sqrt(v_w / bias2) + eps)
                b -= self.lr * (m_b / bias1) / (np.sqrt(v_b / bias2) + eps)
        self.weight = w
        self.bias = b
        return self

    def predict(self, x: sparse.spmatrix) -> np.ndarray:
        if self.weight is None:
            raise RuntimeError("HuberLinearRegression must be fitted first")
        return sparse.csr_matrix(x) @ self.weight + self.bias

    @property
    def num_parameters(self) -> int:
        if self.weight is None:
            raise RuntimeError("HuberLinearRegression must be fitted first")
        return int(self.weight.size + 1)
