"""Low-overhead CSR helpers for the mini-batch sparse trainers.

``scipy``'s ``__getitem__`` paths (both fancy row gathers and row
slices) re-validate and re-allocate on every call, which dominates
mini-batch epochs where each batch matrix is tiny. A contiguous row
block of a CSR matrix is already addressable as three array slices, so
:func:`csr_row_block` rebuilds the batch through the raw
``(data, indices, indptr)`` constructor with ``copy=False`` — no data
movement, no validation beyond the cheap shape bookkeeping.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np
from scipy import sparse

__all__ = ["csr_row_block", "iter_csr_row_blocks"]


def csr_row_block(
    x: sparse.csr_matrix, start: int, stop: int
) -> sparse.csr_matrix:
    """Rows ``[start, stop)`` of a CSR matrix as zero-copy array slices.

    The result shares ``data``/``indices`` memory with ``x``; callers
    must treat it as read-only.
    """
    stop = min(stop, x.shape[0])
    indptr = x.indptr
    p0 = indptr[start]
    return sparse.csr_matrix(
        (
            x.data[p0 : indptr[stop]],
            x.indices[p0 : indptr[stop]],
            indptr[start : stop + 1] - p0,
        ),
        shape=(stop - start, x.shape[1]),
        copy=False,
    )


def iter_csr_row_blocks(
    x: sparse.csr_matrix, batch_size: int
) -> Iterator[tuple[int, sparse.csr_matrix]]:
    """Yield ``(start, block)`` for consecutive row blocks of ``x``."""
    n = x.shape[0]
    for start in range(0, n, batch_size):
        yield start, csr_row_block(x, start, start + batch_size)
