"""Traditional machine-learning substrate (scikit-learn replacement).

Implements the prediction stage of the paper's traditional models
(Section 5.1): multinomial logistic regression for classification and
Huber-loss linear regression for regression, both operating on sparse
TF-IDF matrices, plus ordinary least squares for the ``opt`` baseline
and the label preprocessing of Section 4.4.1.
"""

from repro.ml.logistic import LogisticRegression
from repro.ml.huber import HuberLinearRegression
from repro.ml.linear import LeastSquaresRegression
from repro.ml.preprocessing import LabelEncoder, LogLabelTransform

__all__ = [
    "LogisticRegression",
    "HuberLinearRegression",
    "LeastSquaresRegression",
    "LabelEncoder",
    "LogLabelTransform",
]
