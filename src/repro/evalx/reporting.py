"""Plain-text table formatting shaped like the paper's tables."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_float"]


def format_float(value: float, digits: int = 4) -> str:
    """Compact float: fixed-point for moderate values, scientific for big."""
    if value != value:  # NaN
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1e6 or abs(value) < 10 ** (-digits):
        return f"{value:.2e}"
    return f"{value:.{digits}f}".rstrip("0").rstrip(".")


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: Column names.
        rows: Cell values; floats are formatted, everything else is str()d.
        title: Optional caption printed above the table.
    """
    rendered: list[list[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells: list[str] = []
        for value in row:
            if isinstance(value, float):
                cells.append(format_float(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(r[i]) for r in rendered) for i in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    for idx, cells in enumerate(rendered):
        line = " | ".join(c.ljust(w) for c, w in zip(cells, widths))
        lines.append(line.rstrip())
        if idx == 0:
            lines.append(separator)
    return "\n".join(lines)
