"""Performance metrics (Section 6.1).

Classification: accuracy, per-class F-measure, test-average cross-entropy.
Regression: test-average Huber loss, MSE on log-transformed labels, and
qerror percentiles (the factor by which an estimate differs from the truth,
``max(y/ŷ, ŷ/y)`` [37]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "accuracy",
    "per_class_f_measure",
    "cross_entropy_loss",
    "huber_loss",
    "mse",
    "qerror",
    "qerror_percentiles",
    "ClassificationReport",
    "RegressionReport",
    "classification_report",
    "regression_report",
]


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch between y_true and y_pred")
    if y_true.size == 0:
        return 0.0
    return float((y_true == y_pred).mean())


def per_class_f_measure(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: int
) -> np.ndarray:
    """F1 per class: ``F_C = 2·P_C·R_C / (P_C + R_C)``, 0 when undefined."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    scores = np.zeros(num_classes)
    for cls in range(num_classes):
        true_pos = int(((y_pred == cls) & (y_true == cls)).sum())
        pred_pos = int((y_pred == cls).sum())
        actual_pos = int((y_true == cls).sum())
        if pred_pos == 0 or actual_pos == 0 or true_pos == 0:
            scores[cls] = 0.0
            continue
        precision = true_pos / pred_pos
        recall = true_pos / actual_pos
        scores[cls] = 2 * precision * recall / (precision + recall)
    return scores


def cross_entropy_loss(probs: np.ndarray, y_true: np.ndarray) -> float:
    """Mean negative log-probability of the true class (Eq. A.3)."""
    probs = np.asarray(probs, dtype=np.float64)
    y_true = np.asarray(y_true, dtype=np.int64)
    if probs.ndim != 2 or probs.shape[0] != y_true.shape[0]:
        raise ValueError("probs must be (n, classes) aligned with y_true")
    picked = np.clip(probs[np.arange(len(y_true)), y_true], 1e-12, 1.0)
    return float(-np.log(picked).mean())


def huber_loss(
    y_true: np.ndarray, y_pred: np.ndarray, delta: float = 1.0
) -> float:
    """Mean Huber loss (Eq. A.1/A.2)."""
    residual = np.asarray(y_pred, dtype=np.float64) - np.asarray(
        y_true, dtype=np.float64
    )
    abs_r = np.abs(residual)
    loss = np.where(
        abs_r <= delta, 0.5 * residual**2, delta * (abs_r - 0.5 * delta)
    )
    return float(loss.mean()) if loss.size else 0.0


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error (on log-transformed labels, Section 6.1)."""
    diff = np.asarray(y_pred, dtype=np.float64) - np.asarray(
        y_true, dtype=np.float64
    )
    return float((diff**2).mean()) if diff.size else 0.0


def qerror(
    y_true: np.ndarray, y_pred: np.ndarray, floor: float = 1.0
) -> np.ndarray:
    """Per-query qerror ``max(y/ŷ, ŷ/y)`` on the original label scale.

    Both sides are clamped to ``floor`` (default 1) so zero/negative labels
    — absent answers, sub-second CPU times — do not blow the ratio up; the
    minimum attainable qerror is 1 (a perfect estimate).
    """
    y_true = np.maximum(np.asarray(y_true, dtype=np.float64), floor)
    y_pred = np.maximum(np.asarray(y_pred, dtype=np.float64), floor)
    return np.maximum(y_true / y_pred, y_pred / y_true)


def qerror_percentiles(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    percentiles: tuple[float, ...] = (50, 75, 80, 85, 90, 95),
) -> dict[float, float]:
    """qerror at the given percentiles (Tables 3, 6, 7)."""
    errors = qerror(y_true, y_pred)
    if errors.size == 0:
        return {p: float("nan") for p in percentiles}
    return {
        p: float(np.percentile(errors, p)) for p in percentiles
    }


@dataclass
class ClassificationReport:
    """All classification metrics for one (model, problem) pair."""

    model: str
    accuracy: float
    loss: float
    f_per_class: dict[str, float] = field(default_factory=dict)
    vocab_size: int = 0
    num_parameters: int = 0


@dataclass
class RegressionReport:
    """All regression metrics for one (model, problem) pair."""

    model: str
    loss: float  # test-average Huber loss on log labels
    mse: float
    qerror_percentiles: dict[float, float] = field(default_factory=dict)
    vocab_size: int = 0
    num_parameters: int = 0


def classification_report(
    model_name: str,
    y_true: np.ndarray,
    y_pred: np.ndarray,
    probs: np.ndarray,
    class_names: list[str],
    vocab_size: int = 0,
    num_parameters: int = 0,
) -> ClassificationReport:
    """Bundle the Table 2/4 classification columns for one model."""
    scores = per_class_f_measure(y_true, y_pred, len(class_names))
    return ClassificationReport(
        model=model_name,
        accuracy=accuracy(y_true, y_pred),
        loss=cross_entropy_loss(probs, y_true),
        f_per_class={name: float(scores[i]) for i, name in enumerate(class_names)},
        vocab_size=vocab_size,
        num_parameters=num_parameters,
    )


def regression_report(
    model_name: str,
    y_true_log: np.ndarray,
    y_pred_log: np.ndarray,
    y_true_raw: np.ndarray,
    y_pred_raw: np.ndarray,
    percentiles: tuple[float, ...] = (50, 75, 80, 85, 90, 95),
    vocab_size: int = 0,
    num_parameters: int = 0,
) -> RegressionReport:
    """Bundle the Table 2/5 regression columns plus qerror percentiles."""
    return RegressionReport(
        model=model_name,
        loss=huber_loss(y_true_log, y_pred_log),
        mse=mse(y_true_log, y_pred_log),
        qerror_percentiles=qerror_percentiles(
            y_true_raw, y_pred_raw, percentiles
        ),
        vocab_size=vocab_size,
        num_parameters=num_parameters,
    )
