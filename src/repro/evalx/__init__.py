"""Evaluation metrics and paper-style reporting (Section 6.1)."""

from repro.evalx.metrics import (
    ClassificationReport,
    RegressionReport,
    accuracy,
    classification_report,
    cross_entropy_loss,
    huber_loss,
    mse,
    per_class_f_measure,
    qerror,
    qerror_percentiles,
    regression_report,
)
from repro.evalx.reporting import format_table

__all__ = [
    "accuracy",
    "per_class_f_measure",
    "cross_entropy_loss",
    "huber_loss",
    "mse",
    "qerror",
    "qerror_percentiles",
    "classification_report",
    "regression_report",
    "ClassificationReport",
    "RegressionReport",
    "format_table",
]
