"""Worker supervision: health checks, restart backoff, artifact watching.

The :class:`Supervisor` is deliberately mechanism-free: it decides *when*
a worker is unhealthy (a dead process, or a batch running past its
deadline — the hung-worker signal) and *when* a replacement may start
(exponential backoff with jitter, so a crash-looping shard cannot hot-loop
the fork path), but every side effect — killing a process, re-routing its
in-flight work, spawning the replacement — goes through the ``fleet``
object the sharded service hands it. That split keeps restart timing
testable with a fake clock and a stub fleet, no processes involved — and
makes the protocol transport-agnostic: the same supervisor drives local
worker processes (``ShardedFacilitatorService``) and remote TCP worker
agents (:mod:`repro.serving.fleet`), where ``probe`` reads heartbeat
staleness instead of process liveness, ``terminate`` closes a socket
instead of killing a pid, and ``respawn`` reconnects instead of forking.

:class:`RestartBackoff` implements the delay policy: ``base * 2**attempt``
capped at ``cap``, multiplied by a seeded random jitter factor in
``[1, 1+jitter]`` so simultaneous crashes across shards do not restart in
lockstep. Attempts reset once a worker stays healthy for
``healthy_reset_s``.

:class:`ArtifactWatcher` is the ``repro serve --watch`` mechanism: it
polls an artifact path's ``(mtime, size)`` signature and calls
``service.reload(path)`` when it changes — safe against readers seeing a
half-written file because :func:`repro.models.serialize.write_artifact`
publishes atomically via ``os.replace``.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass

__all__ = [
    "ArtifactWatcher",
    "RestartBackoff",
    "Supervisor",
    "WorkerProbe",
]


class RestartBackoff:
    """Exponential restart delay with jitter and healthy-streak reset."""

    def __init__(
        self,
        base_s: float = 0.2,
        cap_s: float = 30.0,
        jitter: float = 0.5,
        healthy_reset_s: float = 60.0,
        seed: int | None = None,
    ):
        if base_s <= 0:
            raise ValueError(f"base_s must be positive, got {base_s}")
        if cap_s < base_s:
            raise ValueError(f"cap_s must be >= base_s, got {cap_s}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.base_s = base_s
        self.cap_s = cap_s
        self.jitter = jitter
        self.healthy_reset_s = healthy_reset_s
        self._rng = random.Random(seed)

    def delay_s(self, attempt: int) -> float:
        """Delay before restart number ``attempt`` (0-based)."""
        delay = min(self.cap_s, self.base_s * (2.0 ** max(0, attempt)))
        return delay * (1.0 + self._rng.random() * self.jitter)


@dataclass(frozen=True)
class WorkerProbe:
    """One health reading of one worker.

    ``busy_s`` is how long the current batch has been executing (``None``
    when idle) — the hung-worker signal; heartbeats prove liveness of the
    worker loop, the busy clock bounds time inside a model call.
    """

    alive: bool
    busy_s: float | None = None


class Supervisor:
    """Decide worker health and restart timing; the fleet does the work.

    The ``fleet`` must provide:

    - ``worker_ids() -> iterable[int]`` — shards to supervise;
    - ``probe(wid) -> WorkerProbe`` — current health reading;
    - ``terminate(wid, reason) -> None`` — kill the worker process and
      re-route its in-flight work (called for hung workers; crashed ones
      are already dead);
    - ``on_down(wid, reason) -> None`` — bookkeeping when a worker is
      declared down (metrics, degraded-mode routing);
    - ``respawn(wid) -> None`` — start the replacement process.

    Call :meth:`check` once per poll (the built-in :meth:`run` loop does,
    driven by real time; tests drive it with a fake clock).
    """

    def __init__(
        self,
        fleet,
        batch_deadline_s: float = 30.0,
        poll_interval_s: float = 0.1,
        backoff: RestartBackoff | None = None,
        clock=time.monotonic,
    ):
        if batch_deadline_s <= 0:
            raise ValueError(
                f"batch_deadline_s must be positive, got {batch_deadline_s}"
            )
        self.fleet = fleet
        self.batch_deadline_s = batch_deadline_s
        self.poll_interval_s = poll_interval_s
        self.backoff = backoff if backoff is not None else RestartBackoff()
        self.clock = clock
        self._state: dict[int, dict] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: (wid, reason) tuples, newest last — chaos tests assert on this.
        self.incidents: list[tuple[int, str]] = []

    # -- lifecycle ----------------------------------------------------------- #

    def start(self) -> "Supervisor":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="shard-supervisor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            try:
                self.check()
            except Exception:
                # supervision must survive a flaky probe; next poll retries
                continue

    # -- one supervision pass ------------------------------------------------- #

    def _worker_state(self, wid: int, now: float) -> dict:
        return self._state.setdefault(
            wid,
            {"phase": "up", "attempts": 0, "not_before": 0.0, "up_since": now},
        )

    def check(self, now: float | None = None) -> None:
        """One supervision pass over every worker (idempotent, re-entrant
        only from one thread)."""
        now = self.clock() if now is None else now
        for wid in list(self.fleet.worker_ids()):
            state = self._worker_state(wid, now)
            if state["phase"] == "up":
                self._check_up(wid, state, now)
            elif now >= state["not_before"]:
                self._try_respawn(wid, state, now)

    def _check_up(self, wid: int, state: dict, now: float) -> None:
        probe = self.fleet.probe(wid)
        reason = None
        if not probe.alive:
            reason = "crashed"
        elif probe.busy_s is not None and probe.busy_s > self.batch_deadline_s:
            reason = "hung"
            self.fleet.terminate(wid, reason)
        if reason is None:
            if (
                state["attempts"]
                and now - state["up_since"] >= self.backoff.healthy_reset_s
            ):
                state["attempts"] = 0
            return
        self.incidents.append((wid, reason))
        self.fleet.on_down(wid, reason)
        delay = self.backoff.delay_s(state["attempts"])
        state["attempts"] += 1
        state["phase"] = "down"
        state["not_before"] = now + delay

    def _try_respawn(self, wid: int, state: dict, now: float) -> None:
        try:
            self.fleet.respawn(wid)
        except Exception:
            # spawn itself failed: back off further and try again
            delay = self.backoff.delay_s(state["attempts"])
            state["attempts"] += 1
            state["not_before"] = now + delay
            return
        state["phase"] = "up"
        state["up_since"] = now

    def restart_attempts(self, wid: int) -> int:
        state = self._state.get(wid)
        return 0 if state is None else state["attempts"]


class ArtifactWatcher:
    """Poll an artifact path and hot-reload the service when it changes.

    ``repro serve --watch`` runs one of these next to the server: every
    ``interval_s`` it stats ``path`` and, when the ``(mtime_ns, size)``
    signature differs from the generation being served, calls
    ``service.reload(path)``. Reload failures (a bad artifact dropped into
    place) are reported through ``on_event`` and do not stop the watcher —
    the service keeps serving the old generation.
    """

    def __init__(
        self,
        service,
        path,
        interval_s: float = 2.0,
        on_event=None,
    ):
        self.service = service
        self.path = str(path)
        self.interval_s = interval_s
        self.on_event = on_event if on_event is not None else lambda *a: None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._signature = self._stat()

    def _stat(self) -> tuple[int, int] | None:
        try:
            st = os.stat(self.path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def start(self) -> "ArtifactWatcher":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="artifact-watcher", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.poll()

    def poll(self) -> bool:
        """One watch pass; returns True when a reload was triggered."""
        signature = self._stat()
        if signature is None or signature == self._signature:
            return False
        self._signature = signature
        try:
            result = self.service.reload(self.path)
        except Exception as exc:
            self.on_event("reload_failed", f"{type(exc).__name__}: {exc}")
            return True
        self.on_event("reloaded", f"generation {result['generation']}")
        return True
