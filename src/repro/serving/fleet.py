"""Fleet transport: the sharded tier's worker protocol over TCP.

``ShardedFacilitatorService`` proves the supervision mechanics — health
probes, backoff restarts, degraded re-routes, deadlines, staged hot
reloads — against local worker *processes*. This module carries the
same protocol to remote hosts, the dbgrid-style backend/frontend split
the ROADMAP names: a controller (``repro serve --fleet host:port,...``)
routes shard slices over TCP to worker agents (``repro worker
--listen``), one agent per shard.

The wire format is deliberately boring: each message is a 4-byte
big-endian length prefix followed by a UTF-8 JSON body (no external
codecs). Messages are the exact tuples the in-process tier already
exchanges (``batch``/``result``/``ready``/``reload``/…) with
:class:`~repro.core.facilitator.QueryInsights` embedded as tagged
``to_dict()`` payloads — and since ``to_dict`` emits raw fields and
JSON float round-trips are repr-exact, a fleet response is bit-identical
to an in-process one.

Integration is a quacking trick, not a rewrite.
:class:`_FleetChannel` wraps the socket with ``fileno()`` (so the
collector's ``multiprocessing.connection.wait`` loop polls it alongside
real pipes), ``recv()`` (one framed message, converted back to tuples),
``put()`` (the dispatcher's request-queue verb), and no-op queue
teardown methods. :class:`FleetFacilitatorService` then subclasses the
sharded service overriding only the five process-lifecycle hooks —
spawn becomes connect+hello, probe becomes heartbeat-staleness, so
heartbeat loss is judged exactly like a SIGKILLed local worker: the
supervisor marks the shard crashed, re-routes its in-flight slices to
survivors (degraded), and reconnects under backoff. Scatter/gather,
admission control, deadline sweeps, and generation-fenced hot reload
are inherited verbatim.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from collections import deque

from repro.core.facilitator import QueryFacilitator, QueryInsights
from repro.obs.registry import get_registry
from repro.serving.faults import FaultInjector, FaultPlan
from repro.serving.service import InsightMemo, _PROBE_STATEMENT
from repro.serving.shards import (
    _BOOT_GRACE_S,
    ShardedFacilitatorService,
    _WorkerHandle,
)
from repro.serving.supervisor import WorkerProbe

__all__ = [
    "FleetFacilitatorService",
    "FleetWorkerAgent",
    "parse_endpoints",
]

#: Upper bound on one frame; a corrupt length prefix fails fast instead
#: of allocating gigabytes.
_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Blocking-read bound on an established channel; a frame that stalls
#: longer is treated as a torn connection.
_IO_TIMEOUT_S = 30.0

#: Agent heartbeat period. The controller's staleness threshold
#: (``heartbeat_timeout_s``) must comfortably exceed this.
_HEARTBEAT_PERIOD_S = 0.5


def parse_endpoints(spec: str) -> list[tuple[str, int]]:
    """``"host:port,host:port"`` → ``[(host, port), ...]``."""
    endpoints = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port = part.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"bad fleet endpoint {part!r} (expected host:port)"
            )
        endpoints.append((host, int(port)))
    if not endpoints:
        raise ValueError(f"no endpoints in fleet spec {spec!r}")
    return endpoints


# --------------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------------- #


def _to_wire(obj):
    """Make one protocol tuple JSON-able (insights become tagged dicts)."""
    if isinstance(obj, QueryInsights):
        return {"__insight__": obj.to_dict()}
    if isinstance(obj, (list, tuple)):
        return [_to_wire(item) for item in obj]
    if isinstance(obj, dict):
        return {key: _to_wire(value) for key, value in obj.items()}
    return obj


def _from_wire(obj):
    """Inverse of :func:`_to_wire` (tagged dicts back to insights;
    2-lists tagged ``__error__`` back to the tuples ``_on_result`` keys on)."""
    if isinstance(obj, dict):
        if len(obj) == 1 and "__insight__" in obj:
            return QueryInsights.from_dict(obj["__insight__"])
        return {key: _from_wire(value) for key, value in obj.items()}
    if isinstance(obj, list):
        if len(obj) == 2 and obj[0] == "__error__":
            return ("__error__", obj[1])
        return [_from_wire(item) for item in obj]
    return obj


def _send_frame(sock: socket.socket, lock: threading.Lock, msg) -> None:
    data = json.dumps(_to_wire(msg), separators=(",", ":")).encode("utf-8")
    frame = len(data).to_bytes(4, "big") + data
    with lock:
        sock.sendall(frame)


def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise EOFError("fleet channel closed")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> tuple:
    length = int.from_bytes(_read_exact(sock, 4), "big")
    if length > _MAX_FRAME_BYTES:
        raise EOFError(f"fleet frame too large ({length} bytes)")
    return tuple(_from_wire(json.loads(_read_exact(sock, length))))


# --------------------------------------------------------------------------- #
# controller side
# --------------------------------------------------------------------------- #


class _FleetChannel:
    """One worker's TCP link, shaped like its local mp plumbing.

    Exposes ``fileno()``/``recv()`` so the sharded collector's
    ``multiprocessing.connection.wait`` loop treats it as a result pipe,
    and ``put()``/``cancel_join_thread()``/``close()`` so the dispatch,
    reload, and teardown paths treat it as the worker's request queue —
    the entire sharded data plane runs over it unmodified.

    Frame reads happen on a dedicated per-channel reader thread, never
    on the collector: the collector polls a readiness pipe that gets one
    byte per *complete* queued frame, so ``recv()`` always returns
    instantly and one shard trickling a large result over a slow link
    cannot stall collection (or starve the liveness clock) for the
    others. The reader thread also swallows heartbeats in place —
    ``last_recv``/``busy_s`` advance without ever waking the collector.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        self.closed = False
        #: Last time any frame (heartbeat or payload) arrived — the
        #: controller-side liveness clock, advanced by the reader thread
        #: so it never depends on collector progress. Heartbeats carry
        #: the worker's *elapsed* busy seconds, so hung detection needs
        #: no cross-host clock agreement.
        self.last_recv = time.monotonic()
        self.busy_s = 0.0
        #: Complete frames (or the terminal exception) awaiting recv().
        self._frames: deque = deque()
        self._pipe_r, self._pipe_w = os.pipe()
        self._reader = threading.Thread(
            target=self._read_loop, name="fleet-channel-reader", daemon=True
        )
        self._reader.start()

    def fileno(self) -> int:
        return self._pipe_r

    def put(self, msg) -> None:
        _send_frame(self._sock, self._send_lock, msg)

    def _read_loop(self) -> None:
        while True:
            try:
                msg = _recv_frame(self._sock)
            except Exception as exc:
                self._frames.append(
                    exc
                    if isinstance(exc, (EOFError, OSError))
                    else EOFError(f"{type(exc).__name__}: {exc}")
                )
                self._signal()
                return
            self.last_recv = time.monotonic()
            if msg and msg[0] == "heartbeat":
                self.busy_s = float(msg[2]) if len(msg) > 2 else 0.0
                continue
            self._frames.append(msg)
            self._signal()

    def _signal(self) -> None:
        try:
            os.write(self._pipe_w, b"\x00")
        except OSError:
            pass  # channel closed while the reader was signalling

    def recv(self) -> tuple:
        os.read(self._pipe_r, 1)
        if not self._frames:
            raise EOFError("fleet channel closed")
        msg = self._frames.popleft()
        if isinstance(msg, BaseException):
            raise msg
        return msg

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        for fd in (self._pipe_r, self._pipe_w):
            try:
                os.close(fd)
            except OSError:
                pass

    def cancel_join_thread(self) -> None:  # queue-teardown protocol no-op
        pass


class FleetFacilitatorService(ShardedFacilitatorService):
    """The sharded tier with remote TCP agents as its shard workers.

    Args:
        artifact_path: Facilitator artifact; the controller validates the
            manifest (and stages reloads) locally, agents load their own
            copy by the same path.
        endpoints: ``[(host, port), ...]`` — one running ``repro worker
            --listen`` agent per shard; shard *i* is the *i*-th endpoint.
        connect_timeout_s: TCP connect budget per (re)spawn attempt; a
            refused connect leaves the shard down and the supervisor's
            backoff schedules the retry.
        heartbeat_timeout_s: Channel silence past this marks the remote
            shard **crashed** — the same verdict, re-route, and respawn
            path a SIGKILLed local worker takes.

    Everything else (batching knobs, ``max_pending``, deadlines,
    ``fault_plan`` for the *controller-side* staging validator, …) is
    inherited from :class:`ShardedFacilitatorService`.
    """

    def __init__(
        self,
        artifact_path,
        endpoints,
        connect_timeout_s: float = 2.0,
        heartbeat_timeout_s: float = 10.0,
        **kwargs,
    ):
        endpoints = [
            endpoint if isinstance(endpoint, tuple) else tuple(endpoint)
            for endpoint in endpoints
        ]
        if not endpoints:
            raise ValueError("fleet needs at least one worker endpoint")
        kwargs["n_workers"] = len(endpoints)
        super().__init__(artifact_path, **kwargs)
        self._endpoints = endpoints
        self.connect_timeout_s = connect_timeout_s
        self.heartbeat_timeout_s = heartbeat_timeout_s

    # -- lifecycle hooks: connect instead of fork ----------------------------- #

    def _spawn_locked(self, handle: _WorkerHandle) -> None:
        """(Re)connect one shard's agent and say hello.

        A failed connect leaves ``handle.conn`` unset: the next probe
        reports the shard dead and the supervisor retries under backoff —
        identical cadence to a crash-looping local worker.
        """
        handle.incarnation += 1
        handle.generation = 0
        handle.spawned_at = time.monotonic()
        handle.process = None
        with self._state:
            handle.up = False
            channel, handle.conn, handle.request_q = handle.conn, None, None
        if channel is not None:
            channel.close()
        host, port = self._endpoints[handle.wid]
        try:
            sock = socket.create_connection(
                (host, port), timeout=self.connect_timeout_s
            )
        except OSError:
            return
        sock.settimeout(_IO_TIMEOUT_S)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        channel = _FleetChannel(sock)
        cfg = {
            "artifact_path": self.artifact_path,
            "cache_size": self.cache_size,
            "warm_path": self.warm_path,
            "mmap": self.mmap,
            "generation": self._generation,
            "fault_plan": (
                self.fault_plan.to_json() if self.fault_plan else None
            ),
            # agents translate controller deadlines into their own clock
            "now": time.monotonic(),
        }
        try:
            channel.put(("hello", handle.wid, handle.incarnation, cfg))
        except OSError:
            channel.close()
            return
        with self._state:
            handle.conn = channel
            handle.request_q = channel

    def _probe_worker(self, wid: int) -> WorkerProbe:
        handle = self._handles[wid]
        channel = handle.conn
        if channel is None or channel.closed:
            return WorkerProbe(alive=False)
        now = time.monotonic()
        if now - channel.last_recv > self.heartbeat_timeout_s:
            # heartbeat loss is indistinguishable from a remote SIGKILL;
            # give it the identical verdict (crashed → re-route + backoff)
            return WorkerProbe(alive=False)
        busy_candidates = []
        if not handle.up:
            boot_s = now - handle.spawned_at
            if boot_s > _BOOT_GRACE_S:
                busy_candidates.append(boot_s - _BOOT_GRACE_S)
        elif channel.busy_s > 0.0:
            busy_candidates.append(channel.busy_s)
        busy_s = max(busy_candidates) if busy_candidates else None
        return WorkerProbe(alive=True, busy_s=busy_s)

    def _terminate_worker(self, wid: int, reason: str) -> None:
        handle = self._handles[wid]
        with self._state:
            channel, handle.conn, handle.request_q = handle.conn, None, None
        if channel is not None:
            try:
                channel.put(("stop",))
            except Exception:
                pass
            channel.close()

    def _respawn_worker(self, wid: int) -> None:
        self._terminate_worker(wid, "respawn")
        if not self._running:
            return
        self._spawn_locked(self._handles[wid])

    # -- reporting ------------------------------------------------------------ #

    @property
    def workers(self) -> list[dict]:
        rows = ShardedFacilitatorService.workers.fget(self)
        for row, (host, port) in zip(rows, self._endpoints):
            row["endpoint"] = f"{host}:{port}"
        return rows


# --------------------------------------------------------------------------- #
# agent side
# --------------------------------------------------------------------------- #


class FleetWorkerAgent:
    """``repro worker --listen``: one shard's compute behind a TCP port.

    Serves one controller connection at a time (the controller owns the
    shard). Each connection starts with a ``hello`` carrying the worker
    config; the agent loads the artifact (answering ``boot_err`` on
    failure), replies ``ready``, then answers ``batch``/``reload``
    messages exactly like the in-process worker loop — plus a heartbeat
    thread so the controller can tell a healthy-but-idle agent from a
    dead host. A dropped connection just returns the agent to accept():
    the supervisor's respawn is a reconnect, and the already-loaded
    facilitator makes it fast.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._listener = socket.create_server((host, port), backlog=4)
        self._listener.settimeout(0.5)
        self.address = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        # survives reconnects: identity (path, mmap, mtime_ns+size) and
        # generation of the loaded facilitator — a hello whose artifact
        # bytes or generation differ forces a fresh load, so an agent
        # that was down across a controller reload can never answer
        # ``ready`` at the new generation while serving old weights
        self._loaded_key = None
        self._loaded_generation = None
        self._facilitator = None
        self._m_batches = get_registry().counter(
            "repro_fleet_agent_batches_total",
            "Sub-batches answered by this fleet worker agent",
        )

    def shutdown(self) -> None:
        self._stop.set()

    def close(self) -> None:
        self._stop.set()
        self._listener.close()

    def serve_forever(self) -> None:
        try:
            while not self._stop.is_set():
                try:
                    sock, _peer = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                try:
                    self._serve_controller(sock)
                except Exception:
                    pass  # torn controller; go back to accepting
                finally:
                    try:
                        sock.close()
                    except OSError:
                        pass
        finally:
            try:
                self._listener.close()
            except OSError:
                pass

    # -- one controller session ---------------------------------------------- #

    @staticmethod
    def _artifact_key(path, mmap) -> tuple:
        """Cache key naming the artifact *bytes*, not just the path."""
        try:
            st = os.stat(path)
            stamp = (st.st_mtime_ns, st.st_size)
        except OSError:
            stamp = None  # unstatable: never treat as a cache hit
        return (str(path), bool(mmap), stamp)

    def _load(self, cfg: dict):
        key = self._artifact_key(cfg["artifact_path"], cfg.get("mmap"))
        if (
            self._facilitator is not None
            and key[2] is not None
            and self._loaded_key == key
            and self._loaded_generation == cfg["generation"]
        ):
            return self._facilitator
        facilitator = QueryFacilitator.load(
            cfg["artifact_path"], mmap=bool(cfg.get("mmap"))
        )
        if cfg.get("warm_path"):
            from repro.serving.shards import _prime_pipeline

            _prime_pipeline(cfg["warm_path"])
        self._loaded_key = key
        self._loaded_generation = cfg["generation"]
        self._facilitator = facilitator
        return facilitator

    def _serve_controller(self, sock: socket.socket) -> None:
        sock.settimeout(_IO_TIMEOUT_S)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # a controller host that dies without RST/FIN (power loss,
        # partition) must not wedge the agent in a dead session: TCP
        # keepalive fails the socket in ~seconds where supported
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
        for name, value in (
            ("TCP_KEEPIDLE", 5),
            ("TCP_KEEPINTVL", 2),
            ("TCP_KEEPCNT", 3),
        ):
            option = getattr(socket, name, None)
            if option is not None:
                try:
                    sock.setsockopt(socket.IPPROTO_TCP, option, value)
                except OSError:
                    pass
        send_lock = threading.Lock()
        try:
            hello = _recv_frame(sock)
        except (EOFError, OSError, ValueError):
            return
        if not hello or hello[0] != "hello":
            return
        _, wid, incarnation, cfg = hello
        plan = (
            FaultPlan.from_json(cfg["fault_plan"])
            if cfg.get("fault_plan")
            else None
        )
        faults = FaultInjector(plan, wid, incarnation)
        # controller-clock offset: deadlines arrive in the controller's
        # time.monotonic() domain and must be compared in ours
        clock_offset = time.monotonic() - float(cfg.get("now") or 0.0)
        try:
            facilitator = self._load(cfg)
        except Exception as exc:
            self._send(
                sock,
                send_lock,
                ("boot_err", wid, incarnation, f"{type(exc).__name__}: {exc}"),
            )
            return
        memo = InsightMemo(cfg.get("cache_size", 8192))
        generation = cfg["generation"]
        self._send(
            sock, send_lock, ("ready", wid, incarnation, generation, os.getpid())
        )

        busy_since = [0.0]  # boxed for the heartbeat thread
        session_over = threading.Event()

        def _heartbeat() -> None:
            while not session_over.wait(_HEARTBEAT_PERIOD_S):
                busy = busy_since[0]
                busy_s = time.monotonic() - busy if busy > 0.0 else 0.0
                try:
                    _send_frame(sock, send_lock, ("heartbeat", wid, busy_s))
                except Exception:
                    # controller unreachable: tear the session down so
                    # the blocked recv unblocks and the agent returns to
                    # accept() for the replacement controller
                    session_over.set()
                    try:
                        sock.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                    return

        beat = threading.Thread(
            target=_heartbeat, name="fleet-agent-heartbeat", daemon=True
        )
        beat.start()
        try:
            while not (self._stop.is_set() or session_over.is_set()):
                try:
                    msg = _recv_frame(sock)
                except socket.timeout:
                    continue
                except (EOFError, OSError, ValueError):
                    return
                kind = msg[0]
                if kind == "stop":
                    return
                if kind == "reload":
                    _, path, new_generation = msg
                    try:
                        faults.on_reload(path)
                        candidate = QueryFacilitator.load(
                            path, mmap=bool(cfg.get("mmap"))
                        )
                        candidate.insights_batch([_PROBE_STATEMENT])
                    except Exception as exc:
                        self._send(
                            sock,
                            send_lock,
                            (
                                "reload_err",
                                wid,
                                new_generation,
                                f"{type(exc).__name__}: {exc}",
                            ),
                        )
                        continue
                    facilitator = candidate
                    self._loaded_key = self._artifact_key(
                        path, cfg.get("mmap")
                    )
                    self._loaded_generation = new_generation
                    self._facilitator = candidate
                    memo.clear()
                    generation = new_generation
                    self._send(
                        sock, send_lock, ("reload_ok", wid, new_generation)
                    )
                    continue
                if kind != "batch":
                    continue
                _, batch_id, part_id, _part_generation, statements, deadline = msg
                busy_since[0] = time.monotonic()
                try:
                    faults.on_batch()
                    if (
                        deadline is not None
                        and time.monotonic() > deadline + clock_offset
                    ):
                        self._send(
                            sock, send_lock, ("expired", wid, batch_id, part_id)
                        )
                        continue
                    results, _, _ = memo.resolve(
                        list(statements), facilitator.insights_batch
                    )
                    payload = [
                        r
                        if isinstance(r, QueryInsights)
                        else ("__error__", f"{type(r).__name__}: {r}")
                        for r in results
                    ]
                    self._m_batches.inc()
                    self._send(
                        sock,
                        send_lock,
                        ("result", wid, batch_id, part_id, generation, payload),
                    )
                finally:
                    busy_since[0] = 0.0
        finally:
            session_over.set()

    @staticmethod
    def _send(sock, lock, msg) -> None:
        try:
            _send_frame(sock, lock, msg)
        except OSError:
            pass
