"""Fault injection for the serving tier (chaos tests and load harnesses).

The resilient-serving claims — a crashed worker loses no requests, a hung
worker is detected and replaced, a corrupt artifact never reaches a live
shard — are only testable if those faults can be produced on demand and
deterministically. This module is that switch: a :class:`FaultPlan` (a
list of :class:`FaultSpec`) describes *what* goes wrong *where* and
*when*, and a :class:`FaultInjector` evaluates the plan inside one worker
process through two hooks:

- :meth:`FaultInjector.on_batch` — called by the shard worker before
  executing each batch; may **crash** the process (``os._exit``), **hang**
  it (sleep with the busy flag set, so the supervisor's per-batch deadline
  fires), or **slow** the batch (added latency).
- :meth:`FaultInjector.on_reload` — called during artifact validation /
  swap; a **corrupt_artifact** fault raises
  :class:`~repro.models.serialize.ArtifactFormatError`, exercising the
  staged-validation rejection path without actually corrupting a file.

Everything is gated: with no plan (the default, and always in
production), every hook is a zero-cost no-op. Plans come in
programmatically or through the ``REPRO_FAULT_PLAN`` environment variable
(inline JSON, or ``@/path/to/plan.json``), which is how the ``repro
serve --fault-plan`` flag and the chaos CI jobs reach worker processes.

Plan format (JSON)::

    [
      {"kind": "crash", "worker": 1, "after_batches": 3},
      {"kind": "hang", "worker": 2, "after_batches": 5, "sleep_s": 60},
      {"kind": "slow_batch", "after_batches": 0, "times": 10, "sleep_s": 0.05},
      {"kind": "corrupt_artifact"}
    ]

Fields: ``kind`` (required); ``worker`` (int shard id, omitted = any
worker); ``after_batches`` (fire once the worker has executed this many
batches); ``times`` (how often the spec fires, default 1);
``sleep_s`` (hang/slow duration); ``exit_code`` (crash status);
``incarnation`` (which boot of the worker the spec applies to — 0 is the
first boot, so a crash spec does not re-fire in the supervisor-restarted
replacement unless asked to).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro.models.serialize import ArtifactFormatError

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
]

#: Environment variable carrying a fault plan (inline JSON or ``@path``).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

_KINDS = ("crash", "hang", "slow_batch", "corrupt_artifact")

#: Default injected latencies per kind (seconds). A hang only needs to
#: outlive the supervisor's per-batch deadline; an hour is "forever".
_DEFAULT_SLEEP_S = {"hang": 3600.0, "slow_batch": 0.05}


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: what, which worker, when, how often."""

    kind: str
    worker: int | None = None
    after_batches: int = 0
    times: int = 1
    sleep_s: float | None = None
    exit_code: int = 9
    incarnation: int | None = 0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (expected one of {_KINDS})"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.after_batches < 0:
            raise ValueError(
                f"after_batches must be >= 0, got {self.after_batches}"
            )

    @property
    def delay_s(self) -> float:
        return (
            self.sleep_s
            if self.sleep_s is not None
            else _DEFAULT_SLEEP_S.get(self.kind, 0.0)
        )

    def matches(self, worker_id: int | None, incarnation: int) -> bool:
        if self.worker is not None and self.worker != worker_id:
            return False
        if self.incarnation is not None and self.incarnation != incarnation:
            return False
        return True

    def to_dict(self) -> dict:
        out = {"kind": self.kind}
        if self.worker is not None:
            out["worker"] = self.worker
        if self.after_batches:
            out["after_batches"] = self.after_batches
        if self.times != 1:
            out["times"] = self.times
        if self.sleep_s is not None:
            out["sleep_s"] = self.sleep_s
        if self.exit_code != 9:
            out["exit_code"] = self.exit_code
        if self.incarnation != 0:
            out["incarnation"] = self.incarnation
        return out


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultSpec`; empty plans are no-ops."""

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def from_obj(cls, obj) -> "FaultPlan":
        """Build a plan from parsed JSON (a list of spec dicts)."""
        if obj is None:
            return cls()
        if isinstance(obj, dict):
            obj = [obj]
        if not isinstance(obj, list):
            raise ValueError(
                f"fault plan must be a JSON list of specs, got {type(obj).__name__}"
            )
        specs = []
        for entry in obj:
            if not isinstance(entry, dict):
                raise ValueError(f"fault spec must be an object, got {entry!r}")
            unknown = set(entry) - {
                "kind", "worker", "after_batches", "times",
                "sleep_s", "exit_code", "incarnation",
            }
            if unknown:
                raise ValueError(f"unknown fault spec fields {sorted(unknown)}")
            specs.append(FaultSpec(**entry))
        return cls(tuple(specs))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_obj(json.loads(text))

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan":
        """Plan from ``REPRO_FAULT_PLAN`` (inline JSON or ``@path``);
        empty when unset."""
        environ = os.environ if environ is None else environ
        value = environ.get(FAULT_PLAN_ENV, "").strip()
        if not value:
            return cls()
        if value.startswith("@"):
            with open(value[1:], encoding="utf-8") as handle:
                value = handle.read()
        return cls.from_json(value)

    def to_json(self) -> str:
        return json.dumps([spec.to_dict() for spec in self.specs])


class FaultInjector:
    """Evaluates a :class:`FaultPlan` inside one worker process.

    Trigger counters (batches executed, per-spec fire counts) are local
    to the process, so a plan is deterministic per worker boot; specs pin
    ``incarnation`` to control whether they re-fire in supervisor-started
    replacements.
    """

    #: ``worker_id`` the staged-validation process identifies as.
    STAGING = -1

    def __init__(
        self,
        plan: FaultPlan | None,
        worker_id: int | None = None,
        incarnation: int = 0,
        sleep=time.sleep,
    ):
        self._plan = plan if plan is not None else FaultPlan()
        self._worker_id = worker_id
        self._incarnation = incarnation
        self._sleep = sleep
        self._batches = 0
        self._fired = [0] * len(self._plan.specs)

    def _due(self, kinds: tuple[str, ...], batch_index: int | None = None):
        for i, spec in enumerate(self._plan.specs):
            if spec.kind not in kinds:
                continue
            if not spec.matches(self._worker_id, self._incarnation):
                continue
            if self._fired[i] >= spec.times:
                continue
            if batch_index is not None and batch_index < spec.after_batches:
                continue
            self._fired[i] += 1
            yield spec

    def on_batch(self) -> None:
        """Hook before each batch executes: may crash, hang, or slow."""
        if not self._plan:
            return
        index = self._batches
        self._batches += 1
        for spec in self._due(("crash", "hang", "slow_batch"), index):
            if spec.kind == "crash":
                # die the way a segfault would: no cleanup, no goodbyes
                os._exit(spec.exit_code)
            self._sleep(spec.delay_s)

    def on_reload(self, path) -> None:
        """Hook during artifact validation: may reject the artifact."""
        if not self._plan:
            return
        for _spec in self._due(("corrupt_artifact",)):
            raise ArtifactFormatError(
                f"{path}: fault injection rejected this artifact "
                "(corrupt_artifact)"
            )
