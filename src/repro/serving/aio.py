"""Asyncio front end: thousands of keep-alive connections on one loop.

The stdlib :class:`~http.server.ThreadingHTTPServer` front in
``serving/http.py`` spends a Python thread per *connection*. That is the
wrong cost model for the paper's deployment shape — an editor plugin
holds a keep-alive connection open per user and fires a request only at
keystroke pauses, so almost every connection is idle at any instant.  A
thousand mostly-idle clients cost a thousand blocked threads (stack
memory, scheduler churn, GIL wakeups) before the micro-batching backend
sees any load at all.

:class:`AsyncInsightsServer` multiplexes every connection on a single
event loop (epoll/kqueue under the hood via the selector event loop):

* **Incremental HTTP/1.1 parsing with pipelining.** Request bytes
  accumulate in one per-connection ``bytearray``; each complete request
  is spliced off the front, so a client that pipelines N requests gets N
  responses in order on one connection. The body cap is enforced from
  the ``Content-Length`` header *before* the body is read (same 413
  semantics as the thread server).
* **Idle timeouts and a slowloris reaper.** Every read is bounded: a
  connection with no buffered bytes may idle for ``idle_timeout_s``
  between requests, but once a partial request is buffered each
  subsequent read must arrive within ``header_timeout_s`` — a client
  trickling one header byte per second is reaped, not collected.
* **Thread-free result bridge.** ``POST /insights`` submits to the
  existing micro-batching queue on the loop, then awaits completion via
  one shared waiter thread that watches the service's done-condition and
  resolves asyncio futures (``call_soon_threadsafe``); a thousand
  in-flight requests cost one thread, not a thousand.  Services without
  the shared condition fall back to ``loop.run_in_executor``. Either
  way the queue, batching, and response bytes are exactly the threaded
  path's.
* **Zero-copy response assembly.** Responses build into a reusable
  per-connection ``bytearray`` (pre-encoded status lines and common
  headers) written as a ``memoryview`` — no per-response string
  concatenation. If the transport has to buffer (slow reader), the
  buffer's ownership is handed to the transport and a fresh one is
  allocated, so reuse never mutates in-flight bytes.

The routing/validation/error-mapping core is the same
:class:`~repro.serving.http.InsightsAPI` the threaded server uses, so
status codes and bodies cannot drift between fronts.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from http import HTTPStatus

from repro.obs.registry import get_registry
from repro.serving.http import (
    DEFAULT_MAX_BODY_BYTES,
    ApiResponse,
    InsightsAPI,
    _connection_metrics,
)

__all__ = ["AsyncInsightsServer", "make_async_server"]

#: Reads may return up to this much at once; large bodies arrive in chunks.
_READ_CHUNK = 64 * 1024

#: Cap on the request head (request line + headers) before 431.
_MAX_HEAD_BYTES = 32 * 1024

#: Bridge wake-up slice when no request deadline is nearer.
_BRIDGE_SLICE_S = 0.25

_CRLF2 = b"\r\n\r\n"


def _status_line(code: int) -> bytes:
    try:
        phrase = HTTPStatus(code).phrase
    except ValueError:
        phrase = "Unknown"
    return f"HTTP/1.1 {code} {phrase}\r\n".encode("latin-1")


#: Pre-encoded status lines for every code the API can answer.
_STATUS_LINES = {
    code: _status_line(code)
    for code in (200, 400, 404, 405, 408, 409, 413, 431, 500, 501, 503, 504)
}

_H_CONTENT_TYPE = b"Content-Type: "
_H_CONTENT_LENGTH = b"Content-Length: "
_H_CONNECTION_CLOSE = b"Connection: close\r\n"
_CRLF = b"\r\n"

#: Fully pre-encoded rejection for connections over the cap — sent
#: without touching the parser or the API core.
_CAP_BODY = b'{"error": "connection limit reached; retry shortly"}'
_PRE_503_CAP = (
    _STATUS_LINES[503]
    + b"Content-Type: application/json\r\n"
    + b"Retry-After: 1\r\n"
    + _H_CONTENT_LENGTH
    + str(len(_CAP_BODY)).encode("ascii")
    + _CRLF
    + _H_CONNECTION_CLOSE
    + _CRLF
    + _CAP_BODY
)


class _ProtocolError(Exception):
    """Malformed framing; carries the response to send before closing."""

    def __init__(self, response: ApiResponse):
        super().__init__(response.status)
        self.response = response


class _ResultBridge:
    """One waiter thread resolving asyncio futures for pending requests.

    Every :class:`~repro.serving.service.PendingRequest` of a service
    shares one ``threading.Condition`` (notified once per finished
    micro-batch), so a single thread can wait on it and complete any
    number of asyncio futures via ``call_soon_threadsafe`` — the async
    front end never blocks a loop thread or an executor slot on a
    result. Deadlines are enforced here too: a watched request past its
    timeout fails with ``TimeoutError`` exactly like the threaded
    ``result(timeout)`` path (504 at the API layer).
    """

    def __init__(self, done_cond: threading.Condition):
        self._cond = done_cond
        # id(request) -> (request, loop, future, absolute deadline | None)
        self._watched: dict = {}
        self._thread: threading.Thread | None = None
        self._stopping = False

    def wait(self, request, loop: asyncio.AbstractEventLoop, timeout_s):
        """Future resolving when ``request`` completes (or times out)."""
        future = loop.create_future()
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        with self._cond:
            self._watched[id(request)] = (request, loop, future, deadline)
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run, name="aio-result-bridge", daemon=True
                )
                self._thread.start()
            self._cond.notify_all()
        return future

    def stop(self) -> None:
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)

    @staticmethod
    def _resolve_many(ripe: list) -> None:
        for future, error in ripe:
            if future.done():  # connection died and cancelled the future
                continue
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(None)

    def _run(self) -> None:
        with self._cond:
            while not self._stopping:
                now = time.monotonic()
                #: loop -> [(future, error), ...]; one threadsafe wakeup
                #: resolves every request a micro-batch finished, instead
                #: of one loop callback per request
                ripe: dict = {}
                drop = []
                next_deadline = None
                for key, slot in self._watched.items():
                    request, loop, future, deadline = slot
                    if request.done():
                        ripe.setdefault(loop, []).append((future, None))
                        drop.append(key)
                    elif deadline is not None and now >= deadline:
                        ripe.setdefault(loop, []).append(
                            (
                                future,
                                TimeoutError(
                                    "request was not answered within the "
                                    "timeout"
                                ),
                            )
                        )
                        drop.append(key)
                    elif deadline is not None:
                        next_deadline = (
                            deadline
                            if next_deadline is None
                            else min(next_deadline, deadline)
                        )
                for key in drop:
                    del self._watched[key]
                for loop, batch in ripe.items():
                    with contextlib.suppress(RuntimeError):
                        # RuntimeError: the loop was closed mid-shutdown
                        loop.call_soon_threadsafe(self._resolve_many, batch)
                wait_s = _BRIDGE_SLICE_S
                if next_deadline is not None:
                    wait_s = min(wait_s, max(0.001, next_deadline - now))
                self._cond.wait(wait_s)


def _parse_head(buf: bytearray, head_end: int):
    """(method, target, version, headers) from the head bytes in ``buf``.

    Raises :class:`ValueError` on a malformed request line; header lines
    that don't parse are skipped (matching the stdlib's leniency).
    """
    head = bytes(buf[:head_end]).decode("latin-1")
    lines = head.split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ValueError(f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return method, target, version, headers


def _route_label(target: str) -> str:
    path = target.split("?", 1)[0].rstrip("/")
    return path if path in ("/insights", "/reload") else "unknown"


class AsyncInsightsServer:
    """Single-loop asyncio server for the insights API.

    Drop-in lifecycle twin of :class:`~repro.serving.http.InsightsHTTPServer`:
    the constructor binds (``port=0`` for ephemeral; read
    ``server_address``), ``serve_forever()`` blocks running the loop
    (call it from a dedicated thread), ``shutdown()`` is thread-safe,
    ``server_close()`` releases the loop.

    Args:
        address: ``(host, port)`` to bind.
        service: A ``FacilitatorService``-shaped object (``submit``,
            ``stats``, optional ``reload``).
        quiet: Suppress per-connection exception logging.
        max_body_bytes: Request-body cap (413 above it, pre-read).
        idle_timeout_s: How long a keep-alive connection may sit with no
            buffered request bytes before it is closed.
        header_timeout_s: Per-read bound once a partial request is
            buffered — the slowloris reaper.
        max_connections: Open-connection cap; connections over it get an
            immediate pre-encoded 503 and are closed.
    """

    def __init__(
        self,
        address,
        service,
        quiet: bool = True,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        idle_timeout_s: float = 60.0,
        header_timeout_s: float = 10.0,
        max_connections: int = 1024,
    ):
        self.service = service
        self.quiet = quiet
        self.max_body_bytes = max_body_bytes
        self.idle_timeout_s = idle_timeout_s
        self.header_timeout_s = header_timeout_s
        self.max_connections = max_connections
        self.api = InsightsAPI(service, max_body_bytes=max_body_bytes)

        self.connections_total, self.connections_open = _connection_metrics()
        self.connections_reaped = get_registry().counter(
            "repro_http_connections_reaped_total",
            "Connections closed by the idle/slow-client reaper",
        )
        self.connections_rejected = get_registry().counter(
            "repro_http_connections_rejected_total",
            "Connections refused with 503 at the open-connection cap",
        )

        done_cond = getattr(service, "_done_cond", None)
        self._bridge = (
            _ResultBridge(done_cond)
            if isinstance(done_cond, threading.Condition)
            else None
        )

        self._loop = asyncio.new_event_loop()
        if quiet:
            self._loop.set_exception_handler(lambda loop, ctx: None)
        self._conn_tasks: set[asyncio.Task] = set()
        # task -> {"wait_start": float|None, "mid_request": bool}; scanned
        # by the one reaper task instead of arming a timeout per read
        self._conn_meta: dict[asyncio.Task, dict] = {}
        self._closing = False
        self._shutdown_event = asyncio.Event()
        host, port = address
        self._server = self._loop.run_until_complete(
            asyncio.start_server(
                self._handle_connection, host, port, backlog=1024
            )
        )
        self.server_address = self._server.sockets[0].getsockname()[:2]

    # -- lifecycle ------------------------------------------------------------ #

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (blocks)."""
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self._main())

    async def _main(self) -> None:
        reaper = self._loop.create_task(self._reap_stale())
        await self._shutdown_event.wait()
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        reaper.cancel()
        for task in list(self._conn_tasks):
            task.cancel()
        await asyncio.gather(
            reaper, *self._conn_tasks, return_exceptions=True
        )

    def shutdown(self) -> None:
        """Stop :meth:`serve_forever` from any thread."""
        with contextlib.suppress(RuntimeError):
            self._loop.call_soon_threadsafe(self._shutdown_event.set)

    def server_close(self) -> None:
        """Release the listening socket, bridge thread, and loop."""
        if self._bridge is not None:
            self._bridge.stop()
        if self._loop.is_closed() or self._loop.is_running():
            return
        self._server.close()
        with contextlib.suppress(Exception):
            self._loop.run_until_complete(self._server.wait_closed())
        with contextlib.suppress(Exception):
            self._loop.run_until_complete(self._loop.shutdown_asyncgens())
        self._loop.close()

    # -- connection handling --------------------------------------------------- #

    async def _handle_connection(self, reader, writer) -> None:
        self.connections_total.inc()
        self.connections_open.inc()
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        meta = {"wait_start": None, "mid_request": False}
        self._conn_meta[task] = meta
        try:
            if len(self._conn_tasks) > self.max_connections:
                self.connections_rejected.inc()
                writer.write(_PRE_503_CAP)
                with contextlib.suppress(Exception):
                    await writer.drain()
                return
            await self._serve_connection(reader, writer, meta)
        except asyncio.CancelledError:
            pass  # server shutdown or reaped by _reap_stale
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass  # peer went away mid-exchange
        finally:
            self._conn_meta.pop(task, None)
            self._conn_tasks.discard(task)
            self.connections_open.dec()
            with contextlib.suppress(Exception):
                writer.close()

    async def _serve_connection(self, reader, writer, meta) -> None:
        buf = bytearray()
        head = bytearray()  # reusable response-head buffer
        while not self._closing:
            try:
                parsed = await self._read_request(reader, buf, meta)
            except _ProtocolError as exc:
                self._write_response(writer, head, exc.response, close=True)
                with contextlib.suppress(Exception):
                    await writer.drain()
                return
            if parsed is None:
                return  # EOF, idle timeout, or reaped
            method, target, body, keep_alive = parsed
            response = await self._dispatch(method, target, body)
            close = self._closing or not keep_alive
            head = self._write_response(writer, head, response, close)
            if writer.transport.get_write_buffer_size() > 0:
                await writer.drain()
            if close:
                return

    async def _read_request(self, reader, buf: bytearray, meta):
        """Splice one complete request off ``buf``, reading as needed.

        Returns ``(method, target, body, keep_alive)``, or ``None`` on
        EOF between requests. A connection that overstays its idle or
        slow-client budget mid-read is cancelled by :meth:`_reap_stale`.
        Raises :class:`_ProtocolError` for malformed framing that
        deserves an error response.
        """
        # 1. the head: everything up to the blank line
        while True:
            head_end = buf.find(_CRLF2)
            if head_end >= 0:
                break
            if len(buf) > _MAX_HEAD_BYTES:
                raise _ProtocolError(
                    self._framing_error(
                        "unknown", 431, "request header block too large"
                    )
                )
            chunk = await self._bounded_read(reader, meta, bool(buf))
            if not chunk:
                return None
            buf += chunk
        try:
            method, target, version, headers = _parse_head(buf, head_end)
        except ValueError as exc:
            raise _ProtocolError(
                self._framing_error("unknown", 400, str(exc))
            ) from None
        route = _route_label(target)

        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _ProtocolError(
                self._framing_error(
                    route, 501, "chunked transfer encoding not supported"
                )
            )
        try:
            length = int(headers.get("content-length") or 0)
            if length < 0:
                raise ValueError
        except ValueError:
            raise _ProtocolError(
                self._framing_error(route, 400, "bad Content-Length header")
            ) from None
        if length > self.max_body_bytes:
            # refuse from the header, before the body crosses the wire;
            # the unread body poisons the stream, so the caller closes
            # (body_too_large counts the request itself)
            raise _ProtocolError(self.api.body_too_large(route))

        # 2. the body: read until the full request is buffered
        total = head_end + len(_CRLF2) + length
        while len(buf) < total:
            chunk = await self._bounded_read(reader, meta, True)
            if not chunk:
                return None
            buf += chunk
        body = bytes(buf[head_end + len(_CRLF2) : total])
        del buf[:total]  # pipelined successors stay buffered

        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            keep_alive = connection == "keep-alive"
        else:
            keep_alive = connection != "close"
        return method, target, body, keep_alive

    async def _bounded_read(self, reader, meta, mid_request: bool):
        """One read, time-stamped so the reaper can enforce the budget.

        ``asyncio.wait_for`` here would arm a fresh task + timer per
        read — measurable per-request overhead at thousands of
        keep-alive connections. Instead the read is plain and the single
        :meth:`_reap_stale` task cancels connections that overstay.
        """
        meta["mid_request"] = mid_request
        meta["wait_start"] = self._loop.time()
        try:
            return await reader.read(_READ_CHUNK)
        finally:
            meta["wait_start"] = None

    async def _reap_stale(self) -> None:
        """Cancel connections that sat in a read past their budget.

        One task for the whole server; the scan interval halves the
        tighter timeout so a reap lands at most 1.5x the nominal budget
        after the deadline — the contract is "bounded", not "exact".
        """
        interval = max(
            0.05, min(self.header_timeout_s, self.idle_timeout_s) / 2
        )
        while True:
            await asyncio.sleep(interval)
            now = self._loop.time()
            for task, meta in list(self._conn_meta.items()):
                started = meta["wait_start"]
                if started is None or task.done():
                    continue
                budget = (
                    self.header_timeout_s
                    if meta["mid_request"]
                    else self.idle_timeout_s
                )
                if now - started > budget:
                    if meta["mid_request"]:
                        self.connections_reaped.inc()
                    task.cancel()

    def _framing_error(self, route: str, status: int, message: str):
        self.api._count_request(route)
        return self.api._json(route, status, {"error": message})

    # -- dispatch -------------------------------------------------------------- #

    async def _dispatch(self, method: str, target: str, body: bytes):
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if method == "POST" and path == "/insights":
            # split submit (fast, on the loop — keeps micro-batches
            # forming) from the await on the result (bridge thread)
            self.api._count_request("/insights")
            statements, deadline_s, error = self.api.parse_insights(body)
            if error is not None:
                return error
            try:
                request = self.api.submit(statements, deadline_s=deadline_s)
                insights = await self._await_result(request, deadline_s)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                return self.api.insights_error(exc)
            return self.api.finish_insights(request, insights)
        if method == "POST" and path == "/reload":
            # staged artifact validation takes seconds; keep it off the loop
            return await self._loop.run_in_executor(
                None, self.api.handle, method, target, body
            )
        # stats/metrics/healthz/404/405: quick, answered inline
        return self.api.handle(method, target, body)

    async def _await_result(self, request, deadline_s):
        if self._bridge is not None:
            await self._bridge.wait(request, self._loop, deadline_s)
            return request.result(timeout=0.0)
        return await self._loop.run_in_executor(
            None, request.result, deadline_s
        )

    # -- response assembly ----------------------------------------------------- #

    def _write_response(
        self, writer, head: bytearray, response: ApiResponse, close: bool
    ) -> bytearray:
        """Assemble into the reusable head buffer; returns the buffer to
        reuse next time (a fresh one if the transport kept ours)."""
        status, content_type, body, extra_headers = response
        head.clear()
        head += _STATUS_LINES.get(status) or _status_line(status)
        head += _H_CONTENT_TYPE
        head += content_type.encode("latin-1")
        head += _CRLF
        head += _H_CONTENT_LENGTH
        head += str(len(body)).encode("ascii")
        head += _CRLF
        for name, value in (extra_headers or {}).items():
            head += f"{name}: {value}\r\n".encode("latin-1")
        if close:
            head += _H_CONNECTION_CLOSE
        head += _CRLF
        writer.write(memoryview(head))
        if body:
            writer.write(body)
        if writer.transport.get_write_buffer_size() > 0:
            # the transport buffered our memoryview (slow reader): hand
            # it the buffer and build the next response in a fresh one
            return bytearray()
        return head


def make_async_server(
    service,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    idle_timeout_s: float = 60.0,
    header_timeout_s: float = 10.0,
    max_connections: int = 1024,
) -> AsyncInsightsServer:
    """Bind (but do not start) the asyncio front end for ``service``.

    Same contract as :func:`repro.serving.http.make_server`: ``port=0``
    binds an ephemeral port (read ``server.server_address``), call
    ``serve_forever()`` from a thread, ``shutdown()`` to stop.
    """
    return AsyncInsightsServer(
        (host, port),
        service,
        quiet=quiet,
        max_body_bytes=max_body_bytes,
        idle_timeout_s=idle_timeout_s,
        header_timeout_s=header_timeout_s,
        max_connections=max_connections,
    )
