"""FacilitatorService: a micro-batching request queue over a facilitator.

Per-statement ``insights()`` calls pay per-call model overhead (one
vectorizer pass, one forward per head, per statement). Real serving
traffic is concurrent and massively repetitive (Figure 20), so the service
collects in-flight requests into micro-batches — up to ``max_batch``
statements or ``max_wait_ms`` after the first arrival, whichever comes
first — and answers each batch with a single
:meth:`~repro.core.facilitator.QueryFacilitator.insights_batch` call.

The service also owns the serving-side observability: request counts,
batch-size distribution, p50/p95 request latency, and the shared
:mod:`repro.sqlang.pipeline` cache hit rate, all snapshotted by
:attr:`FacilitatorService.stats`. ``warm_up()`` primes the pipeline cache
(and the model code paths) before traffic arrives so the first requests
don't pay cold-cache parses.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from collections.abc import Iterable, Sequence
from dataclasses import asdict, dataclass

from repro.core.facilitator import QueryFacilitator, QueryInsights
from repro.sqlang.pipeline import get_pipeline

__all__ = ["FacilitatorService", "ServiceStats", "PendingRequest"]

#: How many completed request latencies the stats window retains.
_LATENCY_WINDOW = 4096

#: Statements per ``analyze_batch`` chunk during warm-up (bounds memory
#: when warming from a streaming workload pass).
_WARM_CHUNK = 1024


@dataclass(frozen=True)
class ServiceStats:
    """Snapshot of a service's serving counters.

    Attributes:
        requests: Requests answered (one submit/insights call each).
        statements: Statements predicted across all requests.
        batches: Micro-batches executed (``insights_batch`` calls).
        mean_batch_size: Statements per batch on average.
        max_batch_size: Largest micro-batch executed.
        latency_p50_ms / latency_p95_ms: Request latency percentiles over
            the recent-request window (enqueue → result ready).
        insight_cache: Serving-side insight memo counters (hits, misses,
            hit_rate, size) — repeated statements are answered without
            touching the models at all.
        pipeline: ``repro.sqlang.pipeline`` cache counters (hits, misses,
            hit_rate, size, ...) for cache-effectiveness observability.
    """

    requests: int
    statements: int
    batches: int
    mean_batch_size: float
    max_batch_size: int
    latency_p50_ms: float
    latency_p95_ms: float
    warmed_statements: int
    insight_cache: dict
    pipeline: dict

    def to_dict(self) -> dict:
        """JSON-safe dict (the ``/stats`` wire format)."""
        return asdict(self)


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


class PendingRequest:
    """Handle for one submitted request; ``result()`` blocks until ready.

    Completion is signalled through one condition shared by every request
    of a service (the worker notifies once per finished micro-batch), not
    a per-request ``threading.Event`` — allocating an event per request
    costs more than an entire micro-batched prediction at high request
    rates.
    """

    __slots__ = (
        "statements",
        "_done_cond",
        "_done",
        "_results",
        "_error",
        "_enqueued_at",
        "latency_ms",
    )

    def __init__(
        self,
        statements: list[str],
        done_cond: threading.Condition | None = None,
    ):
        self.statements = statements
        self._done_cond = done_cond if done_cond is not None else threading.Condition()
        self._done = False
        self._results: list[QueryInsights] | None = None
        self._error: BaseException | None = None
        self._enqueued_at = time.perf_counter()
        self.latency_ms: float | None = None

    def _finish(
        self,
        results: list[QueryInsights] | None,
        error: BaseException | None = None,
    ) -> None:
        """Record the outcome; the worker notifies the shared condition
        once per batch after finishing every request in it."""
        self.latency_ms = (time.perf_counter() - self._enqueued_at) * 1000.0
        self._results = results
        self._error = error
        self._done = True

    def done(self) -> bool:
        """True when the micro-batch carrying this request has run."""
        return self._done

    def result(self, timeout: float | None = None) -> list[QueryInsights]:
        """Insights for this request's statements (blocks until computed)."""
        if not self._done:
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            with self._done_cond:
                while not self._done:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TimeoutError(
                                "request was not answered within the timeout"
                            )
                    self._done_cond.wait(remaining)
        if self._error is not None:
            raise self._error
        assert self._results is not None
        return self._results


class FacilitatorService:
    """Serve a fitted facilitator behind a micro-batching queue.

    Args:
        facilitator: A fitted :class:`QueryFacilitator` (or the path
            semantics of :meth:`from_artifact`).
        max_batch: Statement budget per micro-batch; a forming batch is
            dispatched as soon as it reaches this size.
        max_wait_ms: How long a dispatched batch may wait for co-riders
            after the first request arrives. Lower bounds latency under
            light traffic; raise it to trade tail latency for throughput.
        cache_size: Bound on the serving-side insight memo (distinct
            statements whose finished insights are kept; LRU-evicted).
            ``0`` disables it. Sound because a loaded facilitator is
            immutable: insights are a pure function of statement text.

    Use as a context manager (or call :meth:`start`/:meth:`stop`)::

        with FacilitatorService(facilitator) as service:
            insights = service.insights("SELECT * FROM PhotoObj")
    """

    def __init__(
        self,
        facilitator: QueryFacilitator,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        cache_size: int = 8192,
    ):
        if not facilitator.heads:
            raise ValueError(
                "FacilitatorService needs a fitted QueryFacilitator"
            )
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self.facilitator = facilitator
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.cache_size = cache_size
        self._queue: deque[PendingRequest] = deque()
        self._condition = threading.Condition()
        self._done_cond = threading.Condition()
        self._running = False
        self._worker: threading.Thread | None = None
        # counters (guarded by _condition's lock)
        self._requests = 0
        self._statements = 0
        self._batches = 0
        self._max_batch_seen = 0
        self._warmed = 0
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        # insight memo (only the worker thread mutates it)
        self._insight_cache: OrderedDict[str, QueryInsights] = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0

    @classmethod
    def from_artifact(cls, path, **kwargs) -> "FacilitatorService":
        """Service over an artifact saved by ``QueryFacilitator.save``."""
        return cls(QueryFacilitator.load(path), **kwargs)

    # -- lifecycle ----------------------------------------------------------- #

    def start(self) -> "FacilitatorService":
        """Start the batching worker thread (idempotent)."""
        with self._condition:
            if self._running:
                return self
            self._running = True
        self._worker = threading.Thread(
            target=self._run, name="facilitator-service", daemon=True
        )
        self._worker.start()
        return self

    def stop(self) -> None:
        """Drain outstanding requests and stop the worker."""
        with self._condition:
            if not self._running:
                return
            self._running = False
            self._condition.notify_all()
        if self._worker is not None:
            self._worker.join()
            self._worker = None

    def __enter__(self) -> "FacilitatorService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- warm-up ------------------------------------------------------------- #

    def warm_up(self, statements: Iterable[str], predict: bool = True) -> int:
        """Prime the shared sqlang pipeline cache (and model paths).

        Args:
            statements: Representative statements — typically the training
                workload or recent traffic. May be any iterable, including
                a streaming :func:`repro.workloads.io.iter_workload` pass;
                it is consumed in bounded chunks, never materialized, and
                priming stops at the pipeline cache's capacity (anything
                beyond would only evict earlier entries).
            predict: Also run one ``insights_batch`` over a slice so the
                per-head predict paths (vocabulary lookups, feature
                matrices) are warm too.

        Returns:
            Number of statements primed.
        """
        pipeline = get_pipeline()
        capacity = pipeline.stats.max_size
        primed = 0
        predict_slice: list[str] = []
        chunk: list[str] = []
        for statement in statements:
            if predict and len(predict_slice) < self.max_batch:
                predict_slice.append(statement)
            chunk.append(statement)
            if len(chunk) >= _WARM_CHUNK:
                pipeline.analyze_batch(chunk)
                primed += len(chunk)
                chunk.clear()
                if primed >= capacity:
                    break
        if chunk:
            pipeline.analyze_batch(chunk)
            primed += len(chunk)
        if predict_slice:
            self.facilitator.insights_batch(predict_slice)
        with self._condition:
            self._warmed += primed
        return primed

    # -- request path -------------------------------------------------------- #

    def submit(self, statements: str | Sequence[str]) -> PendingRequest:
        """Enqueue a request; returns a handle whose ``result()`` blocks.

        The service must be running (``start()`` or context manager).
        """
        if isinstance(statements, str):
            statements = [statements]
        request = PendingRequest(list(statements), self._done_cond)
        with self._condition:
            if not self._running:
                raise RuntimeError(
                    "FacilitatorService is not running (use `with service:` "
                    "or call start())"
                )
            # the worker only ever blocks on an empty queue (a non-empty
            # queue means it is computing or gathering co-riders), so a
            # notify is needed only for the transition from empty
            was_empty = not self._queue
            self._queue.append(request)
            if was_empty:
                self._condition.notify()
        return request

    def insights(
        self, statement: str, timeout: float | None = None
    ) -> QueryInsights:
        """Micro-batched equivalent of ``facilitator.insights(statement)``."""
        return self.submit(statement).result(timeout)[0]

    def insights_many(
        self, statements: Sequence[str], timeout: float | None = None
    ) -> list[QueryInsights]:
        """Micro-batched insights for one multi-statement request."""
        return self.submit(list(statements)).result(timeout)

    # -- stats --------------------------------------------------------------- #

    @property
    def stats(self) -> ServiceStats:
        """Current serving counters plus pipeline cache effectiveness."""
        pipeline_stats = get_pipeline().stats
        with self._condition:
            # snapshot under the lock, sort/assemble outside it — the
            # lock is shared with submit() and the batching worker
            latencies = list(self._latencies)
            requests = self._requests
            batches = self._batches
            statements = self._statements
            max_batch_seen = self._max_batch_seen
            warmed = self._warmed
            cache_hits = self._cache_hits
            cache_misses = self._cache_misses
            cache_len = len(self._insight_cache)
        latencies.sort()
        return ServiceStats(
            requests=requests,
            statements=statements,
            batches=batches,
            mean_batch_size=(statements / batches) if batches else 0.0,
            max_batch_size=max_batch_seen,
            latency_p50_ms=round(_percentile(latencies, 0.50), 3),
            latency_p95_ms=round(_percentile(latencies, 0.95), 3),
            warmed_statements=warmed,
            insight_cache={
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": (
                    round(cache_hits / (cache_hits + cache_misses), 4)
                    if (cache_hits + cache_misses)
                    else 0.0
                ),
                "size": cache_len,
                "max_size": self.cache_size,
            },
            pipeline={
                "hits": pipeline_stats.hits,
                "misses": pipeline_stats.misses,
                "evictions": pipeline_stats.evictions,
                "size": pipeline_stats.size,
                "max_size": pipeline_stats.max_size,
                "hit_rate": round(pipeline_stats.hit_rate, 4),
            },
        )

    # -- worker -------------------------------------------------------------- #

    def _collect_batch(self) -> list[PendingRequest]:
        """Block for the first request, then gather co-riders.

        Returns an empty list only when the service is stopping and the
        queue is fully drained.
        """
        max_wait_s = self.max_wait_ms / 1000.0
        with self._condition:
            while not self._queue and self._running:
                self._condition.wait()
            if not self._queue:
                return []
            batch = [self._queue.popleft()]
            size = len(batch[0].statements)
            deadline = time.monotonic() + max_wait_s
            while size < self.max_batch:
                if self._queue:
                    request = self._queue.popleft()
                    batch.append(request)
                    size += len(request.statements)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._running:
                    break
                self._condition.wait(remaining)
            return batch

    def _answer_statements(self, statements: list[str]) -> list[QueryInsights]:
        """One micro-batch through the insight memo + the facilitator.

        Statements already served stay out of the model entirely; the
        distinct misses go through one ``insights_batch`` call. Every
        returned object is a fresh copy so callers own their results.
        """
        if not self.cache_size:
            return self.facilitator.insights_batch(statements)
        cache = self._insight_cache
        hits = misses = 0
        resolved: dict[str, QueryInsights] = {}
        miss_order: dict[str, None] = {}
        for statement in statements:
            if statement in resolved:
                hits += 1
            elif statement in cache:
                cache.move_to_end(statement)
                resolved[statement] = cache[statement]
                hits += 1
            elif statement not in miss_order:
                miss_order[statement] = None
                misses += 1
            else:
                hits += 1  # in-batch repeat of a miss: computed once
        if miss_order:
            computed = self.facilitator.insights_batch(list(miss_order))
            for insight in computed:
                resolved[insight.statement] = insight
                cache[insight.statement] = insight
            while len(cache) > self.cache_size:
                cache.popitem(last=False)
        with self._condition:
            self._cache_hits += hits
            self._cache_misses += misses
        return [resolved[s].copy() for s in statements]

    def _run(self) -> None:
        while True:
            batch = self._collect_batch()
            if not batch:
                return
            statements: list[str] = []
            for request in batch:
                statements.extend(request.statements)
            try:
                results = self._answer_statements(statements)
            except BaseException as exc:  # delivered to every waiter
                for request in batch:
                    request._finish(None, exc)
                with self._done_cond:
                    self._done_cond.notify_all()
                continue
            offset = 0
            for request in batch:
                n = len(request.statements)
                request._finish(results[offset : offset + n])
                offset += n
            with self._done_cond:
                self._done_cond.notify_all()
            with self._condition:
                self._requests += len(batch)
                self._statements += len(statements)
                self._batches += 1
                self._max_batch_seen = max(self._max_batch_seen, len(statements))
                for request in batch:
                    if request.latency_ms is not None:
                        self._latencies.append(request.latency_ms)
