"""FacilitatorService: a micro-batching request queue over a facilitator.

Per-statement ``insights()`` calls pay per-call model overhead (one
vectorizer pass, one forward per head, per statement). Real serving
traffic is concurrent and massively repetitive (Figure 20), so the service
collects in-flight requests into micro-batches — up to ``max_batch``
statements or ``max_wait_ms`` after the first arrival, whichever comes
first — and answers each batch with a single
:meth:`~repro.core.facilitator.QueryFacilitator.insights_batch` call.

The service reports through the :mod:`repro.obs` registry: request /
statement / batch counters, a queue-depth gauge, batch-size and request
latency histograms, and insight-memo hits, all under ``repro_service_*``
names (the most recently started service owns the exported series).
:attr:`FacilitatorService.stats` is a thin per-instance view over those
same metric objects — plus exact p50/p95 percentiles over a bounded
recent-request ``window`` that :meth:`stats_reset` can clear, so warm-up
traffic doesn't pollute steady-state numbers. The worker can also sample
one batch at a time into a per-stage :class:`repro.obs.spans.Trace`
(``request_trace()`` / ``last_trace``, surfaced as ``GET
/stats?trace=1``), and emits one ``serve.batch`` access record per
micro-batch to the ``REPRO_OBS_LOG`` event log when that is set.
``warm_up()`` primes the pipeline cache (and the model code paths)
before traffic arrives so the first requests don't pay cold-cache
parses.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from collections.abc import Iterable, Sequence
from dataclasses import asdict, dataclass

from repro.core.facilitator import QueryFacilitator, QueryInsights
from repro.obs import events as obs_events
from repro.obs.histograms import LATENCY_BUCKETS_S, SIZE_BUCKETS, Histogram
from repro.obs.registry import Counter, get_registry
from repro.obs.spans import end_trace, span, start_trace
from repro.sqlang.pipeline import get_pipeline

__all__ = [
    "FacilitatorService",
    "InsightMemo",
    "PendingRequest",
    "ReloadInProgressError",
    "ServiceOverloadedError",
    "ServiceStats",
    "ServiceUnavailableError",
]

#: How many completed request latencies the stats window retains.
_LATENCY_WINDOW = 4096

#: Upper bound on any internal condition wait; every blocking loop
#: re-checks its exit predicate at least this often, so shutdown can
#: never hang behind a lost notify or a worker that died mid-batch.
_WAIT_SLICE_S = 0.25

#: Statement used to smoke-test a freshly loaded artifact before a
#: hot-reload swaps it in (cheap, parses under every dialect we emit).
_PROBE_STATEMENT = "SELECT 1"


class ServiceUnavailableError(RuntimeError):
    """The service cannot take requests right now (not running, loading,
    or restarting); the caller should retry after ``retry_after_s``.

    The HTTP layer maps this to ``503 Service Unavailable`` with a
    ``Retry-After`` header instead of a blanket 500.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceOverloadedError(ServiceUnavailableError):
    """Admission control shed this request: the queue crossed its
    high-water mark. Retry after ``retry_after_s`` (HTTP 503 +
    ``Retry-After``)."""


class ReloadInProgressError(RuntimeError):
    """A hot reload is already running; only one may run at a time."""

#: Statements per ``analyze_batch`` chunk during warm-up (bounds memory
#: when warming from a streaming workload pass).
_WARM_CHUNK = 1024


@dataclass(frozen=True)
class ServiceStats:
    """Snapshot of a service's serving counters.

    Attributes:
        requests: Requests answered (one submit/insights call each).
        statements: Statements predicted across all requests.
        batches: Micro-batches executed (``insights_batch`` calls).
        mean_batch_size: Statements per batch on average.
        max_batch_size: Largest micro-batch executed.
        latency_p50_ms / latency_p95_ms: Request latency percentiles over
            the recent-request window (enqueue → result ready). Exact
            over the last ``window`` requests since the last
            ``stats_reset()``; the cumulative distribution lives in the
            ``repro_service_request_latency_seconds`` registry histogram.
        insight_cache: Serving-side insight memo counters (hits, misses,
            hit_rate, size) — repeated statements are answered without
            touching the models at all.
        pipeline: ``repro.sqlang.pipeline`` cache counters (hits, misses,
            hit_rate, size, ...) for cache-effectiveness observability.
    """

    requests: int
    statements: int
    batches: int
    mean_batch_size: float
    max_batch_size: int
    latency_p50_ms: float
    latency_p95_ms: float
    warmed_statements: int
    insight_cache: dict
    pipeline: dict

    def to_dict(self) -> dict:
        """JSON-safe dict (the ``/stats`` wire format)."""
        return asdict(self)


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


class InsightMemo:
    """LRU memo over distinct statement texts, with error isolation.

    The serving-side cache both the single-process service and every
    shard worker use: repeated statements are answered without touching
    the models, distinct misses go through one batched compute call, and
    a failure is isolated to the statements that caused it — when the
    batch call raises, the misses are retried one at a time so co-batched
    statements still get answers and only the offending ones carry an
    exception.

    ``max_size=0`` disables caching but keeps the dedup and isolation
    semantics. Not thread-safe by itself; each owner (the service worker
    thread, one shard worker process) is single-threaded over its memo.
    """

    __slots__ = ("max_size", "_cache")

    def __init__(self, max_size: int):
        if max_size < 0:
            raise ValueError(f"max_size must be >= 0, got {max_size}")
        self.max_size = max_size
        self._cache: OrderedDict[str, QueryInsights] = OrderedDict()

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()

    def get(self, statement: str) -> QueryInsights | None:
        """Cached insight for ``statement`` (refreshes LRU order)."""
        insight = self._cache.get(statement)
        if insight is not None:
            self._cache.move_to_end(statement)
        return insight

    def put(self, statement: str, insight: QueryInsights) -> None:
        """Remember one computed insight (evicting LRU past ``max_size``)."""
        if not self.max_size:
            return
        self._cache[statement] = insight
        self._cache.move_to_end(statement)
        while len(self._cache) > self.max_size:
            self._cache.popitem(last=False)

    def resolve(
        self, statements: Sequence[str], compute_batch
    ) -> tuple[list, int, int]:
        """Answer ``statements`` through the memo + ``compute_batch``.

        Returns ``(results, hits, misses)`` where ``results`` aligns with
        ``statements`` and each element is either a fresh
        :class:`QueryInsights` copy or the exception that statement's
        computation raised (never cached). ``compute_batch`` receives the
        list of distinct cache-missing statements and returns one
        :class:`QueryInsights` per statement, in order.
        """
        cache = self._cache
        hits = misses = 0
        resolved: dict[str, object] = {}
        miss_order: dict[str, None] = {}
        with span("memo", statements=len(statements)):
            for statement in statements:
                if statement in resolved:
                    hits += 1
                elif statement in cache:
                    cache.move_to_end(statement)
                    resolved[statement] = cache[statement]
                    hits += 1
                elif statement not in miss_order:
                    miss_order[statement] = None
                    misses += 1
                else:
                    hits += 1  # in-batch repeat of a miss: computed once
        if miss_order:
            for statement, outcome in self._compute(
                list(miss_order), compute_batch
            ):
                resolved[statement] = outcome
                if self.max_size and isinstance(outcome, QueryInsights):
                    cache[statement] = outcome
            while len(cache) > self.max_size:
                cache.popitem(last=False)
        with span("copy"):
            results = [
                r.copy() if isinstance(r, QueryInsights) else r
                for r in (resolved[s] for s in statements)
            ]
        return results, hits, misses

    @staticmethod
    def _compute(misses: list[str], compute_batch):
        """Yield ``(statement, QueryInsights | Exception)`` for each miss.

        The whole batch is tried first (the fast path); if it raises, the
        misses are recomputed one at a time so a single malformed
        statement cannot fail its co-batched neighbours.
        """
        try:
            computed = compute_batch(misses)
        except Exception:
            for statement in misses:
                try:
                    (insight,) = compute_batch([statement])
                    yield statement, insight
                except Exception as exc:
                    yield statement, exc
            return
        for statement, insight in zip(misses, computed):
            yield statement, insight


class PendingRequest:
    """Handle for one submitted request; ``result()`` blocks until ready.

    Completion is signalled through one condition shared by every request
    of a service (the worker notifies once per finished micro-batch), not
    a per-request ``threading.Event`` — allocating an event per request
    costs more than an entire micro-batched prediction at high request
    rates.
    """

    __slots__ = (
        "statements",
        "_done_cond",
        "_done",
        "_results",
        "_error",
        "_enqueued_at",
        "dispatched_at",
        "latency_ms",
        "degraded",
        "generation",
        "deadline",
    )

    def __init__(
        self,
        statements: list[str],
        done_cond: threading.Condition | None = None,
        deadline: float | None = None,
    ):
        self.statements = statements
        self._done_cond = done_cond if done_cond is not None else threading.Condition()
        self._done = False
        self._results: list[QueryInsights] | None = None
        self._error: BaseException | None = None
        self._enqueued_at = time.perf_counter()
        #: ``time.perf_counter()`` when the batching worker dispatched the
        #: micro-batch carrying this request (None until then) — the
        #: boundary between queue-wait and compute in the latency split.
        self.dispatched_at: float | None = None
        self.latency_ms: float | None = None
        #: True when the response was served off its home shard or from
        #: a fallback memo while a shard was restarting.
        self.degraded = False
        #: Artifact generation that answered this request (None until done).
        self.generation: int | None = None
        #: Absolute ``time.monotonic()`` deadline, or None for unbounded.
        self.deadline = deadline

    def _finish(
        self,
        results: list[QueryInsights] | None,
        error: BaseException | None = None,
    ) -> None:
        """Record the outcome; the worker notifies the shared condition
        once per batch after finishing every request in it."""
        self.latency_ms = (time.perf_counter() - self._enqueued_at) * 1000.0
        self._results = results
        self._error = error
        self._done = True

    def done(self) -> bool:
        """True when the micro-batch carrying this request has run."""
        return self._done

    def result(self, timeout: float | None = None) -> list[QueryInsights]:
        """Insights for this request's statements (blocks until computed)."""
        if not self._done:
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            with self._done_cond:
                while not self._done:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TimeoutError(
                                "request was not answered within the timeout"
                            )
                    self._done_cond.wait(remaining)
        if self._error is not None:
            raise self._error
        assert self._results is not None
        return self._results


class FacilitatorService:
    """Serve a fitted facilitator behind a micro-batching queue.

    Args:
        facilitator: A fitted :class:`QueryFacilitator` (or the path
            semantics of :meth:`from_artifact`).
        max_batch: Statement budget per micro-batch; a forming batch is
            dispatched as soon as it reaches this size.
        max_wait_ms: How long a dispatched batch may wait for co-riders
            after the first request arrives. Lower bounds latency under
            light traffic; raise it to trade tail latency for throughput.
        cache_size: Bound on the serving-side insight memo (distinct
            statements whose finished insights are kept; LRU-evicted).
            ``0`` disables it. Sound because a loaded facilitator is
            immutable: insights are a pure function of statement text.
        window: Completed-request latencies retained for the exact
            p50/p95 in :attr:`stats`. The window (and every ServiceStats
            counter) restarts at :meth:`stats_reset`, so steady-state
            percentiles are measurable after warm-up; the registry
            histograms keep the full monotonic history regardless.

    Use as a context manager (or call :meth:`start`/:meth:`stop`)::

        with FacilitatorService(facilitator) as service:
            insights = service.insights("SELECT * FROM PhotoObj")
    """

    def __init__(
        self,
        facilitator: QueryFacilitator,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        cache_size: int = 8192,
        window: int = _LATENCY_WINDOW,
    ):
        if not facilitator.heads:
            raise ValueError(
                "FacilitatorService needs a fitted QueryFacilitator"
            )
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.facilitator = facilitator
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.cache_size = cache_size
        self.window = window
        self._queue: deque[PendingRequest] = deque()
        self._condition = threading.Condition()
        self._done_cond = threading.Condition()
        self._running = False
        self._worker: threading.Thread | None = None
        # serving metrics: per-instance objects, attach()ed to the global
        # obs registry on start() so /metrics exports the live service;
        # ServiceStats reads the same objects (minus reset baselines)
        self._m_requests = Counter()
        self._m_statements = Counter()
        self._m_batches = Counter()
        self._m_memo_hits = Counter()
        self._m_memo_misses = Counter()
        self._m_request_errors = Counter()
        self._m_batch_size = Histogram(SIZE_BUCKETS)
        self._m_latency = Histogram(LATENCY_BUCKETS_S)
        # the latency split: time spent waiting for dispatch vs time the
        # micro-batch actually computed (total = queue_wait + compute +
        # result pickup, which the total histogram above keeps)
        self._m_queue_wait = Histogram(LATENCY_BUCKETS_S)
        self._m_compute = Histogram(LATENCY_BUCKETS_S)
        # window + non-monotonic bits (guarded by _condition's lock)
        self._max_batch_seen = 0
        self._warmed = 0
        self._latencies: deque[float] = deque(maxlen=window)
        self._baseline = {
            "requests": 0, "statements": 0, "batches": 0,
            "memo_hits": 0, "memo_misses": 0,
        }
        # per-stage trace sampling (the worker traces one batch when asked;
        # the first batch is always captured so /stats?trace=1 has data)
        self._trace_pending = True
        self._last_trace: dict | None = None
        # insight memo (only the worker thread walks it; reload() swaps
        # the whole object under _condition rather than mutating it)
        self._memo = InsightMemo(cache_size)
        # artifact generation: bumped by every successful reload(); the
        # worker stamps each request with the generation that answered it
        self._generation = 1
        self._reload_lock = threading.Lock()
        #: how :meth:`reload` loads replacement artifacts; set by
        #: :meth:`from_artifact` so a service booted with memory-mapped
        #: weights keeps that policy across hot reloads
        self.mmap = False

    @classmethod
    def from_artifact(
        cls, path, mmap: bool = False, **kwargs
    ) -> "FacilitatorService":
        """Service over an artifact saved by ``QueryFacilitator.save``.

        ``mmap=True`` memory-maps the artifact's weight arrays (v3
        artifacts; older versions warn and load eagerly) — the fast cold
        start path. The same policy is reused by :meth:`reload`.
        """
        service = cls(QueryFacilitator.load(path, mmap=mmap), **kwargs)
        service.mmap = mmap
        return service

    # -- lifecycle ----------------------------------------------------------- #

    def start(self) -> "FacilitatorService":
        """Start the batching worker thread (idempotent)."""
        with self._condition:
            if self._running:
                return self
            self._running = True
        self._register_metrics()
        self._worker = threading.Thread(
            target=self._run, name="facilitator-service", daemon=True
        )
        self._worker.start()
        return self

    def _register_metrics(self) -> None:
        """Bind this instance's metrics into the process-global registry.

        ``attach`` replaces any previous binding, so the most recently
        started service owns the ``repro_service_*`` series — the right
        semantics for the one-service-per-process serving deployment (and
        deterministic for tests that start several).
        """
        registry = get_registry()
        registry.attach(
            "repro_service_requests_total", self._m_requests,
            "Requests answered (one submit/insights call each)",
        )
        registry.attach(
            "repro_service_statements_total", self._m_statements,
            "Statements predicted across all requests",
        )
        registry.attach(
            "repro_service_batches_total", self._m_batches,
            "Micro-batches executed (insights_batch calls)",
        )
        registry.attach(
            "repro_service_insight_memo_hits_total", self._m_memo_hits,
            "Statements answered from the serving-side insight memo",
        )
        registry.attach(
            "repro_service_insight_memo_misses_total", self._m_memo_misses,
            "Distinct statements that had to run through the models",
        )
        registry.attach(
            "repro_service_request_errors_total", self._m_request_errors,
            "Requests that finished with a per-statement analysis error",
        )
        registry.attach(
            "repro_service_batch_size", self._m_batch_size,
            "Statements per executed micro-batch",
        )
        registry.attach(
            "repro_service_request_latency_seconds", self._m_latency,
            "Request latency, enqueue to result ready",
        )
        registry.attach(
            "repro_service_queue_wait_seconds", self._m_queue_wait,
            "Time a request waited in the micro-batching queue before "
            "its batch dispatched",
        )
        registry.attach(
            "repro_service_compute_seconds", self._m_compute,
            "Time a request's micro-batch spent computing (dispatch to "
            "results ready)",
        )
        registry.register_callback(
            "repro_service_queue_depth",
            lambda: float(len(self._queue)),
            help="Requests waiting in the micro-batching queue",
        )
        registry.register_callback(
            "repro_service_insight_memo_size",
            lambda: float(len(self._memo)),
            help="Distinct statements held by the insight memo",
        )

    def stop(self, timeout: float | None = 10.0) -> None:
        """Drain outstanding requests and stop the worker.

        The join is bounded: the worker re-checks ``_running`` at least
        every ``_WAIT_SLICE_S`` and fails outstanding requests on any
        unexpected error, so ``timeout`` is a backstop, not a drain
        budget. A worker still alive after it (a model call that never
        returns) is abandoned as a daemon thread rather than hanging the
        caller.
        """
        with self._condition:
            if not self._running:
                return
            self._running = False
            self._condition.notify_all()
        if self._worker is not None:
            self._worker.join(timeout)
            self._worker = None

    def __enter__(self) -> "FacilitatorService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- warm-up ------------------------------------------------------------- #

    def warm_up(self, statements: Iterable[str], predict: bool = True) -> int:
        """Prime the shared sqlang pipeline cache (and model paths).

        Args:
            statements: Representative statements — typically the training
                workload or recent traffic. May be any iterable, including
                a streaming :func:`repro.workloads.io.iter_workload` pass;
                it is consumed in bounded chunks, never materialized, and
                priming stops at the pipeline cache's capacity (anything
                beyond would only evict earlier entries).
            predict: Also run one ``insights_batch`` over a slice so the
                per-head predict paths (vocabulary lookups, feature
                matrices) are warm too.

        Returns:
            Number of statements primed.
        """
        pipeline = get_pipeline()
        capacity = pipeline.stats.max_size
        primed = 0
        predict_slice: list[str] = []
        chunk: list[str] = []
        for statement in statements:
            if predict and len(predict_slice) < self.max_batch:
                predict_slice.append(statement)
            chunk.append(statement)
            if len(chunk) >= _WARM_CHUNK:
                pipeline.analyze_batch(chunk)
                primed += len(chunk)
                chunk.clear()
                if primed >= capacity:
                    break
        if chunk:
            pipeline.analyze_batch(chunk)
            primed += len(chunk)
        if predict_slice:
            self.facilitator.insights_batch(predict_slice)
        with self._condition:
            self._warmed += primed
        return primed

    # -- request path -------------------------------------------------------- #

    def submit(
        self,
        statements: str | Sequence[str],
        deadline_s: float | None = None,
    ) -> PendingRequest:
        """Enqueue a request; returns a handle whose ``result()`` blocks.

        The service must be running (``start()`` or context manager).
        ``deadline_s`` is recorded on the request (the sharded tier
        enforces it; here callers enforce it through ``result(timeout)``).
        """
        if isinstance(statements, str):
            statements = [statements]
        deadline = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        request = PendingRequest(list(statements), self._done_cond, deadline=deadline)
        with self._condition:
            if not self._running:
                raise ServiceUnavailableError(
                    "FacilitatorService is not running (use `with service:` "
                    "or call start())"
                )
            # the worker only ever blocks on an empty queue (a non-empty
            # queue means it is computing or gathering co-riders), so a
            # notify is needed only for the transition from empty
            was_empty = not self._queue
            self._queue.append(request)
            if was_empty:
                self._condition.notify()
        return request

    def insights(
        self, statement: str, timeout: float | None = None
    ) -> QueryInsights:
        """Micro-batched equivalent of ``facilitator.insights(statement)``."""
        return self.submit(statement).result(timeout)[0]

    def insights_many(
        self, statements: Sequence[str], timeout: float | None = None
    ) -> list[QueryInsights]:
        """Micro-batched insights for one multi-statement request."""
        return self.submit(list(statements)).result(timeout)

    # -- stats --------------------------------------------------------------- #

    @property
    def stats(self) -> ServiceStats:
        """Current serving counters plus pipeline cache effectiveness.

        A thin view over the instance's registry metrics: counters are
        reported relative to the last :meth:`stats_reset` (the registry
        series themselves stay monotonic), and percentiles are exact over
        the retained ``window`` of recent request latencies.
        """
        pipeline_stats = get_pipeline().stats
        with self._condition:
            # snapshot under the lock, sort/assemble outside it — the
            # lock is shared with submit() and the batching worker
            latencies = list(self._latencies)
            baseline = dict(self._baseline)
            max_batch_seen = self._max_batch_seen
            warmed = self._warmed
            cache_len = len(self._memo)
        requests = self._m_requests.value - baseline["requests"]
        statements = self._m_statements.value - baseline["statements"]
        batches = self._m_batches.value - baseline["batches"]
        cache_hits = self._m_memo_hits.value - baseline["memo_hits"]
        cache_misses = self._m_memo_misses.value - baseline["memo_misses"]
        latencies.sort()
        return ServiceStats(
            requests=requests,
            statements=statements,
            batches=batches,
            mean_batch_size=(statements / batches) if batches else 0.0,
            max_batch_size=max_batch_seen,
            latency_p50_ms=round(_percentile(latencies, 0.50), 3),
            latency_p95_ms=round(_percentile(latencies, 0.95), 3),
            warmed_statements=warmed,
            insight_cache={
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": (
                    round(cache_hits / (cache_hits + cache_misses), 4)
                    if (cache_hits + cache_misses)
                    else 0.0
                ),
                "size": cache_len,
                "max_size": self.cache_size,
            },
            pipeline={
                "hits": pipeline_stats.hits,
                "misses": pipeline_stats.misses,
                "evictions": pipeline_stats.evictions,
                "size": pipeline_stats.size,
                "max_size": pipeline_stats.max_size,
                "hit_rate": round(pipeline_stats.hit_rate, 4),
            },
        )

    def stats_reset(self) -> None:
        """Restart the :attr:`stats` window (counters and percentiles).

        Call after warm-up so p50/p95 (and hit rates) describe
        steady-state traffic only. The registry metrics are *not* reset —
        they are monotonic by contract; this only moves the baseline the
        per-instance view subtracts.
        """
        with self._condition:
            self._latencies.clear()
            self._max_batch_seen = 0
            self._warmed = 0
            self._baseline = {
                "requests": self._m_requests.value,
                "statements": self._m_statements.value,
                "batches": self._m_batches.value,
                "memo_hits": self._m_memo_hits.value,
                "memo_misses": self._m_memo_misses.value,
            }

    # -- hot reload ---------------------------------------------------------- #

    @property
    def generation(self) -> int:
        """Artifact generation being served (starts at 1, +1 per reload)."""
        with self._condition:
            return self._generation

    def reload(self, path) -> dict:
        """Swap in a new artifact with zero dropped requests.

        The artifact is fully validated before anything changes: it must
        load (``ArtifactFormatError`` fast-fail — wrong file, stale
        version, truncated zip) and answer a probe statement. Only then
        are the facilitator, the insight memo, and the generation counter
        swapped atomically with respect to the batching worker (which
        snapshots all three under the lock at the start of each batch), so
        every response is computed entirely at one generation.

        Returns ``{"generation": int, "artifact": identity-dict}``.

        Raises:
            ReloadInProgressError: another reload is mid-flight.
            ArtifactFormatError / OSError: the artifact is unusable (the
                running service keeps serving the old generation).
        """
        if not self._reload_lock.acquire(blocking=False):
            raise ReloadInProgressError("a reload is already in progress")
        try:
            try:
                candidate = QueryFacilitator.load(path, mmap=self.mmap)
                # the probe also compiles the candidate's inference plan
                # while the old generation is still serving, so the swap
                # never exposes a plan-less facilitator to the worker —
                # and responses never mix plan generations
                candidate.insights_batch([_PROBE_STATEMENT])
            except Exception:
                self._count_reload("rejected")
                raise
            with self._condition:
                self.facilitator = candidate
                self._memo = InsightMemo(self.cache_size)
                self._generation += 1
                generation = self._generation
            self._count_reload("ok")
            return {
                "generation": generation,
                "artifact": candidate.artifact_identity,
            }
        finally:
            self._reload_lock.release()

    @staticmethod
    def _count_reload(outcome: str) -> None:
        get_registry().counter(
            "repro_reloads_total",
            "Artifact hot-reload attempts by outcome",
            outcome=outcome,
        ).inc()

    # -- tracing ------------------------------------------------------------- #

    def request_trace(self) -> None:
        """Ask the worker to trace the next micro-batch it executes."""
        self._trace_pending = True

    @property
    def last_trace(self) -> dict | None:
        """Per-stage breakdown of the most recently traced batch.

        ``{"batch_size", "requests", "captured_at", "total_ms",
        "stage_total_ms", "stages": [...]}`` — see
        :meth:`repro.obs.spans.Trace.breakdown`. ``None`` until the first
        batch has run.
        """
        return self._last_trace

    # -- worker -------------------------------------------------------------- #

    def _collect_batch(self) -> list[PendingRequest]:
        """Block for the first request, then gather co-riders.

        Returns an empty list only when the service is stopping and the
        queue is fully drained.
        """
        max_wait_s = self.max_wait_ms / 1000.0
        with self._condition:
            while not self._queue and self._running:
                # bounded slice, not an unbounded wait: shutdown (or a
                # lost notify) can never leave the worker parked forever
                self._condition.wait(_WAIT_SLICE_S)
            if not self._queue:
                return []
            batch = [self._queue.popleft()]
            size = len(batch[0].statements)
            deadline = time.monotonic() + max_wait_s
            while size < self.max_batch:
                if self._queue:
                    request = self._queue.popleft()
                    batch.append(request)
                    size += len(request.statements)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._running:
                    break
                self._condition.wait(remaining)
            return batch

    def _answer_statements(self, statements: list[str]) -> list:
        """One micro-batch through the insight memo + the facilitator.

        Statements already served stay out of the model entirely; the
        distinct misses go through one ``insights_batch`` call. Every
        returned object is a fresh copy so callers own their results. A
        statement whose analysis raised comes back as the exception
        itself — co-batched statements are unaffected (the memo retries
        misses individually when the batch call fails).
        """
        with self._condition:
            # snapshot both under the lock: reload() swaps them together,
            # so a batch never mixes an old memo with a new facilitator
            facilitator = self.facilitator
            memo = self._memo
        results, hits, misses = memo.resolve(
            statements, facilitator.insights_batch
        )
        if hits:
            self._m_memo_hits.inc(hits)
        if misses:
            self._m_memo_misses.inc(misses)
        return results

    def _execute_batch(self, statements: list[str]) -> list:
        """Run one micro-batch, tracing it when a trace was requested."""
        if not self._trace_pending:
            return self._answer_statements(statements)
        self._trace_pending = False
        trace = start_trace()
        try:
            return self._answer_statements(statements)
        finally:
            breakdown = end_trace(trace)
            self._last_trace = {
                "batch_size": len(statements),
                "captured_at": time.time(),
                **breakdown,
            }

    def _fail_requests(
        self, requests: Iterable[PendingRequest], error: BaseException
    ) -> None:
        """Deliver ``error`` to every not-yet-finished request."""
        failed = 0
        for request in requests:
            if not request.done():
                request._finish(None, error)
                failed += 1
        if failed:
            self._m_request_errors.inc(failed)
        with self._done_cond:
            self._done_cond.notify_all()

    def _run(self) -> None:
        batch: list[PendingRequest] = []
        try:
            while True:
                batch = self._collect_batch()
                if not batch:
                    return
                self._run_one_batch(batch)
                batch = []
        except BaseException as exc:
            # the worker loop itself failed (not a per-batch model error,
            # which _run_one_batch isolates) — fail everything in flight
            # and queued so no result() call can hang on a dead worker
            with self._condition:
                self._running = False
                queued = list(self._queue)
                self._queue.clear()
            error = ServiceUnavailableError(
                f"service worker died: {type(exc).__name__}: {exc}"
            )
            self._fail_requests(batch + queued, error)

    def _run_one_batch(self, batch: list[PendingRequest]) -> None:
        statements: list[str] = []
        for request in batch:
            statements.extend(request.statements)
        generation = self.generation
        memo_hits_before = self._m_memo_hits.value
        batch_started = time.perf_counter()
        for request in batch:
            request.dispatched_at = batch_started
        try:
            results = self._execute_batch(statements)
        except Exception as exc:  # memo isolation failed wholesale
            # Exception-level wholesale failures poison only this batch;
            # anything harsher (SystemExit, KeyboardInterrupt) kills the
            # worker loop so _run can declare the service down.
            self._fail_requests(batch, exc)
            return
        batch_seconds = time.perf_counter() - batch_started
        errored = 0
        offset = 0
        for request in batch:
            n = len(request.statements)
            slice_ = results[offset : offset + n]
            offset += n
            request.generation = generation
            error = next(
                (r for r in slice_ if isinstance(r, BaseException)), None
            )
            if error is not None:
                errored += 1
                request._finish(None, error)
            else:
                request._finish(slice_)
        with self._done_cond:
            self._done_cond.notify_all()
        self._m_requests.inc(len(batch))
        self._m_statements.inc(len(statements))
        self._m_batches.inc()
        if errored:
            self._m_request_errors.inc(errored)
        self._m_batch_size.observe(len(statements))
        with self._condition:
            self._max_batch_seen = max(self._max_batch_seen, len(statements))
            for request in batch:
                if request.latency_ms is not None:
                    self._latencies.append(request.latency_ms)
        for request in batch:
            if request.latency_ms is not None:
                self._m_latency.observe(request.latency_ms / 1000.0)
            self._m_queue_wait.observe(
                max(0.0, batch_started - request._enqueued_at)
            )
            self._m_compute.observe(batch_seconds)
        # one structured access record per batch when REPRO_OBS_LOG is
        # set — the service-side replacement for an HTTP access log
        obs_events.emit(
            "serve.batch",
            batch_size=len(statements),
            requests=len(batch),
            latency_ms=round(batch_seconds * 1000.0, 3),
            memo_hits=self._m_memo_hits.value - memo_hits_before,
        )
