"""Sharded multi-process serving tier: N facilitator workers, one queue.

One :class:`~repro.serving.service.FacilitatorService` process tops out at
one core's worth of model time and dies with its process. This module is
the next order of magnitude: a :class:`ShardedFacilitatorService` runs
``n_workers`` facilitator worker *processes* behind the same
micro-batching front end, sharded by statement digest so each worker's
insight memo and pipeline cache stay hot on its slice of the statement
space, and supervised so the tier keeps answering through worker crashes,
hangs, overload, and artifact swaps:

- **Scatter/gather micro-batching** — concurrent requests coalesce
  exactly as in the single-process service; each micro-batch is
  deduplicated, answered from the front-end insight memo where possible,
  and the misses are partitioned by ``blake2b(statement) % n_workers``
  into per-shard sub-batches that execute in parallel.
- **Supervision** — a :class:`~repro.serving.supervisor.Supervisor`
  health-checks every worker (process liveness, heartbeat, and a
  per-batch deadline that catches *hung* workers, not just dead ones) and
  restarts failures with exponential backoff + jitter. A dead shard's
  in-flight sub-batches are re-dispatched to surviving workers — marked
  ``degraded`` because they ran off their home slice — so no admitted
  request is lost.
- **Admission control** — a bounded queue: past ``max_pending``
  outstanding requests, :meth:`submit` sheds with
  :class:`~repro.serving.service.ServiceOverloadedError` (HTTP 503 +
  ``Retry-After``) instead of queueing unboundedly. Per-request deadlines
  propagate into workers; expired requests fail with ``TimeoutError``
  rather than waiting forever.
- **Hot reload** — :meth:`reload` validates the new artifact in a staging
  process (load + probe prediction; ``ArtifactFormatError`` fast-fail),
  then quiesces dispatch, drains in-flight batches, swaps every worker,
  and bumps the generation counter — so every response is computed
  entirely at one generation and a bad artifact never reaches a live
  shard. ``repro serve --watch`` drives this from artifact-file changes.

Fault injection (:mod:`repro.serving.faults`) threads through the worker
loop and the staging validator, which is how the chaos suite and
``benchmarks/bench_scale.py`` produce crashes, hangs, slow batches, and
corrupt artifacts on demand.

Exported metrics (beyond the ``repro_service_*`` family the front end
shares with the single-process service): ``repro_shard_restarts_total``,
``repro_requests_shed_total``, ``repro_degraded_responses_total``,
``repro_reloads_total{outcome=}``, ``repro_shard_workers_up``,
``repro_shard_generation``.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import multiprocessing.connection
import os
import queue as queue_mod
import threading
import time
from collections import deque
from collections.abc import Sequence
from dataclasses import asdict, dataclass, field

from repro.core.facilitator import (
    ARTIFACT_FORMAT,
    SUPPORTED_ARTIFACT_VERSIONS,
    QueryFacilitator,
    QueryInsights,
    _limit_worker_blas_threads,
)
from repro.models import serialize
from repro.models.serialize import ArtifactFormatError
from repro.obs.histograms import LATENCY_BUCKETS_S, SIZE_BUCKETS, Histogram
from repro.obs.registry import Counter, get_registry
from repro.serving.faults import FaultInjector, FaultPlan
from repro.serving.service import (
    InsightMemo,
    PendingRequest,
    ReloadInProgressError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    _PROBE_STATEMENT,
    _WAIT_SLICE_S,
    _percentile,
)
from repro.serving.supervisor import RestartBackoff, Supervisor, WorkerProbe

__all__ = ["ShardedFacilitatorService", "ShardedServiceStats", "shard_of"]

#: Re-dispatches one sub-batch may survive before its statements fail.
_MAX_DISPATCHES = 5

#: Worker boot time allowed before the supervisor starts the hung clock.
_BOOT_GRACE_S = 60.0

#: Heartbeat staleness (on a ready worker) treated as a hang.
_HEARTBEAT_TIMEOUT_S = 30.0


def shard_of(statement: str, n_shards: int) -> int:
    """Stable shard id of a statement (blake2b digest, mod ``n_shards``)."""
    digest = hashlib.blake2b(statement.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


@dataclass(frozen=True)
class ShardedServiceStats:
    """Snapshot of the sharded tier's serving counters (``/stats`` wire)."""

    requests: int
    statements: int
    batches: int
    shed: int
    degraded: int
    request_errors: int
    timeouts: int
    restarts: int
    generation: int
    workers: list = field(default_factory=list)
    outstanding: int = 0
    latency_p50_ms: float = 0.0
    latency_p99_ms: float = 0.0
    insight_cache: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)


class _Part:
    """One shard-slice of one micro-batch (distinct statements only)."""

    __slots__ = (
        "batch_id",
        "part_id",
        "home",
        "statements",
        "generation",
        "deadline",
        "worker_id",
        "dispatches",
        "degraded",
    )

    def __init__(self, batch_id, part_id, home, statements, generation, deadline):
        self.batch_id = batch_id
        self.part_id = part_id
        self.home = home
        self.statements = statements
        self.generation = generation
        self.deadline = deadline
        self.worker_id: int | None = None
        self.dispatches = 0
        self.degraded = False


class _Batch:
    """One dispatched micro-batch awaiting its parts."""

    __slots__ = ("batch_id", "requests", "outcomes", "degraded_stmts", "pending")

    def __init__(self, batch_id, requests):
        self.batch_id = batch_id
        self.requests = requests
        # statement -> QueryInsights | Exception (shared across requests)
        self.outcomes: dict[str, object] = {}
        self.degraded_stmts: set[str] = set()
        self.pending = 0


class _WorkerHandle:
    """Parent-side view of one shard worker process."""

    __slots__ = (
        "wid",
        "incarnation",
        "process",
        "request_q",
        "conn",
        "heartbeat",
        "busy_since",
        "generation",
        "up",
        "spawned_at",
        "restarts",
    )

    def __init__(self, wid):
        self.wid = wid
        self.incarnation = -1
        self.process = None
        self.request_q = None
        # per-worker result pipe: a SIGKILL mid-send corrupts only this
        # worker's own pipe, never a queue shared with survivors
        self.conn = None
        self.heartbeat = None
        self.busy_since = None
        self.generation = 0
        self.up = False
        self.spawned_at = 0.0
        self.restarts = 0


# --------------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------------- #


def _prime_pipeline(warm_path: str) -> None:
    """Warm the worker's sqlang pipeline cache from a workload file."""
    from repro.sqlang.pipeline import get_pipeline
    from repro.workloads.io import iter_workload

    pipeline = get_pipeline()
    capacity = pipeline.stats.max_size
    primed = 0
    chunk: list[str] = []
    for record in iter_workload(warm_path):
        chunk.append(record.statement)
        if len(chunk) >= 512:
            pipeline.analyze_batch(chunk)
            primed += len(chunk)
            chunk.clear()
            if primed >= capacity:
                return
    if chunk:
        pipeline.analyze_batch(chunk)


def _worker_main(
    wid: int,
    incarnation: int,
    cfg: dict,
    request_q,
    conn,
    heartbeat,
    busy_since,
) -> None:
    """Shard worker loop: load artifact, answer sub-batches, obey control
    messages. Runs in its own process; all replies go through this
    worker's own result pipe (never a queue shared with other workers, so
    a SIGKILL mid-send cannot wedge the survivors)."""
    _limit_worker_blas_threads(cfg.get("blas_threads", 1))
    plan = (
        FaultPlan.from_json(cfg["fault_plan"]) if cfg.get("fault_plan") else None
    )
    faults = FaultInjector(plan, wid, incarnation)
    generation = cfg["generation"]
    try:
        facilitator = QueryFacilitator.load(
            cfg["artifact_path"], mmap=cfg.get("mmap", False)
        )
        if cfg.get("warm_path"):
            _prime_pipeline(cfg["warm_path"])
    except Exception as exc:
        conn.send(
            ("boot_err", wid, incarnation, f"{type(exc).__name__}: {exc}")
        )
        return
    memo = InsightMemo(cfg.get("cache_size", 8192))
    heartbeat.value = time.monotonic()
    conn.send(("ready", wid, incarnation, generation, os.getpid()))
    while True:
        heartbeat.value = time.monotonic()
        try:
            msg = request_q.get(timeout=0.5)
        except queue_mod.Empty:
            continue
        kind = msg[0]
        if kind == "stop":
            return
        if kind == "reload":
            _, path, new_generation = msg
            try:
                faults.on_reload(path)
                candidate = QueryFacilitator.load(
                    path, mmap=cfg.get("mmap", False)
                )
                # probe compiles the candidate's inference plan before
                # the swap, so no served batch ever sees a half-staged
                # generation
                candidate.insights_batch([_PROBE_STATEMENT])
            except Exception as exc:
                conn.send(
                    (
                        "reload_err",
                        wid,
                        new_generation,
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            facilitator = candidate
            memo.clear()
            generation = new_generation
            conn.send(("reload_ok", wid, new_generation))
            continue
        if kind != "batch":
            continue
        _, batch_id, part_id, part_generation, statements, deadline = msg
        busy_since.value = time.monotonic()
        try:
            faults.on_batch()
            if deadline is not None and time.monotonic() > deadline:
                conn.send(("expired", wid, batch_id, part_id))
                continue
            results, _, _ = memo.resolve(
                statements, facilitator.insights_batch
            )
            payload = [
                r
                if isinstance(r, QueryInsights)
                else ("__error__", f"{type(r).__name__}: {r}")
                for r in results
            ]
            conn.send(
                ("result", wid, batch_id, part_id, generation, payload)
            )
        finally:
            busy_since.value = 0.0


def _staging_validate(path: str, fault_plan_json: str | None, conn) -> None:
    """Staged artifact validation (runs in its own short-lived process).

    Loads the artifact and answers a probe statement; a corrupt, foreign,
    or stale artifact fails here — before any live shard is touched.
    """
    _limit_worker_blas_threads(1)
    plan = FaultPlan.from_json(fault_plan_json) if fault_plan_json else None
    faults = FaultInjector(plan, FaultInjector.STAGING)
    try:
        faults.on_reload(path)
        facilitator = QueryFacilitator.load(path)
        facilitator.insights_batch([_PROBE_STATEMENT])
        conn.send(("ok", facilitator.artifact_identity))
    except Exception as exc:
        conn.send(("err", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


# --------------------------------------------------------------------------- #
# the sharded service
# --------------------------------------------------------------------------- #


class ShardedFacilitatorService:
    """Serve one artifact from ``n_workers`` supervised worker processes.

    The public surface mirrors :class:`FacilitatorService` — ``submit`` /
    ``insights`` / ``insights_many`` / ``stats`` / context manager — so
    the HTTP layer and CLI drive either interchangeably; responses are
    bit-identical to single-process serving because every worker loads
    the same artifact.

    Args:
        artifact_path: A facilitator artifact saved by ``repro train`` /
            :meth:`QueryFacilitator.save`; every worker loads it.
        n_workers: Shard worker processes.
        max_batch / max_wait_ms / cache_size / window: As in
            :class:`FacilitatorService` (``cache_size`` bounds both the
            front-end memo and each worker's memo).
        max_pending: Admission high-water mark — outstanding requests
            beyond this are shed with :class:`ServiceOverloadedError`.
        default_deadline_s: Deadline applied to requests that don't carry
            their own (None = unbounded).
        batch_deadline_s: How long one sub-batch may execute inside a
            worker before the supervisor declares the worker hung and
            replaces it.
        backoff: Restart backoff policy (default
            :class:`RestartBackoff()`).
        fault_plan: A :class:`FaultPlan` for chaos testing; falls back to
            the ``REPRO_FAULT_PLAN`` environment variable; empty = no-op.
        warm_path: Workload file each worker primes its pipeline cache
            from at boot.
        mp_context: ``multiprocessing`` start-method context; default
            ``forkserver`` (falls back to ``spawn``) — never bare ``fork``,
            which inherits this process's threads mid-flight.
    """

    def __init__(
        self,
        artifact_path,
        n_workers: int = 2,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        cache_size: int = 8192,
        max_pending: int = 1024,
        default_deadline_s: float | None = None,
        batch_deadline_s: float = 30.0,
        backoff: RestartBackoff | None = None,
        fault_plan: FaultPlan | None = None,
        warm_path=None,
        window: int = 4096,
        mp_context: str | None = None,
        mmap: bool = False,
    ):
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_pending <= 0:
            raise ValueError(f"max_pending must be positive, got {max_pending}")
        self.artifact_path = str(artifact_path)
        # fail fast on a bad artifact before any process spawns; also the
        # source of /healthz identity without loading payloads here
        manifest = serialize.read_manifest(
            self.artifact_path, ARTIFACT_FORMAT, SUPPORTED_ARTIFACT_VERSIONS
        )
        self.model_name = manifest.get("model_name", "unknown")
        self.problem_names = [
            entry["problem"].lower() for entry in manifest.get("heads", [])
        ]
        self._artifact_identity = {
            "format": manifest.get("format"),
            "version": manifest.get("version"),
            "path": self.artifact_path,
            "model_name": self.model_name,
            "models": {
                entry["problem"].lower(): entry.get("model_class")
                for entry in manifest.get("heads", [])
            },
        }
        self.n_workers = n_workers
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.cache_size = cache_size
        self.max_pending = max_pending
        self.default_deadline_s = default_deadline_s
        self.batch_deadline_s = batch_deadline_s
        self.warm_path = str(warm_path) if warm_path else None
        #: workers memory-map artifact weight arrays (v3 artifacts; each
        #: worker process maps the same file, so resident weight pages
        #: are shared across the shard fleet instead of copied per worker)
        self.mmap = mmap
        self.fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        if mp_context is None:
            try:
                self._ctx = mp.get_context("forkserver")
            except ValueError:  # pragma: no cover - platform without it
                self._ctx = mp.get_context("spawn")
        else:
            self._ctx = mp.get_context(mp_context)

        self._state = threading.Condition()
        self._done_cond = threading.Condition()
        self._running = False
        self._queue: deque[PendingRequest] = deque()
        self._outstanding = 0
        self._paused = False
        self._generation = 1
        self._batch_seq = 0
        self._batches: dict[int, _Batch] = {}
        self._inflight: dict[tuple[int, int], _Part] = {}
        self._unrouted: deque[_Part] = deque()
        self._handles = [_WorkerHandle(w) for w in range(n_workers)]
        self._front_memo = InsightMemo(cache_size)
        self._dispatcher: threading.Thread | None = None
        self._collector: threading.Thread | None = None
        self._reload_lock = threading.Lock()
        self.supervisor = Supervisor(
            _Fleet(self),
            batch_deadline_s=batch_deadline_s,
            backoff=backoff,
        )
        # front-end metrics: same repro_service_* family as the
        # single-process service (newest service owns the series), plus
        # the shard-tier counters
        self._m_requests = Counter()
        self._m_statements = Counter()
        self._m_batches = Counter()
        self._m_memo_hits = Counter()
        self._m_memo_misses = Counter()
        self._m_request_errors = Counter()
        self._m_shed = Counter()
        self._m_degraded = Counter()
        self._m_restarts = Counter()
        self._m_timeouts = Counter()
        self._m_batch_size = Histogram(SIZE_BUCKETS)
        self._m_latency = Histogram(LATENCY_BUCKETS_S)
        self._m_queue_wait = Histogram(LATENCY_BUCKETS_S)
        self._m_compute = Histogram(LATENCY_BUCKETS_S)
        self._latencies: deque[float] = deque(maxlen=window)

    # -- lifecycle ----------------------------------------------------------- #

    def start(self, ready_timeout_s: float = 120.0) -> "ShardedFacilitatorService":
        """Spawn workers and block until at least one shard is serving."""
        with self._state:
            if self._running:
                return self
            self._running = True
        self._register_metrics()
        for handle in self._handles:
            self._spawn_locked(handle)
        self._collector = threading.Thread(
            target=self._collect_loop, name="shard-collector", daemon=True
        )
        self._collector.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="shard-dispatcher", daemon=True
        )
        self._dispatcher.start()
        self.supervisor.start()
        # wait (bounded) for the full fleet so early requests are not
        # needlessly degraded; one live shard is enough to start serving
        deadline = time.monotonic() + ready_timeout_s
        with self._state:
            while not all(h.up for h in self._handles):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._state.wait(min(remaining, _WAIT_SLICE_S))
        if not any(h.up for h in self._handles):
            self.stop()
            raise ServiceUnavailableError(
                f"no shard worker became ready within {ready_timeout_s}s"
            )
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop accepting work, fail what cannot finish, tear down workers."""
        with self._state:
            if not self._running:
                return
            self._running = False
            self._state.notify_all()
        self.supervisor.stop()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout)
            self._dispatcher = None
        # give in-flight batches a bounded drain, then fail the remainder
        deadline = time.monotonic() + timeout
        with self._state:
            while self._batches and time.monotonic() < deadline:
                self._state.wait(_WAIT_SLICE_S)
            leftovers = []
            for batch in self._batches.values():
                leftovers.extend(batch.requests)
            self._batches.clear()
            self._inflight.clear()
            self._unrouted.clear()
            queued = list(self._queue)
            self._queue.clear()
        error = ServiceUnavailableError("service stopped")
        for request in leftovers + queued:
            self._finish_request(request, error=error)
        for handle in self._handles:
            if handle.request_q is not None:
                try:
                    handle.request_q.put(("stop",))
                except Exception:
                    pass
        for handle in self._handles:
            process = handle.process
            if process is not None:
                process.join(2.0)
                if process.is_alive():
                    process.kill()
                    process.join(2.0)
            handle.up = False
        if self._collector is not None:
            self._collector.join(timeout)
            self._collector = None
        for handle in self._handles:
            if handle.request_q is not None:
                handle.request_q.cancel_join_thread()
                handle.request_q.close()
                handle.request_q = None
            if handle.conn is not None:
                handle.conn.close()
                handle.conn = None

    def __enter__(self) -> "ShardedFacilitatorService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _register_metrics(self) -> None:
        registry = get_registry()
        for name, metric, help_text in (
            ("repro_service_requests_total", self._m_requests,
             "Requests answered (one submit/insights call each)"),
            ("repro_service_statements_total", self._m_statements,
             "Statements predicted across all requests"),
            ("repro_service_batches_total", self._m_batches,
             "Micro-batches executed"),
            ("repro_service_insight_memo_hits_total", self._m_memo_hits,
             "Statements answered from the front-end insight memo"),
            ("repro_service_insight_memo_misses_total", self._m_memo_misses,
             "Distinct statements dispatched to shard workers"),
            ("repro_service_request_errors_total", self._m_request_errors,
             "Requests that finished with an error"),
            ("repro_service_batch_size", self._m_batch_size,
             "Statements per dispatched micro-batch"),
            ("repro_service_request_latency_seconds", self._m_latency,
             "Request latency, enqueue to result ready"),
            ("repro_service_queue_wait_seconds", self._m_queue_wait,
             "Time a request waited for dispatch to shard workers"),
            ("repro_service_compute_seconds", self._m_compute,
             "Time a request's scattered sub-batches spent in workers"),
            ("repro_requests_shed_total", self._m_shed,
             "Requests shed by admission control (HTTP 503)"),
            ("repro_degraded_responses_total", self._m_degraded,
             "Responses served degraded (off-shard or fallback memo)"),
            ("repro_shard_restarts_total", self._m_restarts,
             "Shard worker processes restarted by the supervisor"),
            ("repro_request_timeouts_total", self._m_timeouts,
             "Requests that exceeded their deadline"),
        ):
            registry.attach(name, metric, help_text)
        registry.register_callback(
            "repro_service_queue_depth",
            lambda: float(len(self._queue)),
            help="Requests waiting in the micro-batching queue",
        )
        registry.register_callback(
            "repro_service_insight_memo_size",
            lambda: float(len(self._front_memo)),
            help="Distinct statements held by the front-end insight memo",
        )
        registry.register_callback(
            "repro_shard_workers_up",
            lambda: float(sum(1 for h in self._handles if h.up)),
            help="Shard workers currently serving",
        )
        registry.register_callback(
            "repro_shard_generation",
            lambda: float(self._generation),
            help="Artifact generation being served",
        )
        registry.register_callback(
            "repro_shard_outstanding_requests",
            lambda: float(self._outstanding),
            help="Admitted requests not yet finished",
        )

    # -- worker process management ------------------------------------------- #

    def _spawn_locked(self, handle: _WorkerHandle) -> None:
        """Start (or restart) one worker process. Not under ``_state``
        (process spawn is slow); handle fields are only written here and
        read elsewhere, with ``up`` as the synchronization point."""
        handle.incarnation += 1
        handle.up = False
        handle.generation = 0
        handle.request_q = self._ctx.Queue()
        if handle.conn is not None:
            handle.conn.close()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        handle.conn = recv_conn
        handle.heartbeat = self._ctx.Value("d", 0.0)
        handle.busy_since = self._ctx.Value("d", 0.0)
        handle.spawned_at = time.monotonic()
        cfg = {
            "artifact_path": self.artifact_path,
            "cache_size": self.cache_size,
            "warm_path": self.warm_path,
            "mmap": self.mmap,
            "generation": self._generation,
            "fault_plan": self.fault_plan.to_json() if self.fault_plan else None,
            "blas_threads": max(1, (os.cpu_count() or 2) // self.n_workers),
        }
        handle.process = self._ctx.Process(
            target=_worker_main,
            args=(
                handle.wid,
                handle.incarnation,
                cfg,
                handle.request_q,
                send_conn,
                handle.heartbeat,
                handle.busy_since,
            ),
            name=f"facilitator-shard-{handle.wid}",
            daemon=True,
        )
        handle.process.start()
        # the child owns its write end now; without this close the parent
        # would never see EOF after a worker death
        send_conn.close()

    def _on_worker_down(self, wid: int, reason: str) -> None:
        """Supervisor callback: mark the shard down and re-route its work."""
        with self._state:
            handle = self._handles[wid]
            handle.up = False
            handle.restarts += 1
            self._m_restarts.inc()
            orphans = [
                key
                for key, part in self._inflight.items()
                if part.worker_id == wid
            ]
            for key in orphans:
                part = self._inflight.pop(key)
                part.degraded = True
                self._route_part_locked(part)
            self._state.notify_all()

    def _terminate_worker(self, wid: int, reason: str) -> None:
        handle = self._handles[wid]
        process = handle.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(2.0)

    def _probe_worker(self, wid: int) -> WorkerProbe:
        handle = self._handles[wid]
        process = handle.process
        if process is None or not process.is_alive():
            return WorkerProbe(alive=False)
        now = time.monotonic()
        busy_candidates = []
        if not handle.up:
            boot_s = now - handle.spawned_at
            if boot_s > _BOOT_GRACE_S:
                busy_candidates.append(boot_s - _BOOT_GRACE_S)
        else:
            busy = handle.busy_since.value
            if busy > 0.0:
                busy_candidates.append(now - busy)
            beat = handle.heartbeat.value
            if beat > 0.0 and now - beat > _HEARTBEAT_TIMEOUT_S:
                busy_candidates.append(now - beat)
        busy_s = max(busy_candidates) if busy_candidates else None
        return WorkerProbe(alive=True, busy_s=busy_s)

    def _respawn_worker(self, wid: int) -> None:
        handle = self._handles[wid]
        process = handle.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(2.0)
        if not self._running:
            return
        self._spawn_locked(handle)

    # -- request path -------------------------------------------------------- #

    def submit(
        self,
        statements: str | Sequence[str],
        deadline_s: float | None = None,
    ) -> PendingRequest:
        """Admit one request (or shed it); ``result()`` blocks until done."""
        if isinstance(statements, str):
            statements = [statements]
        deadline_s = (
            deadline_s if deadline_s is not None else self.default_deadline_s
        )
        deadline = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        request = PendingRequest(
            list(statements), self._done_cond, deadline=deadline
        )
        with self._state:
            if not self._running:
                raise ServiceUnavailableError(
                    "ShardedFacilitatorService is not running "
                    "(use `with service:` or call start())"
                )
            if self._outstanding >= self.max_pending:
                self._m_shed.inc()
                raise ServiceOverloadedError(
                    f"admission queue is full ({self._outstanding} outstanding "
                    f">= max_pending={self.max_pending}); retry shortly",
                    retry_after_s=max(0.1, self.max_wait_ms / 1000.0 * 4),
                )
            self._outstanding += 1
            was_empty = not self._queue
            self._queue.append(request)
            if was_empty:
                self._state.notify_all()
        return request

    def insights(
        self, statement: str, timeout: float | None = None
    ) -> QueryInsights:
        return self.submit(statement).result(timeout)[0]

    def insights_many(
        self, statements: Sequence[str], timeout: float | None = None
    ) -> list[QueryInsights]:
        return self.submit(list(statements)).result(timeout)

    def _finish_request(
        self,
        request: PendingRequest,
        results=None,
        error: BaseException | None = None,
        degraded: bool = False,
        generation: int | None = None,
    ) -> None:
        """Complete one request exactly once and record its telemetry."""
        with self._done_cond:
            if request.done():
                return
            request.degraded = degraded
            request.generation = generation
            request._finish(results, error)
            self._done_cond.notify_all()
        with self._state:
            self._outstanding -= 1
        self._m_requests.inc()
        if error is not None:
            self._m_request_errors.inc()
            if isinstance(error, TimeoutError):
                self._m_timeouts.inc()
        if degraded:
            self._m_degraded.inc()
        if request.latency_ms is not None:
            self._latencies.append(request.latency_ms)
            self._m_latency.observe(request.latency_ms / 1000.0)
        now = time.perf_counter()
        if request.dispatched_at is not None:
            self._m_queue_wait.observe(
                max(0.0, request.dispatched_at - request._enqueued_at)
            )
            self._m_compute.observe(max(0.0, now - request.dispatched_at))
        else:
            # finished before dispatch (expired / stopped): all queue wait
            self._m_queue_wait.observe(max(0.0, now - request._enqueued_at))

    # -- dispatcher ----------------------------------------------------------- #

    def _dispatch_loop(self) -> None:
        try:
            while True:
                batch_requests = self._collect_batch()
                if not batch_requests:
                    return
                self._dispatch_batch(batch_requests)
        except BaseException as exc:
            self._die(exc)

    def _collect_batch(self) -> list[PendingRequest]:
        """Gather one micro-batch (same coalescing as the single service)."""
        max_wait_s = self.max_wait_ms / 1000.0
        with self._state:
            while self._running and (self._paused or not self._queue):
                self._state.wait(_WAIT_SLICE_S)
            if not self._running and not self._queue:
                return []
            batch = [self._queue.popleft()]
            size = len(batch[0].statements)
            deadline = time.monotonic() + max_wait_s
            while size < self.max_batch:
                if self._paused:
                    break
                if self._queue:
                    request = self._queue.popleft()
                    batch.append(request)
                    size += len(request.statements)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._running:
                    break
                self._state.wait(min(remaining, _WAIT_SLICE_S))
            return batch

    def _dispatch_batch(self, batch_requests: list[PendingRequest]) -> None:
        now = time.monotonic()
        live: list[PendingRequest] = []
        for request in batch_requests:
            if request.deadline is not None and now > request.deadline:
                self._finish_request(
                    request,
                    error=TimeoutError(
                        "request expired before dispatch (deadline exceeded)"
                    ),
                )
            else:
                live.append(request)
        if not live:
            return
        dispatched_at = time.perf_counter()
        statements: list[str] = []
        for request in live:
            request.dispatched_at = dispatched_at
            statements.extend(request.statements)
        unique: dict[str, None] = {}
        for statement in statements:
            unique.setdefault(statement)
        self._m_statements.inc(len(statements))
        self._m_batches.inc()
        self._m_batch_size.observe(len(statements))
        with self._state:
            self._batch_seq += 1
            batch = _Batch(self._batch_seq, live)
            generation = self._generation
            hits = 0
            misses: list[str] = []
            for statement in unique:
                cached = self._front_memo.get(statement)
                if cached is not None:
                    batch.outcomes[statement] = cached
                    hits += 1
                else:
                    misses.append(statement)
            if hits:
                self._m_memo_hits.inc(hits)
            if misses:
                self._m_memo_misses.inc(len(misses))
                by_shard: dict[int, list[str]] = {}
                for statement in misses:
                    by_shard.setdefault(
                        shard_of(statement, self.n_workers), []
                    ).append(statement)
                part_deadline = None
                deadlines = [
                    r.deadline for r in live if r.deadline is not None
                ]
                if len(deadlines) == len(live) and deadlines:
                    part_deadline = max(deadlines)
                batch.pending = len(by_shard)
                self._batches[batch.batch_id] = batch
                for part_id, (home, stmts) in enumerate(
                    sorted(by_shard.items())
                ):
                    part = _Part(
                        batch.batch_id,
                        part_id,
                        home,
                        stmts,
                        generation,
                        part_deadline,
                    )
                    self._route_part_locked(part)
        if not misses:
            self._complete_batch(batch, generation)

    def _route_part_locked(self, part: _Part) -> None:
        """Send one sub-batch to its home shard, or the best survivor.

        Caller holds ``_state``. A part that has exhausted its dispatch
        budget fails its statements instead of bouncing forever.
        """
        if part.dispatches >= _MAX_DISPATCHES:
            self._part_failed_locked(
                part,
                ServiceUnavailableError(
                    f"sub-batch re-dispatched {part.dispatches} times without "
                    "a surviving worker answering"
                ),
            )
            return
        handle = self._handles[part.home]
        if not handle.up:
            survivors = [h for h in self._handles if h.up]
            if not survivors:
                self._unrouted.append(part)
                return
            # stable spread of orphaned slices over the survivors
            handle = survivors[
                (part.home + part.dispatches) % len(survivors)
            ]
            part.degraded = True
        part.worker_id = handle.wid
        part.dispatches += 1
        self._inflight[(part.batch_id, part.part_id)] = part
        try:
            handle.request_q.put(
                (
                    "batch",
                    part.batch_id,
                    part.part_id,
                    part.generation,
                    part.statements,
                    part.deadline,
                )
            )
        except Exception:
            # queue torn down mid-route (worker being replaced): retry path
            self._inflight.pop((part.batch_id, part.part_id), None)
            handle.up = False
            self._route_part_locked(part)

    def _part_failed_locked(self, part: _Part, error: BaseException) -> None:
        batch = self._batches.get(part.batch_id)
        if batch is None:
            return
        for statement in part.statements:
            batch.outcomes[statement] = error
            if part.degraded:
                batch.degraded_stmts.add(statement)
        batch.pending -= 1
        if batch.pending <= 0:
            del self._batches[batch.batch_id]
            generation = self._generation
            self._state.notify_all()
            threading.Thread(
                target=self._complete_batch,
                args=(batch, generation),
                daemon=True,
            ).start()

    def _complete_batch(self, batch: _Batch, generation: int) -> None:
        """Assemble per-request responses from the batch's outcomes."""
        for request in batch.requests:
            if request.done():
                continue
            error = None
            results = []
            degraded = False
            for statement in request.statements:
                outcome = batch.outcomes.get(statement)
                if outcome is None:
                    error = ServiceUnavailableError(
                        "sub-batch lost without an outcome"
                    )
                    break
                if statement in batch.degraded_stmts:
                    degraded = True
                if isinstance(outcome, BaseException):
                    error = outcome
                    break
                results.append(outcome.copy())
            if error is not None:
                self._finish_request(
                    request, error=error, degraded=degraded,
                    generation=generation,
                )
            else:
                self._finish_request(
                    request, results=results, degraded=degraded,
                    generation=generation,
                )

    def _die(self, exc: BaseException) -> None:
        """Front-end thread crashed: fail everything so nothing hangs."""
        with self._state:
            self._running = False
            requests = list(self._queue)
            self._queue.clear()
            for batch in self._batches.values():
                requests.extend(batch.requests)
            self._batches.clear()
            self._inflight.clear()
            self._unrouted.clear()
            self._state.notify_all()
        error = ServiceUnavailableError(
            f"serving tier failed: {type(exc).__name__}: {exc}"
        )
        for request in requests:
            self._finish_request(request, error=error)

    # -- collector ------------------------------------------------------------ #

    def _collect_loop(self) -> None:
        try:
            while True:
                with self._state:
                    if not self._running and not self._batches:
                        return
                    conns = {
                        h.conn: h for h in self._handles if h.conn is not None
                    }
                if not conns:
                    time.sleep(0.05)
                    self._sweep_deadlines()
                    continue
                try:
                    ready = mp.connection.wait(list(conns), timeout=0.1)
                except OSError:
                    ready = []
                for conn in ready:
                    try:
                        msg = conn.recv()
                    except Exception:
                        # EOF or a send torn by SIGKILL: this pipe is done
                        # (possibly desynced) — drop it; the supervisor
                        # notices the dead process and respawns with a
                        # fresh pipe
                        with self._state:
                            handle = conns[conn]
                            if handle.conn is conn:
                                handle.conn = None
                        conn.close()
                        continue
                    try:
                        self._handle_message(msg)
                    except Exception:
                        pass  # a torn message must not kill the collector
                self._sweep_deadlines()
        except BaseException as exc:
            self._die(exc)

    def _handle_message(self, msg: tuple) -> None:
        kind = msg[0]
        if kind == "result":
            _, wid, batch_id, part_id, generation, payload = msg
            self._on_result(wid, batch_id, part_id, generation, payload)
        elif kind == "ready":
            _, wid, incarnation, generation, pid = msg
            with self._state:
                handle = self._handles[wid]
                if incarnation != handle.incarnation:
                    return  # stale ready from a replaced process
                handle.up = True
                handle.generation = generation
                unrouted = list(self._unrouted)
                self._unrouted.clear()
                for part in unrouted:
                    self._route_part_locked(part)
                self._state.notify_all()
        elif kind == "expired":
            _, wid, batch_id, part_id = msg
            with self._state:
                part = self._inflight.pop((batch_id, part_id), None)
                if part is not None:
                    self._part_failed_locked(
                        part,
                        TimeoutError("deadline exceeded inside the worker"),
                    )
        elif kind in ("reload_ok", "reload_err", "boot_err"):
            with self._state:
                if kind == "reload_ok":
                    _, wid, generation = msg
                    self._handles[wid].generation = generation
                elif kind == "reload_err":
                    _, wid, generation, message = msg
                    self._handles[wid].generation = -generation  # failed mark
                else:
                    _, wid, incarnation, message = msg
                    # worker could not load the artifact; the process has
                    # exited — the supervisor will back off and retry
                self._state.notify_all()

    def _on_result(
        self, wid, batch_id, part_id, generation, payload
    ) -> None:
        completed = None
        with self._state:
            part = self._inflight.pop((batch_id, part_id), None)
            if part is None:
                return  # duplicate answer after a re-dispatch: ignore
            if generation != part.generation:
                # a worker answered at the wrong generation (cannot happen
                # while reload quiesces dispatch; guard anyway)
                self._route_part_locked(part)
                return
            batch = self._batches.get(batch_id)
            if batch is None:
                return
            for statement, outcome in zip(part.statements, payload):
                if (
                    isinstance(outcome, tuple)
                    and len(outcome) == 2
                    and outcome[0] == "__error__"
                ):
                    batch.outcomes[statement] = RuntimeError(outcome[1])
                else:
                    batch.outcomes[statement] = outcome
                    self._front_memo.put(statement, outcome)
                if part.degraded:
                    batch.degraded_stmts.add(statement)
            batch.pending -= 1
            if batch.pending <= 0:
                del self._batches[batch_id]
                completed = batch
                self._state.notify_all()
        if completed is not None:
            self._complete_batch(completed, generation)

    def _sweep_deadlines(self) -> None:
        """Fail requests that blew their deadline (queued or in flight)."""
        now = time.monotonic()
        expired: list[PendingRequest] = []
        with self._state:
            if self._queue and any(
                r.deadline is not None and now > r.deadline
                for r in self._queue
            ):
                keep: deque[PendingRequest] = deque()
                for request in self._queue:
                    if request.deadline is not None and now > request.deadline:
                        expired.append(request)
                    else:
                        keep.append(request)
                self._queue = keep
            for batch in self._batches.values():
                for request in batch.requests:
                    if (
                        not request.done()
                        and request.deadline is not None
                        and now > request.deadline
                    ):
                        expired.append(request)
        for request in expired:
            self._finish_request(
                request, error=TimeoutError("request deadline exceeded")
            )

    # -- hot reload ----------------------------------------------------------- #

    @property
    def generation(self) -> int:
        with self._state:
            return self._generation

    def reload(self, path, timeout_s: float = 60.0) -> dict:
        """Zero-downtime artifact swap across every shard.

        1. **Stage**: load + probe the artifact in a separate staging
           process; a corrupt/foreign/stale file is rejected here and the
           tier keeps serving the old generation.
        2. **Quiesce**: pause dispatch and drain in-flight sub-batches
           (admission stays open — requests queue, or shed past the
           high-water mark).
        3. **Swap**: every worker loads the new artifact and confirms; a
           worker that fails to swap is killed and respawned directly at
           the new generation.
        4. **Resume** at ``generation + 1``.

        Because dispatch is paused across the swap, every response is
        computed entirely at one generation — no mixed-generation batch
        can exist.
        """
        if not self._reload_lock.acquire(blocking=False):
            raise ReloadInProgressError("a reload is already in progress")
        try:
            path = str(path)
            outcome, detail = self._stage_validate(path, timeout_s)
            if outcome != "ok":
                self._count_reload("rejected")
                raise ArtifactFormatError(
                    f"{path}: staged validation rejected artifact: {detail}"
                )
            identity = detail
            with self._state:
                self._paused = True
            try:
                new_generation = self._swap_workers(path, timeout_s)
            except Exception:
                self._count_reload("failed")
                raise
            finally:
                with self._state:
                    self._paused = False
                    self._state.notify_all()
            identity["path"] = path
            with self._state:
                self._artifact_identity = identity
            self._count_reload("ok")
            return {"generation": new_generation, "artifact": identity}
        finally:
            self._reload_lock.release()

    def _stage_validate(self, path: str, timeout_s: float):
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        plan_json = self.fault_plan.to_json() if self.fault_plan else None
        process = self._ctx.Process(
            target=_staging_validate,
            args=(path, plan_json, child_conn),
            name="facilitator-staging",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            if parent_conn.poll(timeout_s):
                status, detail = parent_conn.recv()
                return ("ok", detail) if status == "ok" else ("err", detail)
            return ("err", f"staging validation timed out after {timeout_s}s")
        except EOFError:
            return ("err", "staging validator died without a verdict")
        finally:
            parent_conn.close()
            process.join(2.0)
            if process.is_alive():
                process.kill()
                process.join(2.0)

    def _swap_workers(self, path: str, timeout_s: float) -> int:
        deadline = time.monotonic() + timeout_s
        # drain: no in-flight sub-batches may straddle the generations
        with self._state:
            while self._batches:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        "in-flight batches did not drain before the reload "
                        "deadline"
                    )
                self._state.wait(_WAIT_SLICE_S)
            new_generation = self._generation + 1
            # restarts from here on boot straight into the new artifact
            self.artifact_path = path
            self._generation = new_generation
            self._front_memo = InsightMemo(self.cache_size)
            up_workers = [h for h in self._handles if h.up]
            for handle in up_workers:
                handle.request_q.put(("reload", path, new_generation))
        for handle in up_workers:
            while True:
                with self._state:
                    generation = handle.generation
                    still_up = handle.up
                if generation == new_generation:
                    break
                if (
                    generation == -new_generation
                    or not still_up
                    or time.monotonic() > deadline
                ):
                    # failed or wedged mid-swap: replace it; the fresh
                    # process loads the new artifact at boot
                    self._terminate_worker(handle.wid, "reload")
                    break
                time.sleep(_WAIT_SLICE_S / 5)
        return new_generation

    @staticmethod
    def _count_reload(outcome: str) -> None:
        get_registry().counter(
            "repro_reloads_total",
            "Artifact hot-reload attempts by outcome",
            outcome=outcome,
        ).inc()

    # -- stats ---------------------------------------------------------------- #

    @property
    def artifact_identity(self) -> dict:
        with self._state:
            return dict(self._artifact_identity)

    @property
    def workers(self) -> list[dict]:
        """Per-shard worker status (``/stats``, ``/healthz``, chaos asserts).

        ``state`` is the one-word health a fleet scraper keys on:
        ``restarting`` (process down, supervisor backing off toward a
        respawn), ``degraded`` (this worker serves, but a sibling shard is
        down so its slice re-routes here cold, or this worker is mid-swap
        at a stale generation), or ``up``.
        """
        with self._state:
            generation = self._generation
            any_down = any(not h.up for h in self._handles)
            return [
                {
                    "worker": h.wid,
                    "pid": h.process.pid if h.process is not None else None,
                    "up": h.up,
                    "state": (
                        "restarting"
                        if not h.up
                        else (
                            "degraded"
                            if any_down or h.generation != generation
                            else "up"
                        )
                    ),
                    "incarnation": h.incarnation,
                    "generation": h.generation,
                    "restarts": h.restarts,
                }
                for h in self._handles
            ]

    def worker_pids(self) -> list[int | None]:
        return [w["pid"] for w in self.workers]

    @property
    def stats(self) -> ShardedServiceStats:
        with self._state:
            latencies = sorted(self._latencies)
            outstanding = self._outstanding
            generation = self._generation
            memo_len = len(self._front_memo)
        hits = self._m_memo_hits.value
        misses = self._m_memo_misses.value
        return ShardedServiceStats(
            requests=self._m_requests.value,
            statements=self._m_statements.value,
            batches=self._m_batches.value,
            shed=self._m_shed.value,
            degraded=self._m_degraded.value,
            request_errors=self._m_request_errors.value,
            timeouts=self._m_timeouts.value,
            restarts=self._m_restarts.value,
            generation=generation,
            workers=self.workers,
            outstanding=outstanding,
            latency_p50_ms=round(_percentile(latencies, 0.50), 3),
            latency_p99_ms=round(_percentile(latencies, 0.99), 3),
            insight_cache={
                "hits": hits,
                "misses": misses,
                "hit_rate": (
                    round(hits / (hits + misses), 4) if hits + misses else 0.0
                ),
                "size": memo_len,
                "max_size": self.cache_size,
            },
        )


class _Fleet:
    """Adapter giving the :class:`Supervisor` its mechanism hooks."""

    def __init__(self, service: ShardedFacilitatorService):
        self._service = service

    def worker_ids(self):
        return range(self._service.n_workers)

    def probe(self, wid: int) -> WorkerProbe:
        return self._service._probe_worker(wid)

    def terminate(self, wid: int, reason: str) -> None:
        self._service._terminate_worker(wid, reason)

    def on_down(self, wid: int, reason: str) -> None:
        self._service._on_worker_down(wid, reason)

    def respawn(self, wid: int) -> None:
        self._service._respawn_worker(wid)
