"""Stdlib JSON/HTTP endpoint over a :class:`FacilitatorService`.

No framework dependency: a :class:`ThreadingHTTPServer` whose handler
threads submit into the service's micro-batching queue and block until
their batch runs — which is exactly how concurrent requests coalesce into
one ``insights_batch`` call.

Routes:

- ``POST /insights`` — body ``{"statements": [...]}`` (or
  ``{"statement": "..."}``); responds ``{"insights": [...]}`` with one
  JSON object per statement (the ``QueryInsights.to_dict`` wire format).
- ``GET /stats`` — serving counters + pipeline cache effectiveness;
  ``GET /stats?trace=1`` additionally returns the per-stage breakdown of
  the most recently traced micro-batch (and asks the worker to trace the
  next one, so repeated calls keep the sample fresh).
- ``GET /metrics`` — the whole process's :mod:`repro.obs` registry in
  Prometheus text exposition format (pipeline cache, service
  queue/latency, per-stage span histograms, training/I/O counters).
- ``GET /healthz`` — liveness, the problems this facilitator answers,
  and the artifact identity (manifest format/version, model names, source
  path) so a fleet can detect stale shards.

Every route increments ``repro_http_requests_total{route=...}`` (and
``repro_http_errors_total{route=...}`` on 4xx/5xx); request decode and
response encode are traced as ``decode``/``encode`` spans.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs import textfmt
from repro.obs.registry import get_registry
from repro.obs.spans import span
from repro.serving.service import FacilitatorService

__all__ = ["InsightsHTTPServer", "make_server"]

#: Request bodies larger than this are rejected outright (64 MiB).
_MAX_BODY_BYTES = 64 * 1024 * 1024


class InsightsHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared service for its handlers."""

    daemon_threads = True

    def __init__(self, address, service: FacilitatorService, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _InsightsHandler)


class _InsightsHandler(BaseHTTPRequestHandler):
    server: InsightsHTTPServer

    #: Route label for the metrics counters; set per request at dispatch.
    _route = "unknown"

    # -- plumbing ------------------------------------------------------------ #

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            super().log_message(format, *args)

    def _count_request(self, route: str) -> None:
        self._route = route
        get_registry().counter(
            "repro_http_requests_total",
            "HTTP requests by route",
            route=route,
        ).inc()

    def _count_error(self, status: int) -> None:
        get_registry().counter(
            "repro_http_errors_total",
            "HTTP 4xx/5xx responses by route",
            route=self._route,
        ).inc()

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        if status >= 400:
            self._count_error(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        with span("encode"):
            body = json.dumps(payload).encode("utf-8")
        self._send_body(status, body, "application/json")

    def _read_body_json(self) -> dict | None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._send_json(400, {"error": "bad Content-Length header"})
            return None
        if length <= 0:
            self._send_json(400, {"error": "empty request body"})
            return None
        if length > _MAX_BODY_BYTES:
            self._send_json(413, {"error": "request body too large"})
            return None
        try:
            with span("decode"):
                payload = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send_json(400, {"error": f"body is not JSON: {exc}"})
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "body must be a JSON object"})
            return None
        return payload

    # -- routes -------------------------------------------------------------- #

    def do_POST(self) -> None:
        path = urlsplit(self.path).path.rstrip("/")
        if path != "/insights":
            self._count_request("unknown")
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        self._count_request("/insights")
        payload = self._read_body_json()
        if payload is None:
            return
        statements = payload.get("statements")
        if statements is None and "statement" in payload:
            statements = [payload["statement"]]
        if (
            not isinstance(statements, list)
            or not statements
            or not all(isinstance(s, str) for s in statements)
        ):
            self._send_json(
                400,
                {
                    "error": "body needs 'statements': [str, ...] "
                    "(or 'statement': str)"
                },
            )
            return
        try:
            insights = self.server.service.insights_many(statements)
        except Exception as exc:
            self._send_json(500, {"error": str(exc)})
            return
        self._send_json(
            200, {"insights": [insight.to_dict() for insight in insights]}
        )

    def do_GET(self) -> None:
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        if path == "/stats":
            self._count_request("/stats")
            service = self.server.service
            payload = service.stats.to_dict()
            query = parse_qs(parts.query)
            if query.get("trace", ["0"])[0] not in ("0", "", "false"):
                payload["trace"] = service.last_trace
                service.request_trace()  # keep the sample fresh
            self._send_json(200, payload)
        elif path == "/metrics":
            self._count_request("/metrics")
            text = textfmt.render(get_registry().snapshot())
            self._send_body(200, text.encode("utf-8"), textfmt.CONTENT_TYPE)
        elif path == "/healthz":
            self._count_request("/healthz")
            facilitator = self.server.service.facilitator
            self._send_json(
                200,
                {
                    "status": "ok",
                    "model_name": facilitator.model_name,
                    "problems": [
                        p.name.lower() for p in facilitator.problems
                    ],
                    "artifact": facilitator.artifact_identity,
                },
            )
        else:
            self._count_request("unknown")
            self._send_json(404, {"error": f"unknown path {self.path!r}"})


def make_server(
    service: FacilitatorService,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
) -> InsightsHTTPServer:
    """Bind (but do not start) the JSON endpoint for ``service``.

    ``port=0`` binds an ephemeral port; read ``server.server_address``.
    Call ``serve_forever()`` to run, ``shutdown()`` from another thread to
    stop.
    """
    return InsightsHTTPServer((host, port), service, quiet=quiet)
