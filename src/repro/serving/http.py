"""Stdlib JSON/HTTP endpoint over a facilitator service.

No framework dependency: a :class:`ThreadingHTTPServer` whose handler
threads submit into the service's micro-batching queue and block until
their batch runs — which is exactly how concurrent requests coalesce into
one ``insights_batch`` call. The same server fronts either a
single-process :class:`~repro.serving.service.FacilitatorService` or the
fault-tolerant :class:`~repro.serving.shards.ShardedFacilitatorService`.

Routes:

- ``POST /insights`` — body ``{"statements": [...]}`` (or
  ``{"statement": "..."}``), optional ``"deadline_ms"``; responds
  ``{"insights": [...]}`` with one JSON object per statement (the
  ``QueryInsights.to_dict`` wire format) plus, on the sharded tier,
  ``"degraded": true`` when the answer was served off its home shard
  while a worker restarts, and the artifact ``"generation"`` that
  computed it.
- ``POST /reload`` — body ``{"path": "..."}`` (optional; defaults to the
  artifact the service was started from): zero-downtime hot swap. A bad
  artifact is rejected ``400`` by staged validation without touching live
  shards; a concurrent reload answers ``409``.
- ``GET /stats`` — serving counters + cache effectiveness;
  ``GET /stats?trace=1`` additionally returns the per-stage breakdown of
  the most recently traced micro-batch (single-process service only).
- ``GET /metrics`` — the whole process's :mod:`repro.obs` registry in
  Prometheus text exposition format.
- ``GET /healthz`` — liveness, the problems this facilitator answers,
  the artifact identity, and (sharded) per-worker status, so a fleet can
  detect stale or degraded shards.

Failure semantics are deliberate: overload and not-running map to ``503``
(overload adds a ``Retry-After`` header), a blown request deadline maps
to ``504``, and unexpected server faults answer a generic ``500`` that
names only the exception *type* — internals (paths, model state, stack
detail) never leak into response bodies. Bodies larger than the
configurable cap are refused with ``413`` before being read.

Every route increments ``repro_http_requests_total{route=...}`` (and
``repro_http_errors_total{route=...}`` on 4xx/5xx); request decode and
response encode are traced as ``decode``/``encode`` spans.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.models.serialize import ArtifactFormatError
from repro.obs import textfmt
from repro.obs.registry import get_registry
from repro.obs.spans import span
from repro.serving.service import (
    ReloadInProgressError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)

__all__ = ["InsightsHTTPServer", "make_server", "DEFAULT_MAX_BODY_BYTES"]

#: Default request-body cap (16 MiB — thousands of statements per call).
DEFAULT_MAX_BODY_BYTES = 16 * 1024 * 1024


class InsightsHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared service for its handlers."""

    daemon_threads = True

    def __init__(
        self,
        address,
        service,
        quiet: bool = True,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ):
        self.service = service
        self.quiet = quiet
        self.max_body_bytes = max_body_bytes
        super().__init__(address, _InsightsHandler)


class _InsightsHandler(BaseHTTPRequestHandler):
    server: InsightsHTTPServer

    #: Route label for the metrics counters; set per request at dispatch.
    _route = "unknown"

    # -- plumbing ------------------------------------------------------------ #

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            super().log_message(format, *args)

    def _count_request(self, route: str) -> None:
        self._route = route
        get_registry().counter(
            "repro_http_requests_total",
            "HTTP requests by route",
            route=route,
        ).inc()

    def _count_error(self, status: int) -> None:
        get_registry().counter(
            "repro_http_errors_total",
            "HTTP 4xx/5xx responses by route",
            route=self._route,
        ).inc()

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: dict | None = None,
    ) -> None:
        if status >= 400:
            self._count_error(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self, status: int, payload: dict, extra_headers: dict | None = None
    ) -> None:
        with span("encode"):
            body = json.dumps(payload).encode("utf-8")
        self._send_body(status, body, "application/json", extra_headers)

    def _send_service_error(self, exc: BaseException) -> None:
        """Map a service-layer failure onto a truthful status code.

        Unexpected exceptions answer a generic 500 naming only the type —
        never ``str(exc)``, which can carry file paths and model state.
        """
        if isinstance(exc, ServiceOverloadedError):
            self._send_json(
                503,
                {"error": "service overloaded; retry shortly"},
                {"Retry-After": f"{max(1, round(exc.retry_after_s)):d}"},
            )
        elif isinstance(exc, ServiceUnavailableError):
            self._send_json(
                503,
                {"error": "service unavailable (starting, reloading, or stopped)"},
                {"Retry-After": "1"},
            )
        elif isinstance(exc, TimeoutError):
            self._send_json(504, {"error": "request deadline exceeded"})
        else:
            self._send_json(
                500, {"error": f"internal error ({type(exc).__name__})"}
            )

    def _read_body_json(self, allow_empty: bool = False) -> dict | None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._send_json(400, {"error": "bad Content-Length header"})
            return None
        if length <= 0:
            if allow_empty:
                return {}
            self._send_json(400, {"error": "empty request body"})
            return None
        if length > self.server.max_body_bytes:
            self._send_json(
                413,
                {
                    "error": "request body too large "
                    f"(limit {self.server.max_body_bytes} bytes)"
                },
            )
            return None
        try:
            with span("decode"):
                payload = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send_json(400, {"error": f"body is not JSON: {exc}"})
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "body must be a JSON object"})
            return None
        return payload

    # -- routes -------------------------------------------------------------- #

    def do_POST(self) -> None:
        path = urlsplit(self.path).path.rstrip("/")
        if path == "/insights":
            self._count_request("/insights")
            self._post_insights()
        elif path == "/reload":
            self._count_request("/reload")
            self._post_reload()
        else:
            self._count_request("unknown")
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _post_insights(self) -> None:
        payload = self._read_body_json()
        if payload is None:
            return
        statements = payload.get("statements")
        if statements is None and "statement" in payload:
            statements = [payload["statement"]]
        if (
            not isinstance(statements, list)
            or not statements
            or not all(isinstance(s, str) for s in statements)
        ):
            self._send_json(
                400,
                {
                    "error": "body needs 'statements': [str, ...] "
                    "(or 'statement': str)"
                },
            )
            return
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
        ):
            self._send_json(
                400, {"error": "'deadline_ms' must be a positive number"}
            )
            return
        deadline_s = deadline_ms / 1000.0 if deadline_ms is not None else None
        try:
            request = self.server.service.submit(
                statements, deadline_s=deadline_s
            )
            insights = request.result(deadline_s)
        except Exception as exc:
            self._send_service_error(exc)
            return
        response = {"insights": [insight.to_dict() for insight in insights]}
        if request.generation is not None:
            response["generation"] = request.generation
        if request.degraded:
            response["degraded"] = True
        self._send_json(200, response)

    def _post_reload(self) -> None:
        service = self.server.service
        if not hasattr(service, "reload"):
            self._send_json(
                501, {"error": "this service does not support hot reload"}
            )
            return
        payload = self._read_body_json(allow_empty=True)
        if payload is None:
            return
        path = payload.get("path", getattr(service, "artifact_path", None))
        if not isinstance(path, str) or not path:
            self._send_json(
                400,
                {
                    "error": "body needs 'path': str (no default artifact "
                    "path on this service)"
                },
            )
            return
        try:
            result = service.reload(path)
        except ReloadInProgressError:
            self._send_json(
                409, {"error": "a reload is already in progress"}
            )
            return
        except (ArtifactFormatError, OSError) as exc:
            # staged validation rejected it: the old generation is intact,
            # and saying why is safe (it names the artifact, not the model)
            self._send_json(400, {"error": f"artifact rejected: {exc}"})
            return
        except Exception as exc:
            self._send_service_error(exc)
            return
        self._send_json(200, {"status": "ok", **result})

    def do_GET(self) -> None:
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        if path == "/stats":
            self._count_request("/stats")
            service = self.server.service
            payload = service.stats.to_dict()
            query = parse_qs(parts.query)
            if query.get("trace", ["0"])[0] not in ("0", "", "false"):
                if hasattr(service, "last_trace"):
                    payload["trace"] = service.last_trace
                    service.request_trace()  # keep the sample fresh
                else:
                    payload["trace"] = None
            self._send_json(200, payload)
        elif path == "/metrics":
            self._count_request("/metrics")
            text = textfmt.render(get_registry().snapshot())
            self._send_body(200, text.encode("utf-8"), textfmt.CONTENT_TYPE)
        elif path == "/healthz":
            self._count_request("/healthz")
            self._send_json(200, self._health_payload())
        else:
            self._count_request("unknown")
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _health_payload(self) -> dict:
        service = self.server.service
        facilitator = getattr(service, "facilitator", None)
        if facilitator is not None:
            return {
                "status": "ok",
                "model_name": facilitator.model_name,
                "problems": [p.name.lower() for p in facilitator.problems],
                "artifact": facilitator.artifact_identity,
            }
        workers = service.workers
        up = sum(1 for w in workers if w["up"])
        status = "ok" if up == len(workers) else ("degraded" if up else "down")
        return {
            "status": status,
            "model_name": service.model_name,
            "problems": service.problem_names,
            "artifact": service.artifact_identity,
            "generation": service.generation,
            "workers": workers,
        }


def make_server(
    service,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> InsightsHTTPServer:
    """Bind (but do not start) the JSON endpoint for ``service``.

    ``service`` is either a :class:`FacilitatorService` or a
    :class:`~repro.serving.shards.ShardedFacilitatorService`. ``port=0``
    binds an ephemeral port; read ``server.server_address``. Call
    ``serve_forever()`` to run, ``shutdown()`` from another thread to
    stop.
    """
    return InsightsHTTPServer(
        (host, port), service, quiet=quiet, max_body_bytes=max_body_bytes
    )
