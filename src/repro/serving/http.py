"""Stdlib JSON/HTTP endpoint over a facilitator service.

No framework dependency: a :class:`ThreadingHTTPServer` whose handler
threads submit into the service's micro-batching queue and block until
their batch runs — which is exactly how concurrent requests coalesce into
one ``insights_batch`` call. The same server fronts either a
single-process :class:`~repro.serving.service.FacilitatorService` or the
fault-tolerant :class:`~repro.serving.shards.ShardedFacilitatorService`.

The route logic itself lives in :class:`InsightsAPI` — a transport-free
core mapping ``(method, path, query, body)`` onto ``(status, body,
headers)`` — so the thread-per-connection server here and the
epoll-multiplexed :class:`~repro.serving.aio.AsyncInsightsServer` serve
byte-identical responses from one implementation. Handler threads speak
HTTP/1.1 with keep-alive: a client that reuses its connection gets every
response from the same thread instead of paying a new thread per request.

Routes:

- ``POST /insights`` — body ``{"statements": [...]}`` (or
  ``{"statement": "..."}``), optional ``"deadline_ms"``; responds
  ``{"insights": [...]}`` with one JSON object per statement (the
  ``QueryInsights.to_dict`` wire format) plus, on the sharded tier,
  ``"degraded": true`` when the answer was served off its home shard
  while a worker restarts, and the artifact ``"generation"`` that
  computed it.
- ``POST /reload`` — body ``{"path": "..."}`` (optional; defaults to the
  artifact the service was started from): zero-downtime hot swap. A bad
  artifact is rejected ``400`` by staged validation without touching live
  shards; a concurrent reload answers ``409``.
- ``GET /stats`` — serving counters + cache effectiveness;
  ``GET /stats?trace=1`` additionally returns the per-stage breakdown of
  the most recently traced micro-batch (single-process service only).
- ``GET /metrics`` — the whole process's :mod:`repro.obs` registry in
  Prometheus text exposition format.
- ``GET /healthz`` — liveness, the problems this facilitator answers,
  the artifact identity, and (sharded/fleet) per-worker state
  (``up|degraded|restarting`` plus incarnation and generation), so a
  fleet scraper can detect a sick shard without parsing ``/metrics``.

Failure semantics are deliberate: overload and not-running map to ``503``
(overload adds a ``Retry-After`` header), a blown request deadline maps
to ``504``, and unexpected server faults answer a generic ``500`` that
names only the exception *type* — internals (paths, model state, stack
detail) never leak into response bodies. Bodies larger than the
configurable cap are refused with ``413`` before being read.

Every route increments ``repro_http_requests_total{route=...}`` (and
``repro_http_errors_total{route=...}`` on 4xx/5xx); connection churn is
tracked by ``repro_http_connections_total`` and the
``repro_http_connections_open`` gauge; request decode and response encode
are traced as ``decode``/``encode`` spans.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import NamedTuple
from urllib.parse import parse_qs, urlsplit

from repro.models.serialize import ArtifactFormatError
from repro.obs import textfmt
from repro.obs.registry import Counter, Gauge, get_registry
from repro.obs.spans import span
from repro.serving.service import (
    ReloadInProgressError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)

__all__ = [
    "ApiResponse",
    "InsightsAPI",
    "InsightsHTTPServer",
    "make_server",
    "DEFAULT_MAX_BODY_BYTES",
]

#: Default request-body cap (16 MiB — thousands of statements per call).
DEFAULT_MAX_BODY_BYTES = 16 * 1024 * 1024

_JSON = "application/json"


class ApiResponse(NamedTuple):
    """One finished response, transport-unaware.

    ``body`` is the encoded payload; the transport adds the status line,
    ``Content-Type``/``Content-Length``, and ``extra_headers``.
    """

    status: int
    content_type: str
    body: bytes
    extra_headers: dict | None = None


def _connection_metrics() -> tuple[Counter, Gauge]:
    """(total, open) connection metrics, shared by both server fronts."""
    registry = get_registry()
    total = registry.counter(
        "repro_http_connections_total",
        "Client connections accepted since process start",
    )
    open_gauge = registry.gauge(
        "repro_http_connections_open",
        "Client connections currently open",
    )
    return total, open_gauge


class InsightsAPI:
    """Transport-free request core: routes, validation, error mapping.

    Every server front end (threaded, async) builds one of these around
    its service and maps parsed requests through :meth:`handle` — the
    single place response bytes are decided, so the fronts cannot drift.
    """

    def __init__(self, service, max_body_bytes: int = DEFAULT_MAX_BODY_BYTES):
        self.service = service
        self.max_body_bytes = max_body_bytes

    # -- response assembly --------------------------------------------------- #

    def _count_request(self, route: str) -> None:
        get_registry().counter(
            "repro_http_requests_total",
            "HTTP requests by route",
            route=route,
        ).inc()

    def _count_error(self, route: str) -> None:
        get_registry().counter(
            "repro_http_errors_total",
            "HTTP 4xx/5xx responses by route",
            route=route,
        ).inc()

    def _json(
        self,
        route: str,
        status: int,
        payload: dict,
        extra_headers: dict | None = None,
    ) -> ApiResponse:
        if status >= 400:
            self._count_error(route)
        with span("encode"):
            body = json.dumps(payload).encode("utf-8")
        return ApiResponse(status, _JSON, body, extra_headers)

    def body_too_large(self, route: str = "unknown") -> ApiResponse:
        """The 413 answer both fronts send before reading an oversized body."""
        self._count_request(route)
        return self._json(
            route,
            413,
            {
                "error": "request body too large "
                f"(limit {self.max_body_bytes} bytes)"
            },
        )

    def _service_error(self, route: str, exc: BaseException) -> ApiResponse:
        """Map a service-layer failure onto a truthful status code.

        Unexpected exceptions answer a generic 500 naming only the type —
        never ``str(exc)``, which can carry file paths and model state.
        """
        if isinstance(exc, ServiceOverloadedError):
            return self._json(
                route,
                503,
                {"error": "service overloaded; retry shortly"},
                {"Retry-After": f"{max(1, round(exc.retry_after_s)):d}"},
            )
        if isinstance(exc, ServiceUnavailableError):
            return self._json(
                route,
                503,
                {"error": "service unavailable (starting, reloading, or stopped)"},
                {"Retry-After": "1"},
            )
        if isinstance(exc, TimeoutError):
            return self._json(route, 504, {"error": "request deadline exceeded"})
        return self._json(
            route, 500, {"error": f"internal error ({type(exc).__name__})"}
        )

    def _decode_body(self, route: str, body: bytes, allow_empty: bool = False):
        """(payload, None) on success, (None, ApiResponse) on rejection."""
        if not body:
            if allow_empty:
                return {}, None
            return None, self._json(route, 400, {"error": "empty request body"})
        if len(body) > self.max_body_bytes:
            return None, self._json(
                route,
                413,
                {
                    "error": "request body too large "
                    f"(limit {self.max_body_bytes} bytes)"
                },
            )
        try:
            with span("decode"):
                payload = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return None, self._json(
                route, 400, {"error": f"body is not JSON: {exc}"}
            )
        if not isinstance(payload, dict):
            return None, self._json(
                route, 400, {"error": "body must be a JSON object"}
            )
        return payload, None

    # -- dispatch ------------------------------------------------------------- #

    def handle(
        self, method: str, target: str, body: bytes = b""
    ) -> ApiResponse:
        """Answer one parsed request (``target`` may carry a query string)."""
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        if method == "POST":
            if path == "/insights":
                self._count_request("/insights")
                return self._post_insights(body)
            if path == "/reload":
                self._count_request("/reload")
                return self._post_reload(body)
            self._count_request("unknown")
            return self._json(
                "unknown", 404, {"error": f"unknown path {target!r}"}
            )
        if method == "GET":
            if path == "/stats":
                self._count_request("/stats")
                return self._get_stats(parts.query)
            if path == "/metrics":
                self._count_request("/metrics")
                text = textfmt.render(get_registry().snapshot())
                return ApiResponse(
                    200, textfmt.CONTENT_TYPE, text.encode("utf-8")
                )
            if path == "/healthz":
                self._count_request("/healthz")
                return self._json("/healthz", 200, self.health_payload())
            self._count_request("unknown")
            return self._json(
                "unknown", 404, {"error": f"unknown path {target!r}"}
            )
        self._count_request("unknown")
        return self._json(
            "unknown", 405, {"error": f"method {method} not allowed"}
        )

    # -- routes -------------------------------------------------------------- #

    def parse_insights(self, body: bytes):
        """Validate one ``POST /insights`` body.

        Returns ``(statements, deadline_s, None)`` when valid, else
        ``(None, None, ApiResponse)`` carrying the 4xx rejection — the
        async front end uses this to submit on the event loop and await
        the result without blocking, while the threaded path composes it
        with a blocking ``result()`` in :meth:`_post_insights`.
        """
        route = "/insights"
        payload, error = self._decode_body(route, body)
        if error is not None:
            return None, None, error
        statements = payload.get("statements")
        if statements is None and "statement" in payload:
            statements = [payload["statement"]]
        if (
            not isinstance(statements, list)
            or not statements
            or not all(isinstance(s, str) for s in statements)
        ):
            return None, None, self._json(
                route,
                400,
                {
                    "error": "body needs 'statements': [str, ...] "
                    "(or 'statement': str)"
                },
            )
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
        ):
            return None, None, self._json(
                route, 400, {"error": "'deadline_ms' must be a positive number"}
            )
        deadline_s = deadline_ms / 1000.0 if deadline_ms is not None else None
        return statements, deadline_s, None

    def _post_insights(self, body: bytes) -> ApiResponse:
        statements, deadline_s, error = self.parse_insights(body)
        if error is not None:
            return error
        try:
            request = self.service.submit(statements, deadline_s=deadline_s)
            insights = request.result(deadline_s)
        except Exception as exc:
            return self._service_error("/insights", exc)
        return self.finish_insights(request, insights)

    def submit(self, statements, deadline_s=None):
        """Enqueue one request (the async front end awaits the result)."""
        return self.service.submit(statements, deadline_s=deadline_s)

    def finish_insights(self, request, insights) -> ApiResponse:
        """Assemble the 200 body for one completed insights request."""
        response = {"insights": [insight.to_dict() for insight in insights]}
        if request.generation is not None:
            response["generation"] = request.generation
        if request.degraded:
            response["degraded"] = True
        return self._json("/insights", 200, response)

    def insights_error(self, exc: BaseException) -> ApiResponse:
        """Error mapping for an insights request (async front end)."""
        return self._service_error("/insights", exc)

    def _post_reload(self, body: bytes) -> ApiResponse:
        route = "/reload"
        service = self.service
        if not hasattr(service, "reload"):
            return self._json(
                route, 501, {"error": "this service does not support hot reload"}
            )
        payload, error = self._decode_body(route, body, allow_empty=True)
        if error is not None:
            return error
        path = payload.get("path", getattr(service, "artifact_path", None))
        if not isinstance(path, str) or not path:
            return self._json(
                route,
                400,
                {
                    "error": "body needs 'path': str (no default artifact "
                    "path on this service)"
                },
            )
        try:
            result = service.reload(path)
        except ReloadInProgressError:
            return self._json(
                route, 409, {"error": "a reload is already in progress"}
            )
        except (ArtifactFormatError, OSError) as exc:
            # staged validation rejected it: the old generation is intact,
            # and saying why is safe (it names the artifact, not the model)
            return self._json(
                route, 400, {"error": f"artifact rejected: {exc}"}
            )
        except Exception as exc:
            return self._service_error(route, exc)
        return self._json(route, 200, {"status": "ok", **result})

    def _get_stats(self, query_string: str) -> ApiResponse:
        service = self.service
        payload = service.stats.to_dict()
        query = parse_qs(query_string)
        if query.get("trace", ["0"])[0] not in ("0", "", "false"):
            if hasattr(service, "last_trace"):
                payload["trace"] = service.last_trace
                service.request_trace()  # keep the sample fresh
            else:
                payload["trace"] = None
        return self._json("/stats", 200, payload)

    def health_payload(self) -> dict:
        service = self.service
        facilitator = getattr(service, "facilitator", None)
        if facilitator is not None:
            return {
                "status": "ok",
                "model_name": facilitator.model_name,
                "problems": [p.name.lower() for p in facilitator.problems],
                "artifact": facilitator.artifact_identity,
            }
        workers = service.workers
        up = sum(1 for w in workers if w["up"])
        status = "ok" if up == len(workers) else ("degraded" if up else "down")
        return {
            "status": status,
            "model_name": service.model_name,
            "problems": service.problem_names,
            "artifact": service.artifact_identity,
            "generation": service.generation,
            "workers": workers,
        }


class InsightsHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared service for its handlers."""

    daemon_threads = True

    #: The stdlib default backlog of 5 collapses under a reconnect storm
    #: (SYN retransmit stalls while each accept pays a thread spawn);
    #: match the asyncio front's listen depth.
    request_queue_size = 1024

    def __init__(
        self,
        address,
        service,
        quiet: bool = True,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ):
        self.service = service
        self.quiet = quiet
        self.max_body_bytes = max_body_bytes
        self.api = InsightsAPI(service, max_body_bytes=max_body_bytes)
        self.connections_total, self.connections_open = _connection_metrics()
        super().__init__(address, _InsightsHandler)


class _InsightsHandler(BaseHTTPRequestHandler):
    server: InsightsHTTPServer

    #: HTTP/1.1 so keep-alive is the default: a client that holds its
    #: connection open reuses one handler thread for every request
    #: instead of paying a thread spawn (and slow-start) per call. Safe
    #: because every response carries an explicit Content-Length.
    protocol_version = "HTTP/1.1"

    #: The stdlib handler writes headers and body as separate sends; with
    #: Nagle on, a keep-alive client whose next request has not arrived
    #: yet eats a ~40ms delayed-ACK stall per response. TCP_NODELAY keeps
    #: response latency at compute cost.
    disable_nagle_algorithm = True

    def setup(self) -> None:
        super().setup()
        self.server.connections_total.inc()
        self.server.connections_open.inc()

    def finish(self) -> None:
        try:
            super().finish()
        finally:
            self.server.connections_open.dec()

    # -- plumbing ------------------------------------------------------------ #

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_api_response(self, response: ApiResponse) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in (response.extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def _route_label(self) -> str:
        path = urlsplit(self.path).path.rstrip("/")
        return path if path in ("/insights", "/reload") else "unknown"

    def _read_body(self) -> bytes | None:
        """Request body, or None after an error response was sent."""
        route = self._route_label()
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.server.api._count_request(route)
            self._send_api_response(
                self.server.api._json(
                    route, 400, {"error": "bad Content-Length header"}
                )
            )
            self.close_connection = True
            return None
        if length > self.server.max_body_bytes:
            # refuse before reading; the unread body poisons the
            # connection, so close it rather than resynchronize
            self._send_api_response(self.server.api.body_too_large(route))
            self.close_connection = True
            return None
        return self.rfile.read(length) if length > 0 else b""

    # -- dispatch ------------------------------------------------------------ #

    def do_POST(self) -> None:
        body = self._read_body()
        if body is None:
            return
        self._send_api_response(self.server.api.handle("POST", self.path, body))

    def do_GET(self) -> None:
        self._send_api_response(self.server.api.handle("GET", self.path))


def make_server(
    service,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> InsightsHTTPServer:
    """Bind (but do not start) the JSON endpoint for ``service``.

    ``service`` is either a :class:`FacilitatorService` or a
    :class:`~repro.serving.shards.ShardedFacilitatorService`. ``port=0``
    binds an ephemeral port; read ``server.server_address``. Call
    ``serve_forever()`` to run, ``shutdown()`` from another thread to
    stop.
    """
    return InsightsHTTPServer(
        (host, port), service, quiet=quiet, max_body_bytes=max_body_bytes
    )
