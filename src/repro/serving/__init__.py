"""Serving layer: run a fitted facilitator as a low-latency service.

The paper's end goal is pre-execution insights served to live database
users. This package is that serving surface:

- :class:`FacilitatorService` — wraps a fitted
  :class:`~repro.core.facilitator.QueryFacilitator` behind a micro-batching
  request queue (up to ``max_batch`` statements / ``max_wait_ms``, one
  ``insights_batch`` call per batch), with warm-up priming of the shared
  sqlang pipeline cache and per-service stats (requests, batch sizes,
  p50/p95 latency, pipeline hit rate);
- :class:`ShardedFacilitatorService` — the fault-tolerant multi-process
  tier: N facilitator worker processes sharded by statement digest behind
  the same micro-batching front end, with admission control (shed +
  ``Retry-After`` past ``max_pending``), per-request deadlines, degraded
  re-routing around dead shards, and zero-downtime artifact hot-reload;
- :class:`Supervisor` / :class:`RestartBackoff` — worker health checks
  (crash + per-batch-deadline hang detection) and exponential-backoff
  restarts; :class:`ArtifactWatcher` drives ``repro serve --watch``;
- :class:`FaultPlan` / :class:`FaultInjector` — env/config-gated fault
  injection (crash, hang, slow batch, corrupt artifact) for the chaos
  suite and ``benchmarks/bench_scale.py``;
- :func:`make_server` / :class:`InsightsHTTPServer` — a dependency-free
  ``http.server`` JSON endpoint (``POST /insights``, ``GET /stats``,
  ``GET /healthz``, ``POST /reload``) whose handler threads coalesce into
  the queue;
- :func:`make_async_server` / :class:`AsyncInsightsServer` — the same
  endpoint on one asyncio event loop: thousands of keep-alive HTTP/1.1
  connections (pipelining, idle timeouts, slowloris reaping, zero-copy
  response buffers) multiplexed without a thread per connection;
- :class:`FleetFacilitatorService` / :class:`FleetWorkerAgent` — the
  sharded tier's worker protocol over length-prefixed JSON/TCP, so
  ``repro serve --fleet host:port,...`` routes shard slices to remote
  ``repro worker --listen`` agents with identical supervision,
  re-routing, deadline, and hot-reload semantics;
- the ``repro serve`` / ``repro worker`` CLI commands wire it all to a
  saved artifact.
"""

from repro.serving.service import (
    FacilitatorService,
    InsightMemo,
    PendingRequest,
    ReloadInProgressError,
    ServiceOverloadedError,
    ServiceStats,
    ServiceUnavailableError,
)
from repro.serving.faults import FAULT_PLAN_ENV, FaultInjector, FaultPlan, FaultSpec
from repro.serving.supervisor import (
    ArtifactWatcher,
    RestartBackoff,
    Supervisor,
    WorkerProbe,
)
from repro.serving.shards import ShardedFacilitatorService, ShardedServiceStats, shard_of
from repro.serving.http import InsightsHTTPServer, make_server
from repro.serving.aio import AsyncInsightsServer, make_async_server
from repro.serving.fleet import (
    FleetFacilitatorService,
    FleetWorkerAgent,
    parse_endpoints,
)

__all__ = [
    "FacilitatorService",
    "InsightMemo",
    "PendingRequest",
    "ReloadInProgressError",
    "ServiceOverloadedError",
    "ServiceStats",
    "ServiceUnavailableError",
    "FAULT_PLAN_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ArtifactWatcher",
    "RestartBackoff",
    "Supervisor",
    "WorkerProbe",
    "ShardedFacilitatorService",
    "ShardedServiceStats",
    "shard_of",
    "InsightsHTTPServer",
    "make_server",
    "AsyncInsightsServer",
    "make_async_server",
    "FleetFacilitatorService",
    "FleetWorkerAgent",
    "parse_endpoints",
]
