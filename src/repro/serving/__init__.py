"""Serving layer: run a fitted facilitator as a low-latency service.

The paper's end goal is pre-execution insights served to live database
users. This package is that serving surface:

- :class:`FacilitatorService` — wraps a fitted
  :class:`~repro.core.facilitator.QueryFacilitator` behind a micro-batching
  request queue (up to ``max_batch`` statements / ``max_wait_ms``, one
  ``insights_batch`` call per batch), with warm-up priming of the shared
  sqlang pipeline cache and per-service stats (requests, batch sizes,
  p50/p95 latency, pipeline hit rate);
- :func:`make_server` / :class:`InsightsHTTPServer` — a dependency-free
  ``http.server`` JSON endpoint (``POST /insights``, ``GET /stats``,
  ``GET /healthz``) whose handler threads coalesce into the queue;
- the ``repro serve`` CLI command wires both to a saved artifact.
"""

from repro.serving.service import FacilitatorService, PendingRequest, ServiceStats
from repro.serving.http import InsightsHTTPServer, make_server

__all__ = [
    "FacilitatorService",
    "PendingRequest",
    "ServiceStats",
    "InsightsHTTPServer",
    "make_server",
]
