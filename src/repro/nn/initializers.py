"""Weight initialization helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["uniform", "glorot_uniform", "orthogonal"]


def uniform(
    rng: np.random.Generator, shape: tuple[int, ...], scale: float = 0.05
) -> np.ndarray:
    """U(-scale, scale) initialization (embeddings, biases-with-noise)."""
    return rng.uniform(-scale, scale, size=shape)


def glorot_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform init for dense and convolution weights."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def orthogonal(
    rng: np.random.Generator, shape: tuple[int, int], gain: float = 1.0
) -> np.ndarray:
    """Orthogonal init — standard for LSTM recurrent weights."""
    rows, cols = shape
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))  # deterministic sign convention
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]
