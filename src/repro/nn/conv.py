"""Text convolution + max-over-time pooling (Section 5.3, Figure 11).

:class:`TextConv1d` applies ``num_kernels`` kernels of one window size ``m``
over the concatenated token embeddings, exactly the 1-D convolution of
Figure 10: each output position is the dot product of the kernel with an
``m``-token window. ReLU and max-over-time pooling produce one feature per
kernel. :class:`MultiKernelTextConv` runs several window sizes (the paper
uses {3, 4, 5}) and concatenates the pooled features.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform
from repro.nn.module import Module

__all__ = ["TextConv1d", "MultiKernelTextConv"]


class TextConv1d(Module):
    """One window size of the Kim CNN: conv → ReLU → max-over-time.

    Args:
        embed_dim: Embedding width D.
        window: n-gram window m.
        num_kernels: Number of kernels K for this window size.
        rng: Initialization randomness.

    Forward maps ``(B, T, D)`` → ``(B, K)``. Inputs shorter than the window
    are zero-padded on the time axis to one full window.
    """

    def __init__(
        self,
        embed_dim: int,
        window: int,
        num_kernels: int,
        rng: np.random.Generator,
        pooling: str = "max",
    ):
        super().__init__()
        if pooling not in ("max", "mean"):
            raise ValueError(f"pooling must be 'max' or 'mean', got {pooling!r}")
        self.embed_dim = embed_dim
        self.window = window
        self.num_kernels = num_kernels
        self.pooling = pooling
        self.weight = self.add_param(
            "weight", glorot_uniform(rng, window * embed_dim, num_kernels)
        )
        self.bias = self.add_param("bias", np.zeros(num_kernels))
        self._cache: tuple | None = None

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        """(B, T, D) → (B, T-m+1, m*D) window matrix."""
        batch, time, dim = x.shape
        m = self.window
        positions = time - m + 1
        cols = np.empty((batch, positions, m * dim), dtype=x.dtype)
        for j in range(m):
            cols[:, :, j * dim : (j + 1) * dim] = x[:, j : j + positions, :]
        return cols

    def forward(self, x: np.ndarray) -> np.ndarray:
        original_time = x.shape[1]
        if original_time < self.window:  # pad short inputs to one window
            pad = self.window - original_time
            x = np.concatenate(
                [x, np.zeros((x.shape[0], pad, x.shape[2]), dtype=x.dtype)],
                axis=1,
            )
        cols = self._im2col(x)
        linear = cols @ self.weight.value + self.bias.value  # (B, P, K)
        active = linear > 0
        activation = np.where(active, linear, 0.0)
        if self.pooling == "max":
            pooled_idx = activation.argmax(axis=1)  # (B, K)
            batch_idx = np.arange(x.shape[0])[:, None]
            pooled = activation[
                batch_idx, pooled_idx, np.arange(self.num_kernels)
            ]
        else:
            pooled_idx = None
            pooled = activation.mean(axis=1)
        self._cache = (cols, active, pooled_idx, x.shape, original_time)
        return pooled

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """(B, K) grad → (B, T, D) grad w.r.t. the embedding input."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, active, pooled_idx, padded_shape, original_time = self._cache
        batch, positions, _ = cols.shape
        k = self.num_kernels

        if self.pooling == "max":
            # route pooled gradient to argmax positions, then through ReLU
            dact = np.zeros((batch, positions, k))
            batch_idx = np.arange(batch)[:, None]
            dact[batch_idx, pooled_idx, np.arange(k)] = dout
        else:
            dact = np.broadcast_to(
                dout[:, None, :] / positions, (batch, positions, k)
            ).copy()
        dlinear = np.where(active, dact, 0.0)

        flat_cols = cols.reshape(-1, cols.shape[-1])
        flat_d = dlinear.reshape(-1, k)
        self.weight.grad += flat_cols.T @ flat_d
        self.bias.grad += flat_d.sum(axis=0)

        dcols = dlinear @ self.weight.value.T  # (B, P, m*D)
        dx = np.zeros(padded_shape)
        dim = self.embed_dim
        for j in range(self.window):
            dx[:, j : j + positions, :] += dcols[
                :, :, j * dim : (j + 1) * dim
            ]
        return dx[:, :original_time, :]


class MultiKernelTextConv(Module):
    """Parallel window sizes with concatenated pooled outputs.

    Maps ``(B, T, D)`` → ``(B, sum(num_kernels over windows))``.
    """

    def __init__(
        self,
        embed_dim: int,
        windows: tuple[int, ...],
        num_kernels: int,
        rng: np.random.Generator,
        pooling: str = "max",
    ):
        super().__init__()
        if not windows:
            raise ValueError("need at least one window size")
        self.convs: list[TextConv1d] = []
        for window in windows:
            conv = TextConv1d(embed_dim, window, num_kernels, rng, pooling)
            self.add_module(f"conv{window}", conv)
            self.convs.append(conv)
        self.out_dim = num_kernels * len(windows)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.concatenate([conv.forward(x) for conv in self.convs], axis=1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        dx: np.ndarray | None = None
        offset = 0
        for conv in self.convs:
            k = conv.num_kernels
            piece = conv.backward(dout[:, offset : offset + k])
            dx = piece if dx is None else dx + piece
            offset += k
        assert dx is not None
        return dx
