"""Text convolution + max-over-time pooling (Section 5.3, Figure 11).

:class:`TextConv1d` applies ``num_kernels`` kernels of one window size ``m``
over the concatenated token embeddings, exactly the 1-D convolution of
Figure 10: each output position is the dot product of the kernel with an
``m``-token window. ReLU and max-over-time pooling produce one feature per
kernel. :class:`MultiKernelTextConv` runs several window sizes (the paper
uses {3, 4, 5}) and concatenates the pooled features.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform
from repro.nn.module import Module

__all__ = ["TextConv1d", "MultiKernelTextConv"]


class TextConv1d(Module):
    """One window size of the Kim CNN: conv → ReLU → max-over-time.

    Args:
        embed_dim: Embedding width D.
        window: n-gram window m.
        num_kernels: Number of kernels K for this window size.
        rng: Initialization randomness.

    Forward maps ``(B, T, D)`` → ``(B, K)``. Inputs shorter than the window
    are zero-padded on the time axis to one full window.
    """

    def __init__(
        self,
        embed_dim: int,
        window: int,
        num_kernels: int,
        rng: np.random.Generator,
        pooling: str = "max",
    ):
        super().__init__()
        if pooling not in ("max", "mean"):
            raise ValueError(f"pooling must be 'max' or 'mean', got {pooling!r}")
        self.embed_dim = embed_dim
        self.window = window
        self.num_kernels = num_kernels
        self.pooling = pooling
        self.weight = self.add_param(
            "weight", glorot_uniform(rng, window * embed_dim, num_kernels)
        )
        self.bias = self.add_param("bias", np.zeros(num_kernels))
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        original_time = x.shape[1]
        if original_time < self.window:  # pad short inputs to one window
            pad = self.window - original_time
            x = np.concatenate(
                [x, np.zeros((x.shape[0], pad, x.shape[2]), dtype=x.dtype)],
                axis=1,
            )
        batch, time, dim = x.shape
        positions = time - self.window + 1
        k = self.num_kernels
        weight = self.weight.value
        # im2col without the column copy: each window offset contributes
        # one batched (B, P, D) @ (D, K) GEMM on a contiguous slice view,
        # accumulated in place — identical math to the (B·P, m·D) matrix
        # product, with no (B, P, m·D) materialization to build or cache
        linear = x[:, :positions, :] @ weight[:dim]
        for j in range(1, self.window):
            linear += x[:, j : j + positions, :] @ weight[
                j * dim : (j + 1) * dim
            ]
        linear += self.bias.value
        active = linear > 0
        activation = np.maximum(linear, 0.0, out=linear)  # ReLU in place
        if self.pooling == "max":
            pooled_idx = activation.argmax(axis=1)  # (B, K)
            batch_idx = np.arange(batch)[:, None]
            pooled = activation[batch_idx, pooled_idx, np.arange(k)]
        else:
            pooled_idx = None
            pooled = activation.mean(axis=1)
        self._cache = (x, active, pooled_idx, original_time)
        return pooled

    def infer(self, x: np.ndarray) -> np.ndarray:
        """No-grad forward: identical FLOPs and order, no backward cache.

        Skips the ``(B, P, K)`` ReLU activity mask and the argmax index
        bookkeeping the backward pass needs; the pooled values are the
        same elements :meth:`forward` selects, so outputs are bitwise
        equal.
        """
        original_time = x.shape[1]
        if original_time < self.window:
            pad = self.window - original_time
            x = np.concatenate(
                [x, np.zeros((x.shape[0], pad, x.shape[2]), dtype=x.dtype)],
                axis=1,
            )
        _, time, dim = x.shape
        positions = time - self.window + 1
        weight = self.weight.value
        linear = x[:, :positions, :] @ weight[:dim]
        for j in range(1, self.window):
            linear += x[:, j : j + positions, :] @ weight[
                j * dim : (j + 1) * dim
            ]
        linear += self.bias.value
        activation = np.maximum(linear, 0.0, out=linear)
        if self.pooling == "max":
            return activation.max(axis=1)
        return activation.mean(axis=1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """(B, K) grad → (B, T, D) grad w.r.t. the embedding input."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, active, pooled_idx, original_time = self._cache
        batch, positions, k = active.shape
        dim = self.embed_dim

        if self.pooling == "max":
            # route pooled gradient to argmax positions, then through ReLU
            dlinear = np.zeros((batch, positions, k))
            batch_idx = np.arange(batch)[:, None]
            kernel_idx = np.arange(k)
            dlinear[batch_idx, pooled_idx, kernel_idx] = np.where(
                active[batch_idx, pooled_idx, kernel_idx], dout, 0.0
            )
        else:
            dlinear = np.broadcast_to(
                dout[:, None, :] / positions, (batch, positions, k)
            ) * active  # ReLU mask without materializing the broadcast

        self.bias.grad += dlinear.sum(axis=(0, 1))
        # mirror of the forward decomposition: per window offset, one
        # batched GEMM for the weight-slice gradient and one for the
        # overlapping input gradient
        weight = self.weight.value
        dx = np.zeros(x.shape)
        for j in range(self.window):
            x_slice = x[:, j : j + positions, :]
            self.weight.grad[j * dim : (j + 1) * dim] += (
                x_slice.transpose(0, 2, 1) @ dlinear
            ).sum(axis=0)
            dx[:, j : j + positions, :] += dlinear @ weight[
                j * dim : (j + 1) * dim
            ].T
        return dx[:, :original_time, :]


class MultiKernelTextConv(Module):
    """Parallel window sizes with concatenated pooled outputs.

    Maps ``(B, T, D)`` → ``(B, sum(num_kernels over windows))``.
    """

    def __init__(
        self,
        embed_dim: int,
        windows: tuple[int, ...],
        num_kernels: int,
        rng: np.random.Generator,
        pooling: str = "max",
    ):
        super().__init__()
        if not windows:
            raise ValueError("need at least one window size")
        self.convs: list[TextConv1d] = []
        for window in windows:
            conv = TextConv1d(embed_dim, window, num_kernels, rng, pooling)
            self.add_module(f"conv{window}", conv)
            self.convs.append(conv)
        self.out_dim = num_kernels * len(windows)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.concatenate([conv.forward(x) for conv in self.convs], axis=1)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """No-grad forward: concatenated pooled outputs, no caches."""
        return np.concatenate([conv.infer(x) for conv in self.convs], axis=1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        dx: np.ndarray | None = None
        offset = 0
        for conv in self.convs:
            k = conv.num_kernels
            piece = conv.backward(dout[:, offset : offset + k])
            dx = piece if dx is None else dx + piece
            offset += k
        assert dx is not None
        return dx
