"""Gradient-based optimizers: SGD, Adam, AdaMax, plus norm clipping.

The paper trains the neural models with AdaMax (Section 5.2: "We examined
both Adam and AdaMax ... the latter performed better"), learning rate 1e-3,
and optional gradient clipping.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdaMax", "clip_grad_norm"]


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm. ``max_norm <= 0`` disables clipping
    (mirroring the paper's clipping-rate-0 hyper-parameter option).

    The global norm is accumulated with one BLAS dot per parameter
    (``np.dot(g, g)`` on the raveled gradient) instead of allocating a
    ``p.grad**2`` temporary per parameter per step — this runs once per
    training batch over every weight in the network.
    """
    total_sq = 0.0
    for p in params:
        g = p.grad.ravel()
        total_sq += np.dot(g, g)
    total = float(np.sqrt(total_sq))
    if max_norm > 0 and total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base class holding the parameter list."""

    def __init__(self, params: list[Parameter], lr: float):
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = params
        self.lr = lr

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """Vanilla stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in params]

    def step(self) -> None:
        for p, vel in zip(self.params, self._velocity):
            grad = p.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * p.value
            if self.momentum > 0:
                vel *= self.momentum
                vel += grad
                grad = vel
            p.value -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2014) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in params]
        self._v = [np.zeros_like(p.value) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            grad = p.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * p.value
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad**2
            p.value -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


class AdaMax(Optimizer):
    """AdaMax — the infinity-norm variant of Adam (Kingma & Ba 2014).

    The paper's preferred optimizer for both LSTM and CNN models.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in params]
        self._u = [np.zeros_like(p.value) for p in params]
        self._scratch = [np.empty_like(p.value) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1 = self.beta1
        bias1 = 1.0 - b1**self._t
        for p, m, u, s in zip(self.params, self._m, self._u, self._scratch):
            grad = p.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * p.value
            m *= b1
            np.multiply(grad, 1 - b1, out=s)
            m += s
            # u = max(β₂·u, |g| + ε), through the scratch buffer — this
            # runs once per parameter per batch, so no fresh temporaries
            np.multiply(u, self.beta2, out=u)
            np.abs(grad, out=s)
            s += self.eps
            np.maximum(u, s, out=u)
            np.multiply(m, self.lr / bias1, out=s)
            s /= u
            p.value -= s
