"""Neural-network substrate: numpy modules with hand-written backprop.

A minimal deep-learning stack sufficient for the paper's two architectures
(shallow Kim-style text CNN, Section 5.3; 3-layer LSTM, Section 5.2):

- :mod:`repro.nn.parameter` / :mod:`repro.nn.module` — parameter containers;
- :mod:`repro.nn.layers` — Embedding, Linear, Dropout, activations;
- :mod:`repro.nn.conv` — n-gram convolution + max-over-time pooling;
- :mod:`repro.nn.lstm` — stacked LSTM with full BPTT;
- :mod:`repro.nn.losses` — softmax cross-entropy and Huber loss;
- :mod:`repro.nn.optim` — SGD, Adam, AdaMax, gradient clipping.

Every layer's backward pass is verified against numerical gradients in
``tests/nn/``.
"""

from repro.nn.parameter import Parameter
from repro.nn.module import Module
from repro.nn.layers import Dropout, Embedding, Linear, Relu, Tanh
from repro.nn.conv import MultiKernelTextConv, TextConv1d
from repro.nn.lstm import LSTMLayer, StackedLSTM
from repro.nn.losses import HuberLoss, SoftmaxCrossEntropy
from repro.nn.optim import SGD, Adam, AdaMax, clip_grad_norm

__all__ = [
    "Parameter",
    "Module",
    "Embedding",
    "Linear",
    "Dropout",
    "Relu",
    "Tanh",
    "TextConv1d",
    "MultiKernelTextConv",
    "LSTMLayer",
    "StackedLSTM",
    "SoftmaxCrossEntropy",
    "HuberLoss",
    "SGD",
    "Adam",
    "AdaMax",
    "clip_grad_norm",
]
