"""Core layers: Embedding, Linear, Dropout, and pointwise activations.

Each layer caches what its backward pass needs during ``forward`` and
exposes ``backward(dout) -> dinput``. Layers are single-use per step:
call forward, then backward, then the next forward.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform, uniform
from repro.nn.module import Module

__all__ = ["Embedding", "Linear", "Dropout", "Relu", "Tanh", "sigmoid"]


def sigmoid(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Numerically stable logistic sigmoid.

    Computed as ``(1 + tanh(x/2)) / 2`` — the half-angle identity — which
    is stable over the whole real line (``tanh`` saturates instead of
    overflowing) and fully vectorized, unlike the classic two-branch
    masked formulation whose fancy indexing dominates small-batch hot
    loops. ``out`` lets callers (the LSTM time loop) write into
    preallocated cache arrays.
    """
    if out is None:
        out = np.empty_like(x)
    np.multiply(x, 0.5, out=out)
    np.tanh(out, out=out)  # tanh saturates instead of overflowing
    out += 1.0
    out *= 0.5
    return out


class Embedding(Module):
    """Token-id → dense vector lookup (the matrix X of Definition 2).

    Args:
        vocab_size: Number of rows.
        dim: Embedding width (paper: 100).
        rng: Source of initialization randomness.
        pad_id: Row kept frozen at zero (padding positions contribute
            nothing and receive no gradient).
    """

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        rng: np.random.Generator,
        pad_id: int | None = 0,
    ):
        super().__init__()
        weight = uniform(rng, (vocab_size, dim), scale=0.05)
        if pad_id is not None:
            weight[pad_id] = 0.0
        self.weight = self.add_param("weight", weight)
        self.pad_id = pad_id
        self._ids: np.ndarray | None = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        """(B, T) int ids → (B, T, D) embeddings."""
        self._ids = ids
        return self.weight.value[ids]

    def infer(self, ids: np.ndarray) -> np.ndarray:
        """No-grad forward: same lookup, no backward cache retained."""
        return self.weight.value[ids]

    def backward(self, dout: np.ndarray) -> None:
        """Accumulate into weight.grad; embeddings have no input gradient.

        The scatter-add runs as one sorted segment reduction
        (``argsort`` + ``np.add.reduceat``) instead of ``np.add.at``,
        whose unbuffered per-element inner loop dominates the CNN/LSTM
        backward pass at batch scale. Duplicate ids sum exactly as
        before, up to float addition order.
        """
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        flat_ids = self._ids.ravel()
        if flat_ids.size:
            dim = dout.shape[-1]
            flat_d = np.ascontiguousarray(dout).reshape(-1, dim)
            order = np.argsort(flat_ids, kind="stable")
            sorted_ids = flat_ids[order]
            seg_starts = np.flatnonzero(np.diff(sorted_ids)) + 1
            seg_starts = np.concatenate(([0], seg_starts))
            sums = np.add.reduceat(flat_d[order], seg_starts, axis=0)
            self.weight.grad[sorted_ids[seg_starts]] += sums
        if self.pad_id is not None:
            self.weight.grad[self.pad_id] = 0.0


class Linear(Module):
    """Affine map ``y = x @ W + b`` over the last axis."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.weight = self.add_param(
            "weight", glorot_uniform(rng, in_dim, out_dim)
        )
        self.bias = self.add_param("bias", np.zeros(out_dim))
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight.value + self.bias.value

    def infer(self, x: np.ndarray) -> np.ndarray:
        """No-grad forward: identical math, no input cached."""
        return x @ self.weight.value + self.bias.value

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        x = self._x
        flat_x = x.reshape(-1, x.shape[-1])
        flat_d = dout.reshape(-1, dout.shape[-1])
        self.weight.grad += flat_x.T @ flat_d
        self.bias.grad += flat_d.sum(axis=0)
        return dout @ self.weight.value.T


class Dropout(Module):
    """Inverted dropout: active only in training mode."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (
            self.rng.random(x.shape) < keep
        ).astype(np.float64) / keep
        return x * self._mask

    def infer(self, x: np.ndarray) -> np.ndarray:
        """No-grad forward: inference-time dropout is the identity."""
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dout
        return dout * self._mask


class Relu(Module):
    """Rectified linear activation."""

    def __init__(self):
        super().__init__()
        self._active: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._active = x > 0
        return np.where(self._active, x, 0.0)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._active is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._active, dout, 0.0)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def __init__(self):
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return dout * (1.0 - self._out**2)
