"""Module base class: explicit parameter/submodule registration.

No ``__setattr__`` magic — layers register their parameters and children
explicitly, which keeps the traversal obvious and the code debuggable.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Module"]


class Module:
    """Base class for layers and models.

    Subclasses call :meth:`add_param` / :meth:`add_module` in ``__init__``.
    ``training`` toggles behaviours like dropout; :meth:`train` / :meth:`eval`
    set it recursively.
    """

    def __init__(self):
        self._params: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    # -- registration ---------------------------------------------------- #

    def add_param(self, name: str, value: np.ndarray) -> Parameter:
        """Register and return a new trainable parameter."""
        if name in self._params or name in self._modules:
            raise ValueError(f"duplicate registration: {name}")
        param = Parameter(value, name=name)
        self._params[name] = param
        return param

    def add_module(self, name: str, module: "Module") -> "Module":
        """Register and return a child module."""
        if name in self._params or name in self._modules:
            raise ValueError(f"duplicate registration: {name}")
        self._modules[name] = module
        return module

    # -- traversal --------------------------------------------------------- #

    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its children, depth-first."""
        out = list(self._params.values())
        for child in self._modules.values():
            out.extend(child.parameters())
        return out

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        """(dotted-name, parameter) pairs, depth-first."""
        out = [
            (f"{prefix}{name}", p) for name, p in self._params.items()
        ]
        for child_name, child in self._modules.items():
            out.extend(child.named_parameters(prefix=f"{prefix}{child_name}."))
        return out

    def num_parameters(self) -> int:
        """Total scalar parameter count (the paper's ``p`` column)."""
        return sum(p.size for p in self.parameters())

    # -- state ------------------------------------------------------------- #

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        """Enable training mode recursively (dropout active)."""
        self.training = True
        for child in self._modules.values():
            child.train()
        return self

    def eval(self) -> "Module":
        """Enable inference mode recursively (dropout disabled)."""
        self.training = False
        for child in self._modules.values():
            child.eval()
        return self

    # -- serialization ---------------------------------------------------- #

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter values keyed by dotted name."""
        return {name: p.value.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load values saved by :meth:`state_dict` (shapes must match)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"missing parameters in state dict: {sorted(missing)}")
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.value.shape}"
                )
            param.value[...] = value
