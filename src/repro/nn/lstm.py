"""Stacked LSTM with full backpropagation through time (Section 5.2, A.2).

Implements the LSTM formulation of Appendix A.2 (Zaremba & Sutskever
variant): gates i/f/o, candidate cell c̃, memory cell c, hidden state h.
:class:`StackedLSTM` stacks layers so layer ``l``'s hidden sequence feeds
layer ``l+1`` (Figure 18); the paper uses three layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.layers import sigmoid
from repro.nn.module import Module

__all__ = ["LSTMLayer", "StackedLSTM", "gather_last", "scatter_last"]


@dataclass
class _StepCache:
    """Per-timestep values needed by BPTT."""

    x: np.ndarray
    h_prev: np.ndarray
    c_prev: np.ndarray
    i: np.ndarray
    f: np.ndarray
    o: np.ndarray
    g: np.ndarray
    c: np.ndarray
    tanh_c: np.ndarray


class LSTMLayer(Module):
    """A single LSTM layer over a full sequence.

    Weight layout: ``W (D, 4K)``, ``U (K, 4K)``, ``b (4K,)`` with gate order
    ``[input, forget, output, candidate]``. The forget-gate bias starts at 1
    (standard trick to let memory flow early in training).
    """

    def __init__(self, in_dim: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.in_dim = in_dim
        self.hidden = hidden
        self.w = self.add_param("w", glorot_uniform(rng, in_dim, 4 * hidden))
        recurrent = np.concatenate(
            [orthogonal(rng, (hidden, hidden)) for _ in range(4)], axis=1
        )
        self.u = self.add_param("u", recurrent)
        bias = np.zeros(4 * hidden)
        bias[hidden : 2 * hidden] = 1.0
        self.b = self.add_param("b", bias)
        self._steps: list[_StepCache] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        """(B, T, D) → hidden-state sequence (B, T, K)."""
        batch, time, _ = x.shape
        k = self.hidden
        h = np.zeros((batch, k))
        c = np.zeros((batch, k))
        out = np.empty((batch, time, k))
        self._steps = []
        w, u, b = self.w.value, self.u.value, self.b.value
        for t in range(time):
            x_t = x[:, t, :]
            z = x_t @ w + h @ u + b
            i = sigmoid(z[:, :k])
            f = sigmoid(z[:, k : 2 * k])
            o = sigmoid(z[:, 2 * k : 3 * k])
            g = np.tanh(z[:, 3 * k :])
            c_new = f * c + i * g
            tanh_c = np.tanh(c_new)
            h_new = o * tanh_c
            self._steps.append(
                _StepCache(x_t, h, c, i, f, o, g, c_new, tanh_c)
            )
            h, c = h_new, c_new
            out[:, t, :] = h
        return out

    def backward(self, dh_seq: np.ndarray) -> np.ndarray:
        """Gradient of the hidden sequence → gradient of the input sequence."""
        if not self._steps:
            raise RuntimeError("backward called before forward")
        batch, time, k = dh_seq.shape
        dx = np.empty((batch, time, self.in_dim))
        dh_carry = np.zeros((batch, k))
        dc_carry = np.zeros((batch, k))
        w_t = self.w.value.T
        u_t = self.u.value.T
        for t in range(time - 1, -1, -1):
            step = self._steps[t]
            dh = dh_seq[:, t, :] + dh_carry
            do = dh * step.tanh_c
            dc = dc_carry + dh * step.o * (1.0 - step.tanh_c**2)
            di = dc * step.g
            dg = dc * step.i
            df = dc * step.c_prev
            dc_carry = dc * step.f
            dz = np.concatenate(
                [
                    di * step.i * (1.0 - step.i),
                    df * step.f * (1.0 - step.f),
                    do * step.o * (1.0 - step.o),
                    dg * (1.0 - step.g**2),
                ],
                axis=1,
            )
            self.w.grad += step.x.T @ dz
            self.u.grad += step.h_prev.T @ dz
            self.b.grad += dz.sum(axis=0)
            dx[:, t, :] = dz @ w_t
            dh_carry = dz @ u_t
        return dx


class StackedLSTM(Module):
    """``num_layers`` LSTM layers; each layer feeds the next (Figure 18)."""

    def __init__(
        self,
        in_dim: int,
        hidden: int,
        num_layers: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.layers: list[LSTMLayer] = []
        for idx in range(num_layers):
            layer = LSTMLayer(in_dim if idx == 0 else hidden, hidden, rng)
            self.add_module(f"layer{idx}", layer)
            self.layers.append(layer)
        self.hidden = hidden

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, dh_seq: np.ndarray) -> np.ndarray:
        grad = dh_seq
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad


def gather_last(h_seq: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Hidden state at each sequence's final valid (non-pad) position.

    Args:
        h_seq: (B, T, K) hidden sequence.
        lengths: (B,) true sequence lengths (≥ 1).
    """
    batch_idx = np.arange(h_seq.shape[0])
    return h_seq[batch_idx, np.maximum(lengths, 1) - 1, :]


def scatter_last(
    dout: np.ndarray, lengths: np.ndarray, time: int
) -> np.ndarray:
    """Inverse of :func:`gather_last` for the backward pass."""
    batch, k = dout.shape
    dh_seq = np.zeros((batch, time, k))
    batch_idx = np.arange(batch)
    dh_seq[batch_idx, np.maximum(lengths, 1) - 1, :] = dout
    return dh_seq
