"""Stacked LSTM with full backpropagation through time (Section 5.2, A.2).

Implements the LSTM formulation of Appendix A.2 (Zaremba & Sutskever
variant): gates i/f/o, candidate cell c̃, memory cell c, hidden state h.
:class:`StackedLSTM` stacks layers so layer ``l``'s hidden sequence feeds
layer ``l+1`` (Figure 18); the paper uses three layers.

The kernels are fused for workload-scale training: the input projection
``x @ W`` runs as one ``(B·T, D) @ (D, 4K)`` GEMM per direction instead of
``T`` small matmuls (the recurrent ``h @ U`` term is inherently
sequential and stays in the time loop), the per-step BPTT cache lives in
preallocated ``(T, B, ·)`` arrays instead of a list of per-step objects,
nonlinearities write into those arrays with ``out=``, and the weight /
input gradients are single flat GEMMs over the whole sequence. Only the
order of floating-point reductions changes, so seeded training runs match
the per-step reference to tight tolerance (verified by the gradient
checks and equivalence tests in ``tests/nn`` and the training benchmark).
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.layers import sigmoid
from repro.nn.module import Module

__all__ = ["LSTMLayer", "StackedLSTM", "gather_last", "scatter_last"]


class LSTMLayer(Module):
    """A single LSTM layer over a full sequence.

    Weight layout: ``W (D, 4K)``, ``U (K, 4K)``, ``b (4K,)`` with gate order
    ``[input, forget, output, candidate]``. The forget-gate bias starts at 1
    (standard trick to let memory flow early in training).
    """

    def __init__(self, in_dim: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.in_dim = in_dim
        self.hidden = hidden
        self.w = self.add_param("w", glorot_uniform(rng, in_dim, 4 * hidden))
        recurrent = np.concatenate(
            [orthogonal(rng, (hidden, hidden)) for _ in range(4)], axis=1
        )
        self.u = self.add_param("u", recurrent)
        bias = np.zeros(4 * hidden)
        bias[hidden : 2 * hidden] = 1.0
        self.b = self.add_param("b", bias)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """(B, T, D) → hidden-state sequence (B, T, K)."""
        batch, time, _ = x.shape
        k = self.hidden
        w, u, b = self.w.value, self.u.value, self.b.value

        # time-major input; free when x is already a (T, B, D) view from
        # the previous layer, one transpose copy otherwise
        xt = np.ascontiguousarray(x.transpose(1, 0, 2))
        # the whole input projection (plus bias) as one GEMM — the
        # recurrent term below is the only per-step matmul left
        zx = xt.reshape(batch * time, self.in_dim) @ w
        zx += b
        zx = zx.reshape(time, batch, 4 * k)

        gates = np.empty((time, batch, 4 * k))  # σ(i,f,o) · tanh(g)
        cs = np.empty((time, batch, k))
        tanh_cs = np.empty((time, batch, k))
        hs = np.empty((time, batch, k))

        h = np.zeros((batch, k))
        c = np.zeros((batch, k))
        z = np.empty((batch, 4 * k))
        scratch = np.empty((batch, k))
        # hoisted views: the time loop runs tens of thousands of times per
        # epoch, so per-step slicing overhead is worth trimming
        z_sig = z[:, : 3 * k]
        z_g = z[:, 3 * k :]
        sig_all = gates[:, :, : 3 * k]
        i_all = gates[:, :, :k]
        f_all = gates[:, :, k : 2 * k]
        o_all = gates[:, :, 2 * k : 3 * k]
        g_all = gates[:, :, 3 * k :]
        for t in range(time):
            np.matmul(h, u, out=z)
            z += zx[t]
            sigmoid(z_sig, out=sig_all[t])
            np.tanh(z_g, out=g_all[t])
            c_new = cs[t]
            np.multiply(f_all[t], c, out=c_new)  # f * c_prev ...
            np.multiply(i_all[t], g_all[t], out=scratch)
            c_new += scratch  # ... + i * g
            np.tanh(c_new, out=tanh_cs[t])
            np.multiply(o_all[t], tanh_cs[t], out=hs[t])
            h, c = hs[t], c_new
        self._cache = (xt, gates, cs, tanh_cs, hs)
        return hs.transpose(1, 0, 2)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """No-grad forward: identical op order, no BPTT cache slabs.

        Mirrors :meth:`forward` step for step — same fused input GEMM,
        same per-step recurrent matmul and nonlinearity sequence — but
        allocates only the output ``hs`` slab plus rolling per-step
        buffers, skipping the ``(T, B, 4K)`` gates and the ``cs`` /
        ``tanh_cs`` slabs the backward pass needs. Outputs are bitwise
        equal to :meth:`forward`.
        """
        batch, time, _ = x.shape
        k = self.hidden
        w, u, b = self.w.value, self.u.value, self.b.value

        xt = np.ascontiguousarray(x.transpose(1, 0, 2))
        zx = xt.reshape(batch * time, self.in_dim) @ w
        zx += b
        zx = zx.reshape(time, batch, 4 * k)

        hs = np.empty((time, batch, k))
        h = np.zeros((batch, k))
        c = np.zeros((batch, k))
        c_new = np.empty((batch, k))
        z = np.empty((batch, 4 * k))
        gate = np.empty((batch, 4 * k))
        scratch = np.empty((batch, k))
        z_sig = z[:, : 3 * k]
        z_g = z[:, 3 * k :]
        sig_t = gate[:, : 3 * k]
        i_t = gate[:, :k]
        f_t = gate[:, k : 2 * k]
        o_t = gate[:, 2 * k : 3 * k]
        g_t = gate[:, 3 * k :]
        for t in range(time):
            np.matmul(h, u, out=z)
            z += zx[t]
            sigmoid(z_sig, out=sig_t)
            np.tanh(z_g, out=g_t)
            np.multiply(f_t, c, out=c_new)
            np.multiply(i_t, g_t, out=scratch)
            c_new += scratch
            np.tanh(c_new, out=scratch)  # tanh(c) reuses the i·g scratch
            np.multiply(o_t, scratch, out=hs[t])
            h = hs[t]
            c, c_new = c_new, c
        return hs.transpose(1, 0, 2)

    def backward(self, dh_seq: np.ndarray) -> np.ndarray:
        """Gradient of the hidden sequence → gradient of the input sequence."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        xt, gates, cs, tanh_cs, hs = self._cache
        time, batch, k = hs.shape
        dht = np.ascontiguousarray(dh_seq.transpose(1, 0, 2))
        # contiguous copy: BLAS runs the per-step (B,4K)@(4K,K) matmul
        # ~2x faster on a contiguous right operand than on a .T view
        u_t = np.ascontiguousarray(self.u.value.T)

        # everything that doesn't depend on the carries is precomputed in
        # vectorized passes over the whole (T, B, ·) sequence; the time
        # loop below touches only the recurrent chain
        i_all = gates[:, :, :k]
        f_all = gates[:, :, k : 2 * k]
        o_all = gates[:, :, 2 * k : 3 * k]
        g_all = gates[:, :, 3 * k :]
        sig = gates[:, :, : 3 * k]
        sig_deriv = sig * (1.0 - sig)  # σ'(z) for the i/f/o gates
        # dc picks up dh · o · (1 - tanh²c); dz slots are the upstream
        # grad times the local gate derivative
        dc_gain = o_all * (1.0 - tanh_cs**2)
        di_slab = g_all * sig_deriv[:, :, :k]
        df_slab = np.empty_like(di_slab)  # c_prev · σ'(f); zero state at t=0
        np.multiply(cs[:-1], sig_deriv[1:, :, k : 2 * k], out=df_slab[1:])
        df_slab[0] = 0.0
        do_slab = tanh_cs * sig_deriv[:, :, 2 * k : 3 * k]
        dg_slab = i_all * (1.0 - g_all**2)

        dz_all = np.empty((time, batch, 4 * k))
        dz_i = dz_all[:, :, :k]
        dz_f = dz_all[:, :, k : 2 * k]
        dz_o = dz_all[:, :, 2 * k : 3 * k]
        dz_g = dz_all[:, :, 3 * k :]
        dh_carry = np.zeros((batch, k))
        dc_carry = np.zeros((batch, k))
        dh = np.empty((batch, k))
        dc = np.empty((batch, k))
        dc_next = np.empty((batch, k))
        for t in range(time - 1, -1, -1):
            np.add(dht[t], dh_carry, out=dh)
            np.multiply(dh, dc_gain[t], out=dc)
            dc += dc_carry
            # gate-input gradients written straight into the (T, B, 4K)
            # buffer (slice assignment instead of per-step concatenate)
            np.multiply(dc, di_slab[t], out=dz_i[t])
            np.multiply(dc, df_slab[t], out=dz_f[t])
            np.multiply(dh, do_slab[t], out=dz_o[t])
            np.multiply(dc, dg_slab[t], out=dz_g[t])
            # carries for step t-1
            np.multiply(dc, f_all[t], out=dc_next)
            dc_carry, dc_next = dc_next, dc_carry
            np.matmul(dz_all[t], u_t, out=dh_carry)

        # all weight/bias/input gradients as single flat GEMMs / reductions
        dz_flat = dz_all.reshape(time * batch, 4 * k)
        self.w.grad += xt.reshape(time * batch, self.in_dim).T @ dz_flat
        # h_prev sequence: zeros at t=0, then hs[:-1]
        if time > 1:
            self.u.grad += (
                hs[:-1].reshape((time - 1) * batch, k).T
                @ dz_all[1:].reshape((time - 1) * batch, 4 * k)
            )
        self.b.grad += dz_flat.sum(axis=0)
        dx = dz_flat @ self.w.value.T
        return dx.reshape(time, batch, self.in_dim).transpose(1, 0, 2)


class StackedLSTM(Module):
    """``num_layers`` LSTM layers; each layer feeds the next (Figure 18)."""

    def __init__(
        self,
        in_dim: int,
        hidden: int,
        num_layers: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.layers: list[LSTMLayer] = []
        for idx in range(num_layers):
            layer = LSTMLayer(in_dim if idx == 0 else hidden, hidden, rng)
            self.add_module(f"layer{idx}", layer)
            self.layers.append(layer)
        self.hidden = hidden

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def infer(self, x: np.ndarray) -> np.ndarray:
        """No-grad forward through every layer (no BPTT caches)."""
        out = x
        for layer in self.layers:
            out = layer.infer(out)
        return out

    def backward(self, dh_seq: np.ndarray) -> np.ndarray:
        grad = dh_seq
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad


def gather_last(h_seq: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Hidden state at each sequence's final valid (non-pad) position.

    Args:
        h_seq: (B, T, K) hidden sequence.
        lengths: (B,) true sequence lengths (≥ 1).
    """
    batch_idx = np.arange(h_seq.shape[0])
    return h_seq[batch_idx, np.maximum(lengths, 1) - 1, :]


def scatter_last(
    dout: np.ndarray, lengths: np.ndarray, time: int
) -> np.ndarray:
    """Inverse of :func:`gather_last` for the backward pass."""
    batch, k = dout.shape
    dh_seq = np.zeros((batch, time, k))
    batch_idx = np.arange(batch)
    dh_seq[batch_idx, np.maximum(lengths, 1) - 1, :] = dout
    return dh_seq
