"""Sequence-preserving convolution blocks for deep text CNNs.

The shallow Kim CNN pools immediately after one convolution. The deep
character CNNs the paper cites as future work ([9], VDCNN-style) stack
convolutions, which requires layers that map sequences to sequences:

- :class:`SequenceConv1d` — same-padded 1-D convolution (B,T,C_in) →
  (B,T,C_out);
- :class:`TemporalMaxPool` — stride-k max-pooling over time;
- :class:`GlobalMaxPool` — final max-over-time readout.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform
from repro.nn.module import Module

__all__ = ["SequenceConv1d", "TemporalMaxPool", "GlobalMaxPool"]


class SequenceConv1d(Module):
    """Same-padded 1-D convolution over the time axis.

    Args:
        in_dim: Input channels.
        out_dim: Output channels (kernels).
        window: Odd kernel width (same padding needs symmetry).
        rng: Initialization randomness.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        window: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        if window % 2 != 1:
            raise ValueError("window must be odd for same padding")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.window = window
        self.weight = self.add_param(
            "weight", glorot_uniform(rng, window * in_dim, out_dim)
        )
        self.bias = self.add_param("bias", np.zeros(out_dim))
        self._cols: np.ndarray | None = None
        self._in_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, time, dim = x.shape
        half = self.window // 2
        padded = np.zeros((batch, time + 2 * half, dim))
        padded[:, half : half + time, :] = x
        cols = np.empty((batch, time, self.window * dim))
        for j in range(self.window):
            cols[:, :, j * dim : (j + 1) * dim] = padded[:, j : j + time, :]
        self._cols = cols
        self._in_shape = x.shape
        return cols @ self.weight.value + self.bias.value

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cols is None or self._in_shape is None:
            raise RuntimeError("backward called before forward")
        batch, time, dim = self._in_shape
        flat_cols = self._cols.reshape(-1, self._cols.shape[-1])
        flat_d = dout.reshape(-1, self.out_dim)
        self.weight.grad += flat_cols.T @ flat_d
        self.bias.grad += flat_d.sum(axis=0)
        dcols = dout @ self.weight.value.T
        half = self.window // 2
        dpadded = np.zeros((batch, time + 2 * half, dim))
        for j in range(self.window):
            dpadded[:, j : j + time, :] += dcols[
                :, :, j * dim : (j + 1) * dim
            ]
        return dpadded[:, half : half + time, :]


class TemporalMaxPool(Module):
    """Non-overlapping max pooling over time with the given stride."""

    def __init__(self, stride: int = 2):
        super().__init__()
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stride = stride
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, time, channels = x.shape
        stride = self.stride
        out_time = (time + stride - 1) // stride
        pad = out_time * stride - time
        if pad:
            filler = np.full((batch, pad, channels), -np.inf)
            x_padded = np.concatenate([x, filler], axis=1)
        else:
            x_padded = x
        blocks = x_padded.reshape(batch, out_time, stride, channels)
        argmax = blocks.argmax(axis=2)  # (B, out_time, C)
        out = np.take_along_axis(
            blocks, argmax[:, :, None, :], axis=2
        ).squeeze(2)
        self._cache = (x.shape, argmax, out_time)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        in_shape, argmax, out_time = self._cache
        batch, time, channels = in_shape
        stride = self.stride
        dblocks = np.zeros((batch, out_time, stride, channels))
        np.put_along_axis(
            dblocks, argmax[:, :, None, :], dout[:, :, None, :], axis=2
        )
        dx = dblocks.reshape(batch, out_time * stride, channels)
        return dx[:, :time, :]


class GlobalMaxPool(Module):
    """Max over the whole time axis: (B, T, C) → (B, C)."""

    def __init__(self):
        super().__init__()
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        argmax = x.argmax(axis=1)  # (B, C)
        batch_idx = np.arange(x.shape[0])[:, None]
        out = x[batch_idx, argmax, np.arange(x.shape[2])]
        self._cache = (x.shape, argmax)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        shape, argmax = self._cache
        dx = np.zeros(shape)
        batch_idx = np.arange(shape[0])[:, None]
        dx[batch_idx, argmax, np.arange(shape[2])] = dout
        return dx
