"""Parameter serialization for trained models."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | Path) -> None:
    """Save a module's parameters to an ``.npz`` file."""
    state = module.state_dict()
    np.savez(Path(path), **state)


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``."""
    with np.load(Path(path)) as data:
        module.load_state_dict({name: data[name] for name in data.files})
    return module
