"""Parameter serialization for trained models.

The byte format is the ``npz`` codec of the unified
:mod:`repro.models.serialize` registry, so weight files written here and
the per-head payloads inside facilitator artifacts are the same format
read by the same code path.
"""

from __future__ import annotations

from pathlib import Path

from repro.nn.module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | Path) -> None:
    """Save a module's parameters to an ``.npz`` file."""
    from repro.models.serialize import encode_payload

    Path(path).write_bytes(encode_payload("npz", module.state_dict()))


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``."""
    from repro.models.serialize import decode_payload

    module.load_state_dict(decode_payload("npz", Path(path).read_bytes()))
    return module
