"""Training losses: softmax cross-entropy (Eq. A.3) and Huber loss (Eq. A.1).

Both return ``(mean loss, gradient w.r.t. the model output)`` so models can
chain straight into their backward passes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SoftmaxCrossEntropy",
    "HuberLoss",
    "SquaredLoss",
    "softmax",
    "log_softmax",
]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max subtraction for stability."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


class SoftmaxCrossEntropy:
    """Mean cross-entropy over integer class targets (Eq. A.3)."""

    def __call__(
        self,
        logits: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> tuple[float, np.ndarray]:
        """Returns (mean loss, dlogits).

        ``weights`` are per-row multiplicities: a row with weight ``k``
        contributes exactly like ``k`` verbatim copies of it in the batch
        (the duplicate-collapsed batch plans of
        :mod:`repro.models.neural_base` rely on this identity). ``None``
        keeps the plain mean.
        """
        batch = logits.shape[0]
        log_probs = log_softmax(logits)
        rows = np.arange(batch)
        dlogits = softmax(logits)
        dlogits[rows, targets] -= 1.0
        if weights is None:
            loss = -log_probs[rows, targets].mean()
            return float(loss), dlogits / batch
        total = float(weights.sum())
        loss = -float(weights @ log_probs[rows, targets]) / total
        dlogits *= weights[:, None]
        return loss, dlogits / total

    @staticmethod
    def eval_loss(probs: np.ndarray, targets: np.ndarray) -> float:
        """Mean cross-entropy from already-normalised probabilities
        (used when reporting the paper's test `Loss` column)."""
        rows = np.arange(probs.shape[0])
        clipped = np.clip(probs[rows, targets], 1e-12, 1.0)
        return float(-np.log(clipped).mean())


class HuberLoss:
    """Mean Huber loss (Eq. A.1/A.2): quadratic for |r| ≤ delta, linear
    beyond — robust to the heavy-tailed regression labels (Section 4.4.1).
    """

    def __init__(self, delta: float = 1.0):
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta

    def __call__(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> tuple[float, np.ndarray]:
        """Returns (mean loss, dpredictions).

        ``weights`` are per-row multiplicities; a weight-``k`` row matches
        ``k`` verbatim copies of it (see :class:`SoftmaxCrossEntropy`).
        """
        residual = predictions - targets
        abs_r = np.abs(residual)
        small = abs_r <= self.delta
        loss_terms = np.where(
            small,
            0.5 * residual**2,
            self.delta * (abs_r - 0.5 * self.delta),
        )
        psi = np.where(small, residual, self.delta * np.sign(residual))
        if weights is None:
            return float(loss_terms.mean()), psi / max(len(residual), 1)
        total = float(weights.sum())
        loss = float(weights @ loss_terms) / total
        return loss, weights * psi / total

    def eval_loss(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Mean Huber loss without the gradient (test-time reporting)."""
        loss, _ = self(predictions, targets)
        return loss


class SquaredLoss:
    """Mean squared error training loss — the non-robust alternative the
    Section 4.4.1 ablation compares Huber against."""

    def __call__(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> tuple[float, np.ndarray]:
        """Returns (mean loss, dpredictions).

        ``weights`` are per-row multiplicities; a weight-``k`` row matches
        ``k`` verbatim copies of it (see :class:`SoftmaxCrossEntropy`).
        """
        residual = predictions - targets
        if weights is None:
            loss = float(0.5 * (residual**2).mean()) if residual.size else 0.0
            return loss, residual / max(len(residual), 1)
        total = float(weights.sum())
        loss = float(0.5 * (weights @ residual**2)) / total
        return loss, weights * residual / total

    def eval_loss(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        loss, _ = self(predictions, targets)
        return loss
