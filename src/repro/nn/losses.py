"""Training losses: softmax cross-entropy (Eq. A.3) and Huber loss (Eq. A.1).

Both return ``(mean loss, gradient w.r.t. the model output)`` so models can
chain straight into their backward passes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SoftmaxCrossEntropy",
    "HuberLoss",
    "SquaredLoss",
    "softmax",
    "log_softmax",
]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max subtraction for stability."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


class SoftmaxCrossEntropy:
    """Mean cross-entropy over integer class targets (Eq. A.3)."""

    def __call__(
        self, logits: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Returns (mean loss, dlogits)."""
        batch = logits.shape[0]
        log_probs = log_softmax(logits)
        rows = np.arange(batch)
        loss = -log_probs[rows, targets].mean()
        dlogits = softmax(logits)
        dlogits[rows, targets] -= 1.0
        return float(loss), dlogits / batch

    @staticmethod
    def eval_loss(probs: np.ndarray, targets: np.ndarray) -> float:
        """Mean cross-entropy from already-normalised probabilities
        (used when reporting the paper's test `Loss` column)."""
        rows = np.arange(probs.shape[0])
        clipped = np.clip(probs[rows, targets], 1e-12, 1.0)
        return float(-np.log(clipped).mean())


class HuberLoss:
    """Mean Huber loss (Eq. A.1/A.2): quadratic for |r| ≤ delta, linear
    beyond — robust to the heavy-tailed regression labels (Section 4.4.1).
    """

    def __init__(self, delta: float = 1.0):
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta

    def __call__(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Returns (mean loss, dpredictions)."""
        residual = predictions - targets
        abs_r = np.abs(residual)
        small = abs_r <= self.delta
        loss_terms = np.where(
            small,
            0.5 * residual**2,
            self.delta * (abs_r - 0.5 * self.delta),
        )
        grad = np.where(
            small, residual, self.delta * np.sign(residual)
        ) / max(len(residual), 1)
        return float(loss_terms.mean()), grad

    def eval_loss(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Mean Huber loss without the gradient (test-time reporting)."""
        loss, _ = self(predictions, targets)
        return loss


class SquaredLoss:
    """Mean squared error training loss — the non-robust alternative the
    Section 4.4.1 ablation compares Huber against."""

    def __call__(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Returns (mean loss, dpredictions)."""
        residual = predictions - targets
        loss = float(0.5 * (residual**2).mean()) if residual.size else 0.0
        grad = residual / max(len(residual), 1)
        return loss, grad

    def eval_loss(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        loss, _ = self(predictions, targets)
        return loss
