"""Child-Sum Tree-LSTM over SQL ASTs (Tai et al. [52]; paper Section 8).

The paper's future work proposes tree-structured architectures as a model
that respects the compositional structure SQL shares with natural language
(Appendix A.1). The Child-Sum Tree-LSTM generalizes the sequential LSTM of
Section 5.2 to trees: a node's memory is gated by the *sum* of its
children's hidden states, with one forget gate per child, so information
composes bottom-up along the parse instead of left-to-right along the
token stream.

Per node :math:`j` with children :math:`C(j)`:

.. math::
    \\tilde h_j = \\sum_{k \\in C(j)} h_k \\\\
    i_j = \\sigma(W^{(i)} x_j + U^{(i)} \\tilde h_j + b^{(i)}) \\\\
    o_j = \\sigma(W^{(o)} x_j + U^{(o)} \\tilde h_j + b^{(o)}) \\\\
    u_j = \\tanh(W^{(u)} x_j + U^{(u)} \\tilde h_j + b^{(u)}) \\\\
    f_{jk} = \\sigma(W^{(f)} x_j + U^{(f)} h_k + b^{(f)}) \\\\
    c_j = i_j \\odot u_j + \\sum_k f_{jk} \\odot c_k \\\\
    h_j = o_j \\odot \\tanh(c_j)

Backpropagation is hand-written, like every layer in :mod:`repro.nn`, and
verified against numerical gradients in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.layers import sigmoid
from repro.nn.module import Module

__all__ = ["EncodedTree", "ChildSumTreeLSTM"]


@dataclass
class EncodedTree:
    """A tree flattened in topological (children-before-parents) order.

    ``symbol_ids[j]`` is the embedding-vocabulary id of node ``j``;
    ``children[j]`` lists the indices of node ``j``'s children, all of
    which are smaller than ``j``. The root is the last node.
    """

    symbol_ids: np.ndarray
    children: list[list[int]] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        return int(len(self.symbol_ids))

    def validate(self) -> None:
        """Raise ValueError unless the topological invariants hold."""
        n = self.num_nodes
        if n == 0:
            raise ValueError("tree must have at least one node")
        if len(self.children) != n:
            raise ValueError("children list must have one entry per node")
        seen: set[int] = set()
        for j, kids in enumerate(self.children):
            for k in kids:
                if not 0 <= k < j:
                    raise ValueError(
                        f"child {k} of node {j} breaks topological order"
                    )
                if k in seen:
                    raise ValueError(f"node {k} has two parents")
                seen.add(k)


@dataclass
class _NodeCache:
    """Forward values node ``j`` needs for its backward step."""

    x: np.ndarray
    h_sum: np.ndarray
    i: np.ndarray
    o: np.ndarray
    u: np.ndarray
    f: list[np.ndarray]
    c: np.ndarray
    tanh_c: np.ndarray


class ChildSumTreeLSTM(Module):
    """Child-Sum Tree-LSTM cell applied over whole trees.

    Args:
        in_dim: Node feature (embedding) width D.
        hidden: Hidden/memory width K.
        rng: Initialization randomness.

    Weight layout: ``w_iou (D, 3K)`` / ``u_iou (K, 3K)`` / ``b_iou (3K,)``
    with gate order ``[input, output, candidate]``, and a separate
    per-child forget gate ``w_f (D, K)`` / ``u_f (K, K)`` / ``b_f (K,)``
    whose bias starts at 1 (memory flows freely early in training).
    """

    def __init__(self, in_dim: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.in_dim = in_dim
        self.hidden = hidden
        self.w_iou = self.add_param(
            "w_iou", glorot_uniform(rng, in_dim, 3 * hidden)
        )
        self.u_iou = self.add_param(
            "u_iou",
            np.concatenate(
                [orthogonal(rng, (hidden, hidden)) for _ in range(3)], axis=1
            ),
        )
        self.b_iou = self.add_param("b_iou", np.zeros(3 * hidden))
        self.w_f = self.add_param("w_f", glorot_uniform(rng, in_dim, hidden))
        self.u_f = self.add_param("u_f", orthogonal(rng, (hidden, hidden)))
        self.b_f = self.add_param("b_f", np.ones(hidden))
        self._tree: EncodedTree | None = None
        self._cache: list[_NodeCache] = []
        self._h: np.ndarray | None = None
        self._c: np.ndarray | None = None

    def forward_tree(self, x: np.ndarray, tree: EncodedTree) -> np.ndarray:
        """(N, D) node features → (K,) root hidden state.

        Nodes are visited in index order, which the tree's topological
        layout guarantees is children-first.
        """
        n = tree.num_nodes
        if x.shape != (n, self.in_dim):
            raise ValueError(
                f"features must be ({n}, {self.in_dim}), got {x.shape}"
            )
        k = self.hidden
        h = np.zeros((n, k))
        c = np.zeros((n, k))
        cache: list[_NodeCache] = []
        for j in range(n):
            kids = tree.children[j]
            h_sum = h[kids].sum(axis=0) if kids else np.zeros(k)
            iou = x[j] @ self.w_iou.value + h_sum @ self.u_iou.value
            iou = iou + self.b_iou.value
            i = sigmoid(iou[:k])
            o = sigmoid(iou[k : 2 * k])
            u = np.tanh(iou[2 * k :])
            forget: list[np.ndarray] = []
            c_j = i * u
            if kids:
                f_shared = x[j] @ self.w_f.value + self.b_f.value
                for child in kids:
                    f_k = sigmoid(f_shared + h[child] @ self.u_f.value)
                    forget.append(f_k)
                    c_j = c_j + f_k * c[child]
            tanh_c = np.tanh(c_j)
            h[j] = o * tanh_c
            c[j] = c_j
            cache.append(
                _NodeCache(
                    x=x[j], h_sum=h_sum, i=i, o=o, u=u, f=forget,
                    c=c_j, tanh_c=tanh_c,
                )
            )
        self._tree = tree
        self._cache = cache
        self._h = h
        self._c = c
        return h[n - 1]

    def backward_tree(self, dh_root: np.ndarray) -> np.ndarray:
        """Gradient of the root hidden state w.r.t. node features.

        Accumulates parameter gradients and returns ``dx`` of shape (N, D).
        """
        if self._tree is None or self._h is None or self._c is None:
            raise RuntimeError("backward_tree called before forward_tree")
        tree = self._tree
        n = tree.num_nodes
        k = self.hidden
        dx = np.zeros((n, self.in_dim))
        dh = np.zeros((n, k))
        dc = np.zeros((n, k))
        dh[n - 1] = dh_root
        for j in range(n - 1, -1, -1):
            node = self._cache[j]
            do = dh[j] * node.tanh_c
            dc_j = dc[j] + dh[j] * node.o * (1.0 - node.tanh_c**2)
            di = dc_j * node.u
            du = dc_j * node.i
            d_iou = np.concatenate(
                [
                    di * node.i * (1.0 - node.i),
                    do * node.o * (1.0 - node.o),
                    du * (1.0 - node.u**2),
                ]
            )
            self.w_iou.grad += np.outer(node.x, d_iou)
            self.u_iou.grad += np.outer(node.h_sum, d_iou)
            self.b_iou.grad += d_iou
            dx[j] += d_iou @ self.w_iou.value.T
            dh_sum = d_iou @ self.u_iou.value.T
            for child, f_k in zip(tree.children[j], node.f):
                dh[child] += dh_sum
                dc[child] += dc_j * f_k
                df = dc_j * self._c[child]
                df_pre = df * f_k * (1.0 - f_k)
                self.w_f.grad += np.outer(node.x, df_pre)
                self.u_f.grad += np.outer(self._h[child], df_pre)
                self.b_f.grad += df_pre
                dx[j] += df_pre @ self.w_f.value.T
                dh[child] += df_pre @ self.u_f.value.T
        return dx
