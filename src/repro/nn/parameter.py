"""Trainable parameter container."""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A named trainable array with an accumulated gradient.

    Attributes:
        name: Dotted path assigned by the owning module tree.
        value: The parameter array (updated in place by optimizers).
        grad: Gradient accumulated by backward passes; same shape as value.
    """

    def __init__(self, value: np.ndarray, name: str = ""):
        self.name = name
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def size(self) -> int:
        """Number of scalar entries."""
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name!r}, shape={self.value.shape})"
