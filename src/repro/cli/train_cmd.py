"""``repro train`` — fit a QueryFacilitator on a workload file.

Trains one model per label column the workload provides (the problems of
Definition 4, plus elapsed time when present) and saves the fitted
facilitator for ``repro predict``.
"""

from __future__ import annotations

import argparse
import time

from repro.cli._common import (
    add_scale_arguments,
    emit,
    load_workload_arg,
    model_name_choices,
    scale_from_args,
)
from repro.core.facilitator import QueryFacilitator

__all__ = ["register"]


def register(subparsers) -> None:
    parser = subparsers.add_parser(
        "train",
        help="fit a QueryFacilitator on a workload JSONL file",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("workload", help="workload JSONL file (from generate)")
    parser.add_argument(
        "-o", "--output", required=True, help="path for the saved facilitator"
    )
    parser.add_argument(
        "--model",
        default="ccnn",
        choices=model_name_choices(),
        help="paper model to train for every problem (default: ccnn)",
    )
    add_scale_arguments(parser)
    parser.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    workload = load_workload_arg(args.workload)
    scale = scale_from_args(args)
    facilitator = QueryFacilitator(model_name=args.model, scale=scale)
    start = time.perf_counter()
    facilitator.fit(workload)
    elapsed = time.perf_counter() - start
    facilitator.save(args.output)
    problems = ", ".join(p.name.lower() for p in facilitator.problems)
    emit(
        f"trained {args.model} on {len(workload)} statements "
        f"({problems}) in {elapsed:.1f}s -> {args.output}"
    )
    return 0
