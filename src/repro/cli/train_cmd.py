"""``repro train`` — fit a QueryFacilitator on a workload file.

Trains one model per label column the workload provides (the problems of
Definition 4, plus elapsed time when present) and saves the fitted
facilitator for ``repro predict``.
"""

from __future__ import annotations

import argparse
import time

from repro.cli._common import (
    add_scale_arguments,
    emit,
    load_workload_arg,
    model_name_choices,
    scale_from_args,
)
__all__ = ["register"]


def register(subparsers) -> None:
    parser = subparsers.add_parser(
        "train",
        help="fit a QueryFacilitator on a workload JSONL file",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("workload", help="workload JSONL file (from generate)")
    parser.add_argument(
        "-o", "--output", required=True, help="path for the saved facilitator"
    )
    parser.add_argument(
        "--model",
        default="ccnn",
        choices=model_name_choices(),
        help="paper model to train for every problem (default: ccnn)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "train problem heads concurrently in a process pool of this "
            "size (default: REPRO_TRAIN_WORKERS, else serial); results "
            "are identical to serial training"
        ),
    )
    add_scale_arguments(parser)
    parser.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import train_facilitator

    workload = load_workload_arg(args.workload)
    scale = scale_from_args(args)
    start = time.perf_counter()
    facilitator = train_facilitator(
        workload, args.model, scale, workers=args.workers
    )
    elapsed = time.perf_counter() - start
    facilitator.save(args.output)
    problems = ", ".join(p.name.lower() for p in facilitator.problems)
    emit(
        f"trained {args.model} on {len(workload)} statements "
        f"({problems}) in {elapsed:.1f}s -> {args.output}"
    )
    for name, stats in facilitator.fit_stats.items():
        rate = stats["epochs_per_s"]
        rate_txt = f", {rate:.2f} epochs/s" if rate else ""
        epochs_txt = (
            f"{stats['epochs']} epochs" if stats["epochs"] else "fit"
        )
        emit(f"  {name}: {stats['seconds']:.2f}s ({epochs_txt}{rate_txt})")
    return 0
