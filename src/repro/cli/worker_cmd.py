"""``repro worker`` — run one fleet shard worker agent over TCP.

A worker agent is the remote half of ``repro serve --fleet``: it listens
on ``--listen HOST:PORT`` for a controller connection, loads the
facilitator artifact the controller's hello names, and answers shard
sub-batches over the length-prefixed JSON protocol
(:mod:`repro.serving.fleet`). The controller supervises it exactly like
an in-process shard worker: heartbeat loss (agent killed, host gone,
network partition) marks the shard crashed, its in-flight slices
re-route to surviving shards, and reconnects retry under exponential
backoff — so a fleet of these agents spread across hosts behaves like
one ``--workers N`` tier that happens to span machines.

The agent is artifact-agnostic at start: it loads whatever artifact the
controller's hello (or a later hot reload) names, by path on *this*
host, and keeps it loaded across reconnects so respawns are fast.

Typical topology (one agent per host, one controller)::

    # on each worker host
    python -m repro worker --listen 0.0.0.0:7070

    # on the frontend host
    python -m repro serve facilitator.bin \\
        --fleet workerhost1:7070,workerhost2:7070

``--listen`` with port 0 binds an ephemeral port; the agent prints the
bound address (``fleet worker listening on HOST:PORT``) so scripts and
tests can discover it.
"""

from __future__ import annotations

import argparse

__all__ = ["register"]


def register(subparsers) -> None:
    parser = subparsers.add_parser(
        "worker",
        help="run one fleet shard worker agent (for `repro serve --fleet`)",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--listen",
        default="127.0.0.1:7070",
        metavar="HOST:PORT",
        help="address to accept the controller connection on "
        "(port 0 = ephemeral, printed at start; default: 127.0.0.1:7070)",
    )
    parser.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    from repro.serving.fleet import FleetWorkerAgent, parse_endpoints

    ((host, port),) = parse_endpoints(args.listen)
    agent = FleetWorkerAgent(host, port)
    bound_host, bound_port = agent.address
    # flushed eagerly: launchers parse this line to learn an ephemeral port
    print(f"fleet worker listening on {bound_host}:{bound_port}", flush=True)
    try:
        agent.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        agent.close()
    return 0
