"""``repro compress`` — weighted workload compression (Section 8).

Reads a workload file, keeps a structurally diverse weighted subset, and
writes it back out. ``num_duplicates`` on each kept record carries its
rounded weight so downstream consumers can reconstruct weighted statistics.
"""

from __future__ import annotations

import argparse

from repro.cli._common import add_engine_arguments, emit, load_workload_arg
from repro.workloads.compression import (
    STRATEGIES,
    compress_workload,
    coverage_radius,
)
from repro.workloads.io import save_workload
from repro.workloads.records import QueryRecord, Workload

__all__ = ["register"]


def register(subparsers) -> None:
    parser = subparsers.add_parser(
        "compress",
        help="compress a workload to a weighted representative subset",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("workload", help="workload JSONL file (from generate)")
    parser.add_argument(
        "-o", "--output", required=True, help="output JSONL path"
    )
    parser.add_argument(
        "--ratio", type=float, default=0.1, help="kept fraction (default 0.1)"
    )
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="kcenter",
        help="selection strategy (default kcenter)",
    )
    parser.add_argument("--seed", type=int, default=0, help="sampling seed")
    add_engine_arguments(parser)
    parser.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    workload = load_workload_arg(args.workload)
    compressed = compress_workload(
        workload,
        ratio=args.ratio,
        strategy=args.strategy,
        seed=args.seed,
        workers=args.workers,
        chunk_size=args.chunk_size,
    )
    records = []
    for record, weight in zip(compressed.workload.records, compressed.weights):
        records.append(
            QueryRecord(
                statement=record.statement,
                error_class=record.error_class,
                answer_size=record.answer_size,
                cpu_time=record.cpu_time,
                session_class=record.session_class,
                user=record.user,
                num_duplicates=max(1, int(round(float(weight)))),
            )
        )
    out = Workload(f"{workload.name}-compressed", records)
    save_workload(out, args.output)
    radius = coverage_radius(workload, compressed)
    emit(
        f"kept {len(out)}/{len(workload)} statements "
        f"({compressed.ratio:.1%}, strategy={args.strategy}, "
        f"coverage radius {radius:.2f}) -> {args.output}"
    )
    return 0
