"""``repro analyze`` — the Section 4.3 workload analysis for a file.

Prints, for any workload JSONL file, the reports the paper builds before
modeling: structural property statistics (Figures 3/4), label distributions
(Figure 6), the structural correlation matrix (Figure 7), per-session-class
box statistics (Figure 8, when session labels exist), and — for raw logs —
the statement repetition histogram (Figure 20).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.by_session import by_session_class
from repro.analysis.correlation import structural_correlation_matrix
from repro.analysis.label_analysis import (
    class_distribution,
    regression_label_summary,
)
from repro.analysis.structural import StructuralTable, structural_table
from repro.cli._common import add_engine_arguments, emit
from repro.evalx.reporting import format_table
from repro.sqlang.pipeline import get_pipeline
from repro.workloads.io import iter_log, load_workload
from repro.workloads.records import Workload

__all__ = ["register"]


def register(subparsers) -> None:
    parser = subparsers.add_parser(
        "analyze",
        help="Section 4.3 workload analysis for a workload JSONL file",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("workload", help="workload JSONL file (from generate)")
    parser.add_argument(
        "--repetition",
        action="store_true",
        help="treat the input as a raw log and print the Figure 20 histogram",
    )
    parser.add_argument(
        "--templates",
        type=int,
        metavar="N",
        default=None,
        help="also print the top-N statement templates (Appendix B.3)",
    )
    add_engine_arguments(parser)
    parser.set_defaults(func=run)


def _structure_section(table: StructuralTable) -> str:
    rows = []
    for name in table.feature_names:
        column = table.column(name)
        rows.append(
            [
                name,
                float(column.mean()),
                float(column.std()),
                float(column.min()),
                float(column.max()),
                float(np.median(column)),
            ]
        )
    summary = format_table(
        ["property", "mean", "std", "min", "max", "median"],
        rows,
        title="Structural properties (Figures 3/4 panels)",
    )
    shares = format_table(
        ["share", "value"],
        [
            ["queries with >=1 join", f"{table.fraction_with_joins:.2%}"],
            ["queries touching >1 table", f"{table.fraction_multi_table:.2%}"],
            ["nested queries", f"{table.fraction_nested:.2%}"],
            [
                "nested queries with aggregation",
                f"{table.fraction_nested_aggregation:.2%}",
            ],
        ],
        title="Headline shares (Section 4.3.1)",
    )
    return summary + "\n\n" + shares


def _labels_section(workload: Workload) -> str:
    blocks: list[str] = []
    for column, title in (
        ("error_class", "Error class distribution (Figure 6a)"),
        ("session_class", "Session class distribution (Figure 6b)"),
    ):
        try:
            dist = class_distribution(workload, column)
        except ValueError:
            continue
        rows = [
            [cls, count, f"{share:.2%}"] for cls, (count, share) in dist.items()
        ]
        blocks.append(format_table(["class", "count", "share"], rows, title=title))
    for column, title in (
        ("answer_size", "Answer size (Figure 6c)"),
        ("cpu_time", "CPU time (Figures 6d/6e)"),
    ):
        try:
            summary = regression_label_summary(workload, column)
        except ValueError:
            continue
        rows = [
            ["mean", summary.mean],
            ["std", summary.std],
            ["min", summary.minimum],
            ["max", summary.maximum],
            ["mode", summary.mode],
            ["median", summary.median],
        ]
        blocks.append(format_table(["stat", "value"], rows, title=title))
    return "\n\n".join(blocks)


def _correlation_section(table: StructuralTable) -> str:
    matrix = structural_correlation_matrix(table)
    names = table.feature_names
    short = [name[:12] for name in names]
    rows = [
        [short[i]] + [f"{matrix[i, j]:+.2f}" for j in range(len(names))]
        for i in range(len(names))
    ]
    return format_table(
        ["property"] + short,
        rows,
        title="Structural property correlation (Figure 7)",
    )


def _session_section(workload: Workload) -> str:
    try:
        stats = by_session_class(workload)
    except ValueError:
        return ""
    rows = []
    for cls, box in stats.get("cpu_time", {}).items():
        rows.append([cls, box.q1, box.median, box.q3, box.mean])
    if not rows:
        return ""
    return format_table(
        ["session class", "cpu q1", "cpu median", "cpu q3", "cpu mean"],
        rows,
        title="CPU time by session class (Figure 8b)",
    )


def _pipeline_section() -> str:
    """Cache-effectiveness report for the shared analysis pipeline.

    The same counters are exported by the serving layer's ``/stats``
    endpoint; surfacing them here makes cache behavior observable in the
    offline path too.
    """
    stats = get_pipeline().stats
    rows = [
        ["analyses served", stats.hits + stats.misses],
        ["cache hits", stats.hits],
        ["cache misses (distinct parses)", stats.misses],
        ["hit rate", f"{stats.hit_rate:.2%}"],
        ["evictions", stats.evictions],
        ["cached entries", f"{stats.size} / {stats.max_size}"],
    ]
    return format_table(
        ["counter", "value"], rows, title="Statement-analysis pipeline cache"
    )


def _analyze_log(args: argparse.Namespace) -> int:
    """Raw-log mode: stream the gzipped log through ONE engine scan.

    Repetition and (optionally) template aggregates ride the same chunked
    pass, so the log is read once and never materialized.
    """
    from repro.analytics.aggregators import (
        RepetitionAggregator,
        TemplateAggregator,
    )
    from repro.analytics.core import DEFAULT_CHUNK_SIZE, ChunkedScan
    from repro.analysis.templates import summarize_template_groups

    aggregators = {"repetition": RepetitionAggregator()}
    if args.templates is not None:
        aggregators["templates"] = TemplateAggregator(weighted=False)
    scan = ChunkedScan(
        iter_log(args.workload),
        chunk_size=args.chunk_size or DEFAULT_CHUNK_SIZE,
        workers=args.workers,
    )
    results = scan.run(aggregators)
    rows = [[bucket, count] for bucket, count in results["repetition"].items()]
    emit(
        format_table(
            ["times repeated", "statements"],
            rows,
            title="Statement repetition (Figure 20)",
        )
    )
    if args.templates is not None:
        stats = summarize_template_groups(
            results["templates"], top=args.templates
        )
        emit("")
        emit(
            format_template_table(
                stats, title=f"Top {args.templates} templates (Appendix B.3)"
            )
        )
    return 0


def format_template_table(stats, title: str) -> str:
    """The template report table shared by ``analyze`` and ``templates``."""
    rows = [
        [
            " ".join(s.template.split())[:44],
            s.count,
            s.distinct_statements,
            "-" if s.mean_cpu_time is None else f"{s.mean_cpu_time:.2f}",
            max(s.session_classes, key=s.session_classes.get)
            if s.session_classes
            else "-",
        ]
        for s in stats
    ]
    return format_table(
        ["template", "hits", "variants", "mean cpu", "top class"],
        rows,
        title=title,
    )


def run(args: argparse.Namespace) -> int:
    if args.repetition:
        return _analyze_log(args)

    workload = load_workload(args.workload)
    emit(f"workload {workload.name!r}: {len(workload)} unique statements\n")
    table = structural_table(workload)
    emit(_structure_section(table))
    labels = _labels_section(workload)
    if labels:
        emit("")
        emit(labels)
    emit("")
    emit(_correlation_section(table))
    session = _session_section(workload)
    if session:
        emit("")
        emit(session)
    if args.templates is not None:
        from repro.analytics.core import DEFAULT_CHUNK_SIZE
        from repro.analysis.templates import mine_workload_templates

        stats = mine_workload_templates(
            workload,
            top=args.templates,
            chunk_size=args.chunk_size or DEFAULT_CHUNK_SIZE,
            workers=args.workers,
        )
        emit("")
        emit(
            format_template_table(
                stats, title=f"Top {args.templates} templates (Appendix B.3)"
            )
        )
    emit("")
    emit(_pipeline_section())
    return 0
