"""Command-line interface: ``python -m repro <command>``.

The CLI wires the library's pieces into the workflow a downstream user
actually runs:

- ``generate``  — synthesize an SDSS/SQLShare-shaped workload to a JSONL file
- ``analyze``   — the Section 4.3 workload analysis for a workload file
- ``templates`` — mine statement templates from a workload or raw log
- ``train``     — fit a :class:`~repro.core.facilitator.QueryFacilitator`
- ``predict``   — pre-execution insights for new statements
- ``insights``  — bulk-score a whole workload file through an artifact
- ``serve``     — micro-batching HTTP endpoint over a saved facilitator
- ``worker``    — one fleet shard worker agent (for ``serve --fleet``)
- ``stats``     — telemetry of a running endpoint (or a REPRO_OBS_LOG file)
- ``evaluate``  — train/test split evaluation with the paper's metrics
- ``experiment``— regenerate any table/figure of the paper's evaluation
- ``compress``  — workload compression (Section 8 future work)

Every command reads/writes plain files so the steps compose (workload
paths ending in ``.gz`` are read/written gzip-compressed)::

    python -m repro generate sdss --sessions 2000 -o sdss.jsonl
    python -m repro train sdss.jsonl --model ccnn -o facilitator.bin
    python -m repro predict facilitator.bin "SELECT * FROM PhotoObj"
    python -m repro serve facilitator.bin --port 8080 --warm sdss.jsonl
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.cli import (
    analyze_cmd,
    compress_cmd,
    evaluate_cmd,
    experiment_cmd,
    generate_cmd,
    insights_cmd,
    predict_cmd,
    serve_cmd,
    stats_cmd,
    templates_cmd,
    train_cmd,
    worker_cmd,
)

__all__ = ["main", "build_parser"]

_COMMANDS = (
    generate_cmd,
    analyze_cmd,
    templates_cmd,
    train_cmd,
    predict_cmd,
    insights_cmd,
    serve_cmd,
    worker_cmd,
    stats_cmd,
    evaluate_cmd,
    experiment_cmd,
    compress_cmd,
)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser with every subcommand registered."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Pre-execution SQL query property prediction "
            "(Zolaktaf et al., SIGMOD 2020 reproduction)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", metavar="command")
    for module in _COMMANDS:
        module.register(subparsers)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code instead of calling exit()."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return args.func(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
