"""Shared helpers for CLI subcommands: IO plumbing and argument groups."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.models.factory import MODEL_NAMES, ModelScale
from repro.workloads.io import load_workload
from repro.workloads.records import Workload

__all__ = [
    "add_engine_arguments",
    "add_scale_arguments",
    "scale_from_args",
    "load_workload_arg",
    "read_statements",
    "emit",
]


def add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Analytics-engine knobs shared by ``analyze``/``templates``/``insights``.

    Commands that scan a workload or log do so through the chunked
    map-combine-reduce engine (:mod:`repro.analytics`); these two flags
    control its fan-out. Results are bit-identical for every setting.
    """
    group = parser.add_argument_group("analytics engine")
    group.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "fan chunks out to N forkserver processes "
            "(0 = scan in-process; output is identical either way)"
        ),
    )
    group.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="RECORDS",
        help=(
            "records per engine chunk (default 8192); peak memory is "
            "O(chunk-size x workers + aggregate state)"
        ),
    )


def add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    """Model-capacity knobs shared by ``train`` and ``evaluate``."""
    group = parser.add_argument_group("model scale")
    group.add_argument(
        "--epochs", type=int, default=None, help="training epochs"
    )
    group.add_argument(
        "--embed-dim", type=int, default=None, help="token embedding width"
    )
    group.add_argument(
        "--tfidf-features",
        type=int,
        default=None,
        help="TF-IDF vocabulary cap (ctfidf/wtfidf)",
    )
    group.add_argument(
        "--seed", type=int, default=0, help="model initialization seed"
    )


def scale_from_args(args: argparse.Namespace) -> ModelScale:
    """A :class:`ModelScale` overridden by whichever knobs were passed."""
    overrides = {}
    for field_name, arg_name in (
        ("epochs", "epochs"),
        ("embed_dim", "embed_dim"),
        ("tfidf_features", "tfidf_features"),
        ("seed", "seed"),
    ):
        value = getattr(args, arg_name, None)
        if value is not None:
            overrides[field_name] = value
    return ModelScale(**overrides)


def load_workload_arg(path: str) -> Workload:
    """Load a workload file, raising a plain ValueError the CLI can print."""
    return load_workload(Path(path))


def read_statements(args: argparse.Namespace) -> list[str]:
    """Statements from positional args, ``--file``, or stdin (one per line)."""
    if getattr(args, "statements", None):
        return list(args.statements)
    if getattr(args, "file", None):
        text = Path(args.file).read_text(encoding="utf-8")
        return [line for line in text.splitlines() if line.strip()]
    data = sys.stdin.read()
    statements = [line for line in data.splitlines() if line.strip()]
    if not statements:
        raise ValueError("no statements given (args, --file, or stdin)")
    return statements


def emit(text: str) -> None:
    """Print a block of report text (kept separate for test capture).

    Flushed eagerly so launchers reading a piped ``repro serve`` banner
    (e.g. to learn an ephemeral port) see it at bind time.
    """
    print(text, flush=True)


def model_name_choices() -> list[str]:
    """Model names accepted by --model flags."""
    return sorted(MODEL_NAMES)
