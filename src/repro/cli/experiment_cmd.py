"""``repro experiment`` — regenerate any table or figure of the paper.

``repro experiment --list`` enumerates every experiment id; ``repro
experiment table2 fig8`` runs specific ones. Experiments run at the scale
selected by ``REPRO_SCALE`` (small/medium/large), sharing one in-process
cache of generated workloads and trained models across ids.
"""

from __future__ import annotations

import argparse
from collections.abc import Callable

from repro.cli._common import emit
from repro.experiments import ablations, case_study, error_analysis, extensions
from repro.experiments import figures, tables
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.compression_extension import compression_experiment
from repro.experiments.deep_cnn_extension import deep_cnn_experiment
from repro.experiments.elapsed_extension import elapsed_time_experiment
from repro.experiments.tree_extension import tree_lstm_experiment

__all__ = ["register", "EXPERIMENTS"]

#: Experiment id → (driver, one-line description). One entry per measured
#: table/figure in the paper plus the ablation/extension studies.
EXPERIMENTS: dict[str, tuple[Callable[[ExperimentConfig], str], str]] = {
    "table1": (tables.table1_splits, "dataset sizes and splits"),
    "table2": (
        tables.table2_homogeneous_instance,
        "error/CPU/answer-size models on SDSS",
    ),
    "table3": (tables.table3_answer_size_qerror, "answer-size qerror (SDSS)"),
    "table4": (tables.table4_session_classification, "session classification"),
    "table5": (tables.table5_sqlshare_cpu, "CPU time across SQLShare settings"),
    "table6": (
        tables.table6_qerror_homogeneous_schema,
        "CPU qerror, Homogeneous Schema",
    ),
    "table7": (
        tables.table7_qerror_heterogeneous_schema,
        "CPU qerror, Heterogeneous Schema",
    ),
    "fig3": (figures.fig3_sdss_structure, "SDSS structural distributions"),
    "fig4": (figures.fig4_sqlshare_structure, "SQLShare structural distributions"),
    "fig6": (figures.fig6_label_distributions, "label distributions"),
    "fig7": (figures.fig7_correlation, "structural correlation matrix"),
    "fig8": (figures.fig8_by_session_class, "SDSS metrics by session class"),
    "fig12": (error_analysis.fig12_mse_by_session, "MSE by session class"),
    "fig13": (
        error_analysis.fig13_error_by_structure,
        "answer-size error vs structure",
    ),
    "fig14": (
        error_analysis.fig14_error_by_setting,
        "CPU error across the three settings",
    ),
    "fig20": (figures.fig20_repetition, "statement repetition histogram"),
    "case-study": (case_study.case_study, "Figures 15/16 sample queries"),
    "ablation-loss": (
        ablations.ablation_loss_and_transform,
        "Huber vs squared loss x log transform",
    ),
    "ablation-cnn": (
        ablations.ablation_cnn_architecture,
        "CNN kernel sizes and pooling",
    ),
    "ablation-lstm-depth": (ablations.ablation_lstm_depth, "LSTM depth 1 vs 3"),
    "ablation-digit-mask": (
        ablations.ablation_digit_masking,
        "<DIGIT> masking on vs off (Sec 4.4.1)",
    ),
    "ext-transfer": (
        extensions.transfer_learning_experiment,
        "SDSS->SQLShare transfer (Section 8)",
    ),
    "ext-multitask": (
        extensions.multitask_experiment,
        "multi-task vs single-task ccnn (Section 8)",
    ),
    "ext-deep-cnn": (
        deep_cnn_experiment,
        "deep character CNN vs shallow (Section 8)",
    ),
    "ext-tree-lstm": (
        tree_lstm_experiment,
        "Child-Sum Tree-LSTM over ASTs (Section 8)",
    ),
    "ext-elapsed": (
        elapsed_time_experiment,
        "elapsed-time vs CPU-time prediction (Section 8)",
    ),
    "ext-compression": (
        compression_experiment,
        "training on compressed workloads (Section 8)",
    ),
}


def register(subparsers) -> None:
    parser = subparsers.add_parser(
        "experiment",
        help="regenerate tables/figures of the paper's evaluation",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "ids",
        nargs="*",
        metavar="ID",
        help="experiment ids (see --list); default: all tables and figures",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    if args.list:
        width = max(len(key) for key in EXPERIMENTS)
        for key, (_, description) in EXPERIMENTS.items():
            emit(f"{key.ljust(width)}  {description}")
        return 0

    ids = args.ids or [k for k in EXPERIMENTS if k.startswith(("table", "fig"))]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise ValueError(
            f"unknown experiment ids {unknown}; see `repro experiment --list`"
        )
    config = default_config()
    for key in ids:
        driver, _ = EXPERIMENTS[key]
        emit(f"== {key} (scale: {config.name}) ==")
        emit(driver(config))
        emit("")
    return 0
