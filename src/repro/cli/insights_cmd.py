"""``repro insights`` — bulk pre-execution insights for a whole workload.

The batch analogue of ``repro predict``: stream every statement of a
workload (or raw log) through a saved facilitator's compiled inference
plan and write one JSON insight object per record, in input order, to a
JSONL file (``.gz`` writes gzip). Scoring runs in engine-sized chunks so
memory stays flat however large the input; ``--workers`` fans chunks out
to processes that each memory-map the artifact once, and the output is
bit-identical to the serial pass.
"""

from __future__ import annotations

import argparse

from repro.cli._common import add_engine_arguments, emit

__all__ = ["register"]


def register(subparsers) -> None:
    parser = subparsers.add_parser(
        "insights",
        help="bulk-score a workload file through a saved facilitator",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "workload",
        help="workload or raw-log JSONL file to score (.gz ok)",
    )
    parser.add_argument(
        "--artifact",
        required=True,
        help="saved facilitator artifact (repro train output)",
    )
    parser.add_argument(
        "--out",
        required=True,
        help="output JSONL path, one insight object per input record "
        "(.gz writes gzip)",
    )
    parser.add_argument(
        "--no-mmap",
        action="store_true",
        help="load artifact arrays into memory instead of mmap",
    )
    add_engine_arguments(parser)
    parser.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    from repro.analytics.core import DEFAULT_CHUNK_SIZE
    from repro.analytics.insights import bulk_insights, iter_statements

    stats = bulk_insights(
        args.artifact,
        iter_statements(args.workload),
        args.out,
        chunk_size=args.chunk_size or DEFAULT_CHUNK_SIZE,
        workers=args.workers,
        mmap=not args.no_mmap,
    )
    mode = f"{stats.workers} workers" if stats.pooled else "in-process"
    emit(
        f"scored {stats.records} statements in {stats.chunks} chunks "
        f"({mode}) -> {stats.out_path}"
    )
    return 0
