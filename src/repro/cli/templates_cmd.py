"""``repro templates`` — mine statement templates from a workload or log.

The Appendix B.3 template report as a first-class command: group every
statement by its constant-masked template and print the heaviest groups.
The input is streamed through the chunked analytics engine, so a
multi-gigabyte gzipped log mines in O(templates) memory; ``--workers``
fans chunks out to a process pool with bit-identical results.
"""

from __future__ import annotations

import argparse

from repro.analytics.core import DEFAULT_CHUNK_SIZE
from repro.cli._common import add_engine_arguments, emit
from repro.cli.analyze_cmd import format_template_table
from repro.workloads.io import (
    WorkloadFormatError,
    iter_log,
    iter_workload,
    read_log_header,
)

__all__ = ["register"]


def register(subparsers) -> None:
    parser = subparsers.add_parser(
        "templates",
        help="mine statement templates from a workload or raw log",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "input",
        help="workload or raw-log JSONL file (.gz ok; kind is sniffed)",
    )
    parser.add_argument(
        "--top",
        type=int,
        metavar="N",
        default=20,
        help="print the N heaviest templates (default 20)",
    )
    add_engine_arguments(parser)
    parser.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    from repro.analysis.templates import (
        mine_log_templates,
        mine_workload_templates,
    )

    chunk_size = args.chunk_size or DEFAULT_CHUNK_SIZE
    try:
        read_log_header(args.input)
        is_log = True
    except WorkloadFormatError:
        is_log = False
    if is_log:
        stats = mine_log_templates(
            iter_log(args.input),
            top=args.top,
            chunk_size=chunk_size,
            workers=args.workers,
        )
        title = f"Top {args.top} templates (raw log hits)"
    else:
        stats = mine_workload_templates(
            iter_workload(args.input),
            top=args.top,
            chunk_size=chunk_size,
            workers=args.workers,
        )
        title = f"Top {args.top} templates (duplicate-weighted)"
    emit(format_template_table(stats, title=title))
    return 0
