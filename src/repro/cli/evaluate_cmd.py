"""``repro evaluate`` — split a workload, train models, report paper metrics.

Runs one query facilitation problem end to end on a workload file: random
(or by-user) 80/10/10 split, training for each requested model, and a
paper-shaped report — accuracy/per-class F/cross-entropy for classification
(Tables 2 and 4), Huber loss/MSE/qerror percentiles for regression
(Tables 2, 3, 5-7).
"""

from __future__ import annotations

import argparse

from repro.cli._common import (
    add_scale_arguments,
    emit,
    load_workload_arg,
    model_name_choices,
    scale_from_args,
)
from repro.core.evaluation import evaluate_classification, evaluate_regression
from repro.core.problems import Problem
from repro.core.splits import random_split, user_split
from repro.evalx.reporting import format_table
from repro.models.factory import build_model

__all__ = ["register"]

_PROBLEMS = {
    "error": Problem.ERROR_CLASSIFICATION,
    "cpu-time": Problem.CPU_TIME,
    "answer-size": Problem.ANSWER_SIZE,
    "session": Problem.SESSION_CLASSIFICATION,
    "elapsed": Problem.ELAPSED_TIME,
}


def register(subparsers) -> None:
    parser = subparsers.add_parser(
        "evaluate",
        help="train/test evaluation of models on one problem",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("workload", help="workload JSONL file (from generate)")
    parser.add_argument(
        "--problem",
        required=True,
        choices=sorted(_PROBLEMS),
        help="query facilitation problem to evaluate",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=["baseline", "ctfidf", "ccnn"],
        choices=model_name_choices(),
        metavar="MODEL",
        help="models to compare (default: baseline ctfidf ccnn)",
    )
    parser.add_argument(
        "--split",
        choices=("random", "user"),
        default="random",
        help="random = homogeneous settings; user = heterogeneous schema",
    )
    parser.add_argument(
        "--split-seed", type=int, default=0, help="split shuffling seed"
    )
    add_scale_arguments(parser)
    parser.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    workload = load_workload_arg(args.workload)
    problem = _PROBLEMS[args.problem]
    scale = scale_from_args(args)

    if args.split == "user":
        split = user_split(workload, seed=args.split_seed)
    else:
        split = random_split(workload, seed=args.split_seed)
    n_train, n_valid, n_test = split.sizes()
    emit(
        f"workload {workload.name!r}: {len(workload)} statements "
        f"(train {n_train} / valid {n_valid} / test {n_test})"
    )

    if problem.is_classification:
        labels = workload.labels(problem.label_column)
        num_classes = len({str(v) for v in labels})
        models = {
            name: build_model(
                name, problem.task, num_classes=num_classes, scale=scale
            )
            for name in args.models
        }
        outcome = evaluate_classification(problem, split, models)
        headers = (
            ["model", "accuracy", "loss"]
            + [f"F_{c}" for c in outcome.class_names]
            + ["params"]
        )
        rows = [
            [r.model, r.accuracy, r.loss]
            + [r.f_per_class.get(c, 0.0) for c in outcome.class_names]
            + [r.num_parameters]
            for r in outcome.reports
        ]
        emit(format_table(headers, rows, title=f"{args.problem} classification"))
    else:
        models = {
            name: build_model(name, problem.task, scale=scale)
            for name in args.models
        }
        outcome = evaluate_regression(problem, split, models)
        percentiles = sorted(outcome.reports[0].qerror_percentiles)
        headers = ["model", "loss", "MSE"] + [
            f"q{int(p)}%" for p in percentiles
        ]
        rows = [
            [r.model, r.loss, r.mse]
            + [r.qerror_percentiles[p] for p in percentiles]
            for r in outcome.reports
        ]
        emit(format_table(headers, rows, title=f"{args.problem} regression"))
    return 0
