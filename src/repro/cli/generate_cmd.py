"""``repro generate`` — synthesize a workload file.

Produces the library's substitute for the paper's proprietary inputs: an
SDSS-shaped or SQLShare-shaped workload written as JSON lines. With
``--raw-log`` the pre-deduplication SDSS log (one entry per hit, with
session metadata) is written instead, which feeds the ``analyze
--repetition`` report and any custom dedup pipeline.
"""

from __future__ import annotations

import argparse

from repro.cli._common import emit
from repro.workloads.io import save_log, save_workload
from repro.workloads.sdss import generate_sdss_log, generate_sdss_workload
from repro.workloads.sqlshare import generate_sqlshare_workload

__all__ = ["register"]


def register(subparsers) -> None:
    parser = subparsers.add_parser(
        "generate",
        help="synthesize an SDSS/SQLShare-shaped workload to a JSONL file",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "source",
        choices=("sdss", "sqlshare"),
        help="which workload shape to synthesize",
    )
    parser.add_argument(
        "-o",
        "--output",
        required=True,
        help="output JSONL path (a .gz suffix writes gzip-compressed)",
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=2000,
        help="SDSS sessions to simulate (sdss only)",
    )
    parser.add_argument(
        "--users",
        type=int,
        default=60,
        help="SQLShare users to simulate (sqlshare only)",
    )
    parser.add_argument("--seed", type=int, default=42, help="generator seed")
    parser.add_argument(
        "--raw-log",
        action="store_true",
        help="write the raw pre-dedup SDSS log instead of the workload",
    )
    parser.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    if args.source == "sdss":
        if args.raw_log:
            entries = generate_sdss_log(n_sessions=args.sessions, seed=args.seed)
            save_log(entries, args.output, name="sdss-log")
            emit(f"wrote {len(entries)} log entries to {args.output}")
            return 0
        workload = generate_sdss_workload(n_sessions=args.sessions, seed=args.seed)
    else:
        if args.raw_log:
            raise ValueError("--raw-log is only available for the sdss source")
        workload = generate_sqlshare_workload(n_users=args.users, seed=args.seed)
    save_workload(workload, args.output)
    emit(f"wrote {len(workload)} records to {args.output}")
    return 0
