"""``repro serve`` — run a saved facilitator as a JSON/HTTP service.

Loads a facilitator artifact saved by ``repro train`` and serves
pre-execution insights over HTTP with micro-batched inference: concurrent
``POST /insights`` requests are coalesced into single ``insights_batch``
calls (up to ``--max-batch`` statements or ``--max-wait-ms``).

With ``--workers N`` (N >= 1) the artifact is served by the fault-tolerant
sharded tier instead of an in-process model: N supervised worker
processes, sharded by statement digest, with admission control
(``--queue-depth`` outstanding requests, then HTTP 503 + ``Retry-After``),
per-request deadlines (``--deadline-ms``), degraded re-routing around
dead shards, and zero-downtime artifact hot-reload (``POST /reload``, or
``--watch`` to reload automatically when the artifact file changes).
``--fault-plan`` (inline JSON or ``@path``) injects scripted worker
crashes/hangs for chaos drills — see ``repro.serving.faults``.

With ``--fleet host:port,...`` the shard workers are *remote*: one
``repro worker --listen`` agent per endpoint, driven over the
length-prefixed JSON/TCP fleet protocol with the same supervision —
heartbeat loss marks a remote shard crashed, its slices re-route to
surviving shards, and the controller reconnects under backoff.

``--frontend async`` swaps the thread-per-connection HTTP front for the
asyncio front end: one event loop multiplexes thousands of keep-alive
HTTP/1.1 connections (pipelining included), reaps idle and slowloris
connections (``--idle-timeout-s`` / ``--header-timeout-s``), and caps
concurrently open connections (``--conn-cap``, 503 above it). Same
routes, same response bytes.

``GET /stats`` exposes request counts, batch sizes, latency percentiles,
and cache hit rates (``?trace=1`` adds the last traced batch's per-stage
breakdown on the single-process service); ``GET /metrics`` is the
Prometheus text endpoint; ``GET /healthz`` reports liveness, artifact
identity, and per-worker status. Set ``REPRO_OBS_LOG=path.jsonl`` to also
write one structured access record per micro-batch; inspect either
surface with ``repro stats``.

Typical workflow::

    python -m repro generate sdss --sessions 2000 -o sdss.jsonl
    python -m repro train sdss.jsonl --model ctfidf -o facilitator.bin
    python -m repro serve facilitator.bin --port 8080 --warm sdss.jsonl
    python -m repro serve facilitator.bin --workers 4 --watch

    curl -s localhost:8080/insights -d '{"statement": "SELECT * FROM PhotoObj"}'
    curl -s localhost:8080/stats
    curl -s -X POST localhost:8080/reload -d '{"path": "facilitator.bin"}'
"""

from __future__ import annotations

import argparse

from repro.cli._common import emit

__all__ = ["register"]


def register(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="serve a saved facilitator as a micro-batching HTTP endpoint",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("facilitator", help="artifact saved by `repro train`")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="statements per micro-batch (default: 64)",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="how long a batch waits for co-riders (default: 2ms)",
    )
    parser.add_argument(
        "--warm",
        metavar="WORKLOAD",
        default=None,
        help="prime the analysis cache from this workload JSONL before serving",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="serve from N supervised shard worker processes instead of "
        "in-process (0 = single-process service; default: 0)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=1024,
        help="admission high-water mark: outstanding requests beyond this "
        "are shed with HTTP 503 + Retry-After (sharded tier; default: 1024)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline; expired requests answer 504 "
        "(sharded tier; default: unbounded)",
    )
    parser.add_argument(
        "--batch-deadline-s",
        type=float,
        default=30.0,
        help="how long one batch may run inside a worker before the "
        "supervisor declares it hung and replaces it (default: 30s)",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="watch the artifact file and hot-reload (zero downtime) when "
        "it changes",
    )
    parser.add_argument(
        "--max-body-mb",
        type=float,
        default=16.0,
        help="largest accepted request body in MiB; bigger answers 413 "
        "(default: 16)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON|@PATH",
        help="inject scripted faults into shard workers (chaos drills): "
        "inline JSON or @path to a plan file; also read from the "
        "REPRO_FAULT_PLAN environment variable",
    )
    parser.add_argument(
        "--no-mmap",
        action="store_true",
        help="read artifact weight arrays eagerly instead of memory-mapping "
        "them. By default the server memory-maps the uncompressed float32 "
        "weight members of v3 artifacts (sub-second cold start; shard "
        "workers share resident weight pages); older v2 artifacts always "
        "load eagerly. Use this flag to force eager loads, e.g. when the "
        "artifact lives on a filesystem where mapped reads are slow",
    )
    parser.add_argument(
        "--fleet",
        default=None,
        metavar="HOST:PORT,...",
        help="serve from remote fleet worker agents (`repro worker "
        "--listen`) at these endpoints, one shard per endpoint, instead "
        "of local worker processes; supervision, degraded re-routing, "
        "deadlines, and hot reload behave exactly as with --workers",
    )
    parser.add_argument(
        "--frontend",
        choices=("thread", "async"),
        default="thread",
        help="HTTP front end: 'thread' (stdlib thread-per-connection) or "
        "'async' (one asyncio event loop multiplexing thousands of "
        "keep-alive connections; default: thread)",
    )
    parser.add_argument(
        "--idle-timeout-s",
        type=float,
        default=60.0,
        help="async frontend: close a keep-alive connection idle this "
        "long between requests (default: 60s)",
    )
    parser.add_argument(
        "--header-timeout-s",
        type=float,
        default=10.0,
        help="async frontend: reap a connection whose partial request "
        "stalls this long mid-read — the slowloris guard (default: 10s)",
    )
    parser.add_argument(
        "--conn-cap",
        type=int,
        default=1024,
        help="async frontend: maximum concurrently open connections; "
        "connections beyond it are answered 503 and closed "
        "(default: 1024)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    parser.set_defaults(func=run)


def _serve(service, args, banner: str) -> None:
    # imported lazily so `repro --help` stays fast
    from repro.serving import ArtifactWatcher, make_async_server, make_server

    watcher = None
    if args.watch:
        watcher = ArtifactWatcher(
            service,
            args.facilitator,
            on_event=lambda event, detail: emit(f"watch: {event}: {detail}"),
        ).start()
    max_body_bytes = int(args.max_body_mb * 1024 * 1024)
    if args.frontend == "async":
        server = make_async_server(
            service,
            host=args.host,
            port=args.port,
            quiet=not args.verbose,
            max_body_bytes=max_body_bytes,
            idle_timeout_s=args.idle_timeout_s,
            header_timeout_s=args.header_timeout_s,
            max_connections=args.conn_cap,
        )
        banner += " [async frontend]"
    else:
        server = make_server(
            service,
            host=args.host,
            port=args.port,
            quiet=not args.verbose,
            max_body_bytes=max_body_bytes,
        )
    host, port = server.server_address[:2]
    emit(
        f"serving {banner} on http://{host}:{port} — POST /insights, "
        f"POST /reload, GET /stats, GET /metrics, GET /healthz"
        + (" (watching artifact for changes)" if watcher else "")
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if watcher is not None:
            watcher.stop()
        server.server_close()


def run(args: argparse.Namespace) -> int:
    if args.fleet:
        return _run_sharded(args)
    if args.workers > 0:
        return _run_sharded(args)
    return _run_single(args)


def _run_single(args: argparse.Namespace) -> int:
    from repro.serving import FacilitatorService

    service = FacilitatorService.from_artifact(
        args.facilitator,
        mmap=not args.no_mmap,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
    )
    facilitator = service.facilitator
    # remembered so POST /reload without a body can re-read the artifact
    service.artifact_path = args.facilitator
    with service:
        if args.warm:
            from repro.workloads.io import iter_workload

            primed = service.warm_up(
                record.statement for record in iter_workload(args.warm)
            )
            emit(f"warmed analysis cache with {primed} statements")
        problems = ", ".join(p.name.lower() for p in facilitator.problems)
        _serve(service, args, f"{facilitator.model_name} ({problems})")
    stats = service.stats
    emit(
        f"served {stats.requests} requests / {stats.statements} statements "
        f"in {stats.batches} batches "
        f"(p50 {stats.latency_p50_ms}ms, p95 {stats.latency_p95_ms}ms, "
        f"pipeline hit rate {stats.pipeline['hit_rate']:.0%})"
    )
    return 0


def _run_sharded(args: argparse.Namespace) -> int:
    from repro.serving import (
        FaultPlan,
        FleetFacilitatorService,
        ShardedFacilitatorService,
        parse_endpoints,
    )

    fault_plan = None
    if args.fault_plan:
        value = args.fault_plan
        if value.startswith("@"):
            with open(value[1:], encoding="utf-8") as handle:
                value = handle.read()
        fault_plan = FaultPlan.from_json(value)
        emit(f"fault plan armed: {len(fault_plan.specs)} spec(s)")
    common = dict(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.queue_depth,
        default_deadline_s=(
            args.deadline_ms / 1000.0 if args.deadline_ms else None
        ),
        batch_deadline_s=args.batch_deadline_s,
        fault_plan=fault_plan,
        warm_path=args.warm,
        mmap=not args.no_mmap,
    )
    if args.fleet:
        endpoints = parse_endpoints(args.fleet)
        service = FleetFacilitatorService(
            args.facilitator, endpoints=endpoints, **common
        )
        tier = f"fleet of {len(endpoints)} remote shard(s)"
    else:
        service = ShardedFacilitatorService(
            args.facilitator, n_workers=args.workers, **common
        )
        tier = f"x{args.workers} shards"
    with service:
        problems = ", ".join(service.problem_names)
        _serve(service, args, f"{service.model_name} ({problems}) {tier}")
    stats = service.stats
    emit(
        f"served {stats.requests} requests / {stats.statements} statements "
        f"in {stats.batches} batches "
        f"(p50 {stats.latency_p50_ms}ms, p99 {stats.latency_p99_ms}ms, "
        f"shed {stats.shed}, degraded {stats.degraded}, "
        f"restarts {stats.restarts})"
    )
    return 0
