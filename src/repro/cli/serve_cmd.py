"""``repro serve`` — run a saved facilitator as a JSON/HTTP service.

Loads a facilitator artifact saved by ``repro train`` and serves
pre-execution insights over HTTP with micro-batched inference: concurrent
``POST /insights`` requests are coalesced into single ``insights_batch``
calls (up to ``--max-batch`` statements or ``--max-wait-ms``). ``GET
/stats`` exposes request counts, batch sizes, latency percentiles, and the
statement-analysis cache hit rate (``?trace=1`` adds the last traced
batch's per-stage breakdown); ``GET /metrics`` is the Prometheus text
endpoint; ``GET /healthz`` reports liveness and artifact identity. Set
``REPRO_OBS_LOG=path.jsonl`` to also write one structured access record
per micro-batch; inspect either surface with ``repro stats``.

Typical workflow::

    python -m repro generate sdss --sessions 2000 -o sdss.jsonl
    python -m repro train sdss.jsonl --model ctfidf -o facilitator.bin
    python -m repro serve facilitator.bin --port 8080 --warm sdss.jsonl

    curl -s localhost:8080/insights -d '{"statement": "SELECT * FROM PhotoObj"}'
    curl -s localhost:8080/stats
"""

from __future__ import annotations

import argparse

from repro.cli._common import emit
from repro.core.facilitator import QueryFacilitator

__all__ = ["register"]


def register(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="serve a saved facilitator as a micro-batching HTTP endpoint",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("facilitator", help="artifact saved by `repro train`")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="statements per micro-batch (default: 64)",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="how long a batch waits for co-riders (default: 2ms)",
    )
    parser.add_argument(
        "--warm",
        metavar="WORKLOAD",
        default=None,
        help="prime the analysis cache from this workload JSONL before serving",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    parser.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    # imported lazily so `repro --help` stays fast
    from repro.serving import FacilitatorService, make_server

    facilitator = QueryFacilitator.load(args.facilitator)
    service = FacilitatorService(
        facilitator,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
    )
    with service:
        if args.warm:
            from repro.workloads.io import iter_workload

            primed = service.warm_up(
                record.statement for record in iter_workload(args.warm)
            )
            emit(f"warmed analysis cache with {primed} statements")
        server = make_server(
            service, host=args.host, port=args.port, quiet=not args.verbose
        )
        host, port = server.server_address[:2]
        problems = ", ".join(p.name.lower() for p in facilitator.problems)
        emit(
            f"serving {facilitator.model_name} ({problems}) on "
            f"http://{host}:{port} — POST /insights, GET /stats, "
            f"GET /metrics, GET /healthz"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
    stats = service.stats
    emit(
        f"served {stats.requests} requests / {stats.statements} statements "
        f"in {stats.batches} batches "
        f"(p50 {stats.latency_p50_ms}ms, p95 {stats.latency_p95_ms}ms, "
        f"pipeline hit rate {stats.pipeline['hit_rate']:.0%})"
    )
    return 0
