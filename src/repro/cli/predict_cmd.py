"""``repro predict`` — pre-execution insights for new statements.

Loads a facilitator artifact saved by ``repro train`` and prints, for each
input statement, the paper's four predicted properties. Statements come
from positional arguments, ``--file`` (one per line), or stdin. ``--json``
emits one JSON object per statement for scripting.

``predict`` is the one-shot path; for continuous traffic run the same
artifact as a service instead — ``repro serve facilitator.bin --port
8080`` answers ``POST /insights`` requests with micro-batched inference
and exposes serving/cache stats at ``GET /stats`` (the JSON schema per
statement is identical to ``--json`` output here).
"""

from __future__ import annotations

import argparse
import json

from repro.cli._common import emit, read_statements
from repro.core.facilitator import QueryFacilitator
from repro.evalx.reporting import format_table

__all__ = ["register"]


def register(subparsers) -> None:
    parser = subparsers.add_parser(
        "predict",
        help="pre-execution insights for statements, from a saved facilitator",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("facilitator", help="file saved by `repro train`")
    parser.add_argument(
        "statements", nargs="*", help="SQL statements (default: stdin)"
    )
    parser.add_argument(
        "--file", help="read statements from this file, one per line"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON lines instead of a table"
    )
    parser.set_defaults(func=run)


def _abbreviate(statement: str, width: int = 48) -> str:
    flat = " ".join(statement.split())
    return flat if len(flat) <= width else flat[: width - 3] + "..."


def run(args: argparse.Namespace) -> int:
    facilitator = QueryFacilitator.load(args.facilitator)
    statements = read_statements(args)
    insights = facilitator.insights_batch(statements)

    if args.json:
        for item in insights:
            emit(json.dumps(item.to_dict()))
        return 0

    rows = []
    for item in insights:
        rows.append(
            [
                _abbreviate(item.statement),
                item.error_class or "-",
                "-"
                if item.cpu_time_seconds is None
                else f"{item.cpu_time_seconds:.2f}",
                "-"
                if item.elapsed_seconds is None
                else f"{item.elapsed_seconds:.2f}",
                "-" if item.answer_size is None else f"{item.answer_size:.0f}",
                item.session_class or "-",
            ]
        )
    emit(
        format_table(
            [
                "statement",
                "error",
                "cpu (s)",
                "elapsed (s)",
                "answer size",
                "session",
            ],
            rows,
            title="Pre-execution insights",
        )
    )
    return 0
