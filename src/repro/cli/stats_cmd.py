"""``repro stats`` — inspect a running server's telemetry or an event log.

Point it at a running ``repro serve`` endpoint and it reports the serving
counters (``GET /stats``) together with a digest of the Prometheus
registry (``GET /metrics``): pipeline cache effectiveness, queue depth,
latency histogram percentiles, per-stage span timings. ``--trace`` also
prints the per-stage breakdown of the most recently traced micro-batch.

Point it at a ``REPRO_OBS_LOG`` JSONL file instead and it summarizes the
recorded events: per-model training epochs (final loss, throughput),
per-head fit times, and the serving access records.

Typical usage::

    python -m repro serve facilitator.bin --port 8080 &
    python -m repro stats http://127.0.0.1:8080
    python -m repro stats http://127.0.0.1:8080 --trace

    REPRO_OBS_LOG=run.jsonl python -m repro train sdss.jsonl -o f.bin
    python -m repro stats run.jsonl
"""

from __future__ import annotations

import argparse
import json

from repro.cli._common import emit

__all__ = ["register"]


def register(subparsers) -> None:
    parser = subparsers.add_parser(
        "stats",
        help="inspect a serve endpoint's telemetry or a REPRO_OBS_LOG file",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "target",
        help="base URL of a running `repro serve` (http://host:port) "
        "or the path of a REPRO_OBS_LOG event file",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="also show the per-stage breakdown of the last traced batch",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the raw combined payload as JSON",
    )
    parser.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    if args.target.startswith(("http://", "https://")):
        return _report_server(args.target.rstrip("/"), args.trace, args.as_json)
    return _report_event_log(args.target, args.as_json)


# -- live server --------------------------------------------------------------- #


def _fetch(url: str) -> bytes:
    import urllib.request

    with urllib.request.urlopen(url, timeout=30) as response:
        return response.read()


def _histogram_quantiles(metrics: dict, name: str) -> dict[str, float]:
    """p50/p95 (plus count) estimated from one exported histogram family.

    ``parse_text`` keeps histogram series under their suffixed names
    (``<name>_bucket``/``_sum``/``_count``); this reassembles one
    unlabeled histogram from them.
    """
    from repro.obs.histograms import percentile_from_buckets

    bucket_family = metrics.get(name + "_bucket")
    count_family = metrics.get(name + "_count")
    if not bucket_family or not count_family:
        return {}
    buckets: list[tuple[float, float]] = []
    for sample in bucket_family["samples"]:
        le = sample["labels"].get("le")
        if le is None:
            continue
        bound = float("inf") if le == "+Inf" else float(le)
        buckets.append((bound, sample["value"]))
    total = count_family["samples"][0]["value"]
    if not buckets or not total:
        return {}
    buckets.sort()
    snapshot = {"buckets": buckets, "count": total, "sum": 0.0}
    return {
        "count": total,
        "p50": percentile_from_buckets(snapshot, 0.50),
        "p95": percentile_from_buckets(snapshot, 0.95),
    }


def _stage_table(metrics: dict) -> list[tuple[str, float, float]]:
    """(stage, count, total_seconds) rows from repro_stage_seconds."""
    by_stage: dict[str, dict[str, float]] = {}
    for suffix, key in (("_count", "count"), ("_sum", "sum")):
        family = metrics.get("repro_stage_seconds" + suffix)
        if family is None:
            continue
        for sample in family["samples"]:
            stage = sample["labels"].get("stage")
            if stage is not None:
                by_stage.setdefault(stage, {})[key] = sample["value"]
    rows = [
        (stage, slot.get("count", 0.0), slot.get("sum", 0.0))
        for stage, slot in by_stage.items()
    ]
    rows.sort(key=lambda row: -row[2])
    return rows


def _report_server(base_url: str, want_trace: bool, as_json: bool) -> int:
    from repro.obs.textfmt import parse_text

    stats_url = base_url + "/stats" + ("?trace=1" if want_trace else "")
    try:
        stats = json.loads(_fetch(stats_url))
        metrics = parse_text(_fetch(base_url + "/metrics").decode("utf-8"))
    except OSError as exc:
        raise ValueError(f"cannot reach {base_url}: {exc}") from exc
    if as_json:
        payload = {"stats": stats, "metrics": metrics}
        emit(json.dumps(payload, indent=2, default=str))
        return 0
    emit(f"serving stats from {base_url}")
    # the sharded/fleet tier reports a different stats shape: no
    # mean_batch_size, p99 tail instead of p95, plus per-shard rows
    line = (
        f"  requests {stats['requests']}  statements {stats['statements']}  "
        f"batches {stats['batches']}"
    )
    if "mean_batch_size" in stats:
        line += f"  mean batch {stats['mean_batch_size']:.1f}"
    emit(line)
    tail = "p95" if "latency_p95_ms" in stats else "p99"
    emit(
        f"  latency window p50 {stats['latency_p50_ms']}ms  "
        f"{tail} {stats[f'latency_{tail}_ms']}ms"
    )
    workers = stats.get("workers")
    if workers:
        up = sum(1 for worker in workers if worker["up"])
        emit(
            f"  shards: {up}/{len(workers)} up  "
            f"generation {stats.get('generation')}  "
            f"restarts {stats.get('restarts', 0)}  "
            f"degraded responses {stats.get('degraded', 0)}"
        )
        for worker in workers:
            where = worker.get("endpoint") or f"pid {worker.get('pid')}"
            emit(
                f"    shard {worker['worker']} {worker['state']:<10} "
                f"({where}, incarnation {worker.get('incarnation')})"
            )
    memo = stats.get("insight_cache", {})
    if memo:
        emit(
            f"  insight memo: {memo['hits']} hits / {memo['misses']} misses "
            f"(hit rate {memo['hit_rate']:.0%}, size {memo['size']})"
        )
    pipe = stats.get("pipeline", {})
    if pipe:
        emit(
            f"  pipeline cache: {pipe['hits']} hits / {pipe['misses']} misses "
            f"(hit rate {pipe['hit_rate']:.0%}, "
            f"size {pipe['size']}/{pipe['max_size']})"
        )
    latency = _histogram_quantiles(
        metrics, "repro_service_request_latency_seconds"
    )
    if latency:
        emit(
            f"  lifetime latency histogram: ~p50 {latency['p50'] * 1000:.2f}ms"
            f"  ~p95 {latency['p95'] * 1000:.2f}ms"
            f"  over {latency['count']:.0f} requests"
        )
    # the latency split: where a request's time actually went — waiting
    # for its micro-batch to dispatch vs the batch computing
    for label, name in (
        ("queue wait", "repro_service_queue_wait_seconds"),
        ("compute", "repro_service_compute_seconds"),
    ):
        part = _histogram_quantiles(metrics, name)
        if part:
            emit(
                f"  {label:<10} ~p50 {part['p50'] * 1000:.2f}ms"
                f"  ~p95 {part['p95'] * 1000:.2f}ms"
            )
    stages = _stage_table(metrics)
    if stages:
        emit("  stage time (lifetime):")
        for stage, count, total in stages:
            mean_ms = (total / count) * 1000.0 if count else 0.0
            emit(
                f"    {stage:<20} {count:>8.0f} calls  "
                f"{total:>9.3f}s total  {mean_ms:>8.3f}ms mean"
            )
    if want_trace:
        trace = stats.get("trace")
        if not trace:
            emit("  trace: none captured yet (send a request and retry)")
        else:
            emit(
                f"  last traced batch: {trace['batch_size']} statements, "
                f"{trace['total_ms']:.2f}ms total "
                f"({trace['stage_total_ms']:.2f}ms in stages)"
            )
            for stage in trace["stages"]:
                indent = "    " + "  " * stage["depth"]
                emit(
                    f"{indent}{stage['stage']:<18} "
                    f"+{stage['offset_ms']:>7.2f}ms  {stage['ms']:>7.2f}ms"
                )
    return 0


# -- event-log file ------------------------------------------------------------ #


def _report_event_log(path: str, as_json: bool) -> int:
    from repro.obs.events import read_events

    events = read_events(path)
    if as_json:
        emit(json.dumps(events, indent=2, default=str))
        return 0
    if not events:
        emit(f"{path}: no events")
        return 0
    by_kind: dict[str, int] = {}
    for event in events:
        by_kind[event.get("event", "?")] = by_kind.get(event.get("event", "?"), 0) + 1
    emit(f"{path}: {len(events)} events")
    for kind in sorted(by_kind):
        emit(f"  {kind}: {by_kind[kind]}")
    epochs = [e for e in events if e.get("event") == "train.epoch"]
    if epochs:
        emit("  training epochs (last per model):")
        last: dict[str, dict] = {}
        for event in epochs:
            last[event.get("model", "?")] = event
        for model in sorted(last):
            event = last[model]
            rate = event.get("rows", 0) / event["seconds"] if event.get("seconds") else 0.0
            emit(
                f"    {model:<24} epoch {event.get('epoch')}  "
                f"loss {event.get('loss')}  {event.get('seconds')}s  "
                f"({rate:.0f} rows/s)"
            )
    heads = [e for e in events if e.get("event") == "train.head"]
    if heads:
        emit("  fitted heads:")
        for event in heads:
            emit(
                f"    {event.get('problem'):<24} model {event.get('model')}  "
                f"{event.get('seconds', 0.0):.3f}s"
            )
    batches = [e for e in events if e.get("event") == "serve.batch"]
    if batches:
        statements = sum(e.get("batch_size", 0) for e in batches)
        latency = sum(e.get("latency_ms", 0.0) for e in batches)
        emit(
            f"  serving: {len(batches)} batches / {statements} statements, "
            f"mean batch latency {latency / len(batches):.2f}ms"
        )
    return 0
