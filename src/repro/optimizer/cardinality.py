"""Textbook (System R) cardinality estimation over parsed queries.

Selectivity constants follow the classic Selinger defaults: 1/10 for
equality, 1/3 for inequalities, 1/4 for BETWEEN, independence across
conjuncts, uniformity within columns. These are exactly the "simplifying
assumptions, e.g. uniform data distributions" the paper cites as the source
of optimizer imprecision [11, 14, 37].
"""

from __future__ import annotations

from repro.sqlang import ast_nodes as ast
from repro.workloads.schema import Catalog

__all__ = ["NaiveCardinalityEstimator"]

_DEFAULT_ROWS = 100_000.0

#: Selinger-style magic constants.
EQ_SELECTIVITY = 0.1
INEQ_SELECTIVITY = 1.0 / 3.0
BETWEEN_SELECTIVITY = 0.25
LIKE_SELECTIVITY = 0.1
IN_SELECTIVITY = 0.2


class NaiveCardinalityEstimator:
    """Uniformity + independence cardinality estimates."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- public ------------------------------------------------------------- #

    def estimate_query(self, query: ast.SelectQuery) -> float:
        """Estimated output rows of one SELECT block."""
        rows = self._from_rows(query.from_items)
        rows *= self._selectivity(query.where)
        if query.group_by:
            rows = max(rows / 10.0, 1.0)  # magic: 10 rows per group
        elif self._has_aggregate(query):
            rows = 1.0
        if query.having is not None:
            rows *= self._selectivity(query.having)
        if query.distinct:
            rows = max(rows / 10.0, 1.0)
        if query.top is not None:
            rows = min(rows, float(max(query.top, 0)))
        return max(rows, 0.0)

    # -- FROM --------------------------------------------------------------- #

    def _from_rows(self, items: list[ast.Node]) -> float:
        if not items:
            return 1.0
        rows = 1.0
        for item in items:
            rows *= self._source_rows(item)
        # assume the textual predicates join the comma-listed tables
        if len(items) > 1:
            rows *= EQ_SELECTIVITY ** (len(items) - 1)
        return rows

    def _source_rows(self, item: ast.Node) -> float:
        if isinstance(item, ast.TableRef):
            table = self.catalog.table(item.name)
            return float(table.rows) if table is not None else _DEFAULT_ROWS
        if isinstance(item, ast.SubquerySource):
            return self.estimate_query(item.query)
        if isinstance(item, ast.Join):
            left = self._source_rows(item.left)
            right = self._source_rows(item.right)
            if item.condition is None:
                return left * right
            return left * right * EQ_SELECTIVITY / 10.0
        return _DEFAULT_ROWS

    # -- predicates -------------------------------------------------------- #

    def _selectivity(self, expr: ast.Expr | None) -> float:
        if expr is None:
            return 1.0
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "AND":
                return self._selectivity(expr.left) * self._selectivity(
                    expr.right
                )
            if expr.op == "OR":
                left = self._selectivity(expr.left)
                right = self._selectivity(expr.right)
                return min(left + right, 1.0)
            if expr.op == "=":
                return EQ_SELECTIVITY
            if expr.op in ("<", ">", "<=", ">="):
                return INEQ_SELECTIVITY
            if expr.op == "LIKE":
                return LIKE_SELECTIVITY
            if expr.op in ("<>", "!="):
                return 1.0 - EQ_SELECTIVITY
            return 0.5
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "NOT":
                return 1.0 - self._selectivity(expr.operand)
            return 0.5
        if isinstance(expr, ast.Between):
            return BETWEEN_SELECTIVITY
        if isinstance(expr, ast.InList):
            return IN_SELECTIVITY
        return 1.0

    @staticmethod
    def _has_aggregate(query: ast.SelectQuery) -> bool:
        for item in query.select_items:
            stack: list[ast.Node] = [item.expr]
            while stack:
                node = stack.pop()
                if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                    return True
                if isinstance(node, (ast.Subquery, ast.SubquerySource)):
                    continue
                stack.extend(node.children())
        return False
