"""I/O-dominated optimizer cost model (the ``opt`` baseline's feature).

Charges page I/O for scans, joins and sorts over the naive cardinality
estimates — and deliberately nothing for in-memory computation (UDF calls,
nested aggregates over numeric types). Section 6.2.3 explains that this
omission is why ``opt`` collapses towards ``median`` on heterogeneous
workloads; this model reproduces the failure mode by construction.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.optimizer.cardinality import NaiveCardinalityEstimator
from repro.sqlang import ast_nodes as ast
from repro.sqlang.pipeline import analyze_batch, parse_cached
from repro.workloads.schema import Catalog

__all__ = ["OptimizerCostModel"]

_ROWS_PER_PAGE = 100.0
_SEQ_PAGE_COST = 1.0
_JOIN_PAGE_COST = 1.5
_SORT_PAGE_COST = 2.0


class OptimizerCostModel:
    """Estimated plan cost (in abstract page-I/O units) for a statement."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.cardinality = NaiveCardinalityEstimator(catalog)

    def estimate_cost(self, statement: str) -> float:
        """Cost estimate for a raw statement; 0.0 for unparseable input.

        Parsing goes through the shared analysis pipeline, so repeated
        estimates of the same statement (or of statements another layer
        already analyzed) skip the parse entirely.
        """
        parsed = parse_cached(statement)
        query = parsed.first_query()
        if query is None:
            return 0.0
        return self._query_cost(query, depth=0)

    def estimate_batch(self, statements: Sequence[str]) -> list[float]:
        """Cost estimates for many statements, parsing each distinct one once."""
        costs = []
        for analysis in analyze_batch(statements):
            query = analysis.parsed.first_query()
            costs.append(
                0.0 if query is None else self._query_cost(query, depth=0)
            )
        return costs

    def _query_cost(self, query: ast.SelectQuery, depth: int) -> float:
        if depth > 8:
            return 0.0
        cost = 0.0
        for item in query.from_items:
            cost += self._source_cost(item, depth)
        out_rows = self.cardinality.estimate_query(query)
        if query.order_by:
            cost += _SORT_PAGE_COST * max(out_rows / _ROWS_PER_PAGE, 1.0)
        # subqueries in predicates are charged once (uncorrelated plan)
        for expr in self._predicate_exprs(query):
            for node in ast.walk(expr):
                if isinstance(node, ast.Subquery):
                    cost += self._query_cost(node.query, depth + 1)
        cost += out_rows / _ROWS_PER_PAGE  # result materialization
        return cost

    def _source_cost(self, item: ast.Node, depth: int) -> float:
        if isinstance(item, ast.TableRef):
            table = self.catalog.table(item.name)
            rows = float(table.rows) if table is not None else 100_000.0
            return _SEQ_PAGE_COST * max(rows / _ROWS_PER_PAGE, 1.0)
        if isinstance(item, ast.SubquerySource):
            return self._query_cost(item.query, depth + 1)
        if isinstance(item, ast.Join):
            left = self._source_cost(item.left, depth)
            right = self._source_cost(item.right, depth)
            return left + right + _JOIN_PAGE_COST * (left + right) / 2.0
        return 0.0

    @staticmethod
    def _predicate_exprs(query: ast.SelectQuery) -> list[ast.Expr]:
        exprs: list[ast.Expr] = []
        if query.where is not None:
            exprs.append(query.where)
        if query.having is not None:
            exprs.append(query.having)
        return exprs
