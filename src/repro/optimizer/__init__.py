"""Simulated query optimizer producing analytic cost estimates.

The paper's ``opt`` baseline ([2, 14, 39]) fits a linear regression from the
query optimizer's cost estimate to the observed CPU time. This package is
the optimizer side of that baseline: a deliberately textbook System-R-style
estimator — uniformity and independence assumptions, magic selectivity
constants, I/O-dominated cost — so it exhibits exactly the imprecision the
paper attributes to analytic cost models (Sections 1 and 6.2.3: "the query
optimizer cost model assumes I/O is most time consuming, even though certain
computations are performed in memory").
"""

from repro.optimizer.cardinality import NaiveCardinalityEstimator
from repro.optimizer.cost import OptimizerCostModel

__all__ = ["NaiveCardinalityEstimator", "OptimizerCostModel"]
