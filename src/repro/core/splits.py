"""Train/validation/test splits (Table 1).

Homogeneous settings use a uniform random split. The Heterogeneous Schema
setting splits *by user* so train and test queries come from different
schemas — decreasing the likelihood of data sharing, exactly as Section 6.1
describes for SQLShare.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.records import Workload

__all__ = ["DataSplit", "random_split", "user_split"]


@dataclass
class DataSplit:
    """Index-based split of one workload."""

    workload: Workload
    train_idx: np.ndarray
    valid_idx: np.ndarray
    test_idx: np.ndarray

    @property
    def train(self) -> Workload:
        return self.workload.subset(self.train_idx.tolist())

    @property
    def valid(self) -> Workload:
        return self.workload.subset(self.valid_idx.tolist())

    @property
    def test(self) -> Workload:
        return self.workload.subset(self.test_idx.tolist())

    def sizes(self) -> tuple[int, int, int]:
        return len(self.train_idx), len(self.valid_idx), len(self.test_idx)


def _check_fractions(fractions: tuple[float, float, float]) -> None:
    if len(fractions) != 3 or any(f < 0 for f in fractions):
        raise ValueError("fractions must be three non-negative numbers")
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError("fractions must sum to 1")


def random_split(
    workload: Workload,
    fractions: tuple[float, float, float] = (0.8, 0.1, 0.1),
    seed: int = 0,
) -> DataSplit:
    """Uniform random split (Homogeneous Instance / Homogeneous Schema)."""
    _check_fractions(fractions)
    n = len(workload)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_train = int(round(fractions[0] * n))
    n_valid = int(round(fractions[1] * n))
    return DataSplit(
        workload=workload,
        train_idx=np.sort(order[:n_train]),
        valid_idx=np.sort(order[n_train : n_train + n_valid]),
        test_idx=np.sort(order[n_train + n_valid :]),
    )


def user_split(
    workload: Workload,
    fractions: tuple[float, float, float] = (0.8, 0.1, 0.1),
    seed: int = 0,
) -> DataSplit:
    """Split by submitting user (Heterogeneous Schema).

    Users are shuffled and assigned greedily to test, then validation, then
    train until each partition's query quota is covered — so partition sizes
    only approximate the fractions (compare the paper's uneven Table 1
    column for this setting). All of a user's queries land in one partition.

    Raises:
        ValueError: If any record lacks a user.
    """
    _check_fractions(fractions)
    users = workload.users()
    if any(u is None for u in users):
        raise ValueError("user_split requires every record to have a user")
    rng = np.random.default_rng(seed)
    unique_users = sorted(set(users))  # type: ignore[arg-type]
    rng.shuffle(unique_users)
    by_user: dict[str, list[int]] = {}
    for idx, user in enumerate(users):
        by_user.setdefault(user, []).append(idx)  # type: ignore[arg-type]
    n = len(workload)
    quota_test = fractions[2] * n
    quota_valid = fractions[1] * n
    test_idx: list[int] = []
    valid_idx: list[int] = []
    train_idx: list[int] = []
    for user in unique_users:
        indices = by_user[user]
        if len(test_idx) < quota_test:
            test_idx.extend(indices)
        elif len(valid_idx) < quota_valid:
            valid_idx.extend(indices)
        else:
            train_idx.extend(indices)
    return DataSplit(
        workload=workload,
        train_idx=np.sort(np.asarray(train_idx, dtype=np.int64)),
        valid_idx=np.sort(np.asarray(valid_idx, dtype=np.int64)),
        test_idx=np.sort(np.asarray(test_idx, dtype=np.int64)),
    )
