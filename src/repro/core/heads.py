"""Problem heads: the model + label codec + transform for one problem.

A :class:`QueryFacilitator` is a bundle of independent *heads*, one per
facilitation problem (Definition 4): each head owns its trained model, the
label codec that maps between model space and user space (a
:class:`~repro.ml.preprocessing.LabelEncoder` for classification, a
:class:`~repro.ml.preprocessing.LogLabelTransform` for regression), and
knows how to write its predictions into :class:`QueryInsights` result
objects and how to persist itself as one member of a versioned artifact.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.problems import Problem
from repro.ml.preprocessing import LabelEncoder, LogLabelTransform
from repro.models import serialize
from repro.models.base import QueryModel
from repro.models.factory import ModelScale, build_model
from repro.models.serialize import ArtifactFormatError

__all__ = ["ProblemHead", "REGRESSION_INSIGHT_ATTRS"]

#: Which QueryInsights attribute each regression problem fills in.
REGRESSION_INSIGHT_ATTRS = {
    Problem.CPU_TIME: "cpu_time_seconds",
    Problem.ANSWER_SIZE: "answer_size",
    Problem.ELAPSED_TIME: "elapsed_seconds",
}


@dataclass
class ProblemHead:
    """One trained facilitation problem: model plus its label codec."""

    problem: Problem
    model: QueryModel
    encoder: LabelEncoder | None = None
    transform: LogLabelTransform | None = None

    # -- training ----------------------------------------------------------- #

    @classmethod
    def train(
        cls,
        problem: Problem,
        model_name: str,
        scale: ModelScale,
        statements: Sequence[str],
        labels: np.ndarray,
    ) -> "ProblemHead":
        """Fit a fresh head for ``problem`` on labelled statements."""
        if problem.is_classification:
            encoder = LabelEncoder().fit(list(labels))
            model = build_model(
                model_name,
                problem.task,
                num_classes=encoder.num_classes,
                scale=scale,
            )
            model.fit(statements, encoder.transform(list(labels)))
            return cls(problem, model, encoder=encoder)
        transform = LogLabelTransform().fit(labels)
        model = build_model(model_name, problem.task, scale=scale)
        model.fit(statements, transform.transform(labels))
        return cls(problem, model, transform=transform)

    # -- prediction ---------------------------------------------------------- #

    def predict_into(
        self,
        statements: Sequence[str],
        results: list,
        features=None,
    ) -> None:
        """Write this head's predictions into the per-statement results.

        ``results`` are :class:`~repro.core.facilitator.QueryInsights`
        objects aligned with ``statements`` (duck-typed to avoid an import
        cycle with the facilitator module). ``features`` is the optional
        precomputed output of ``model.featurize(statements)`` — heads
        whose models share a feature fingerprint are handed one shared
        featurization instead of each re-extracting it.
        """
        if self.problem.is_classification:
            assert self.encoder is not None
            if self.problem is Problem.ERROR_CLASSIFICATION:
                # one forward pass: class ids are the argmax of the
                # probabilities, so predict() would redo the work
                if features is not None:
                    probs = self.model.predict_proba_from_features(features)
                else:
                    probs = self.model.predict_proba(statements)
                names = self.encoder.inverse(probs.argmax(axis=1))
                for i, result in enumerate(results):
                    result.error_class = str(names[i])
                    result.error_probabilities = {
                        str(c): float(probs[i, j])
                        for j, c in enumerate(self.encoder.classes_)
                    }
            else:
                if features is not None:
                    pred = self.model.predict_from_features(features)
                else:
                    pred = self.model.predict(statements)
                names = self.encoder.inverse(pred)
                for i, result in enumerate(results):
                    result.session_class = str(names[i])
            return
        assert self.transform is not None
        if features is not None:
            pred = self.model.predict_from_features(features)
        else:
            pred = self.model.predict(statements)
        pred_raw = np.maximum(self.transform.inverse(pred), 0.0)
        attr = REGRESSION_INSIGHT_ATTRS[self.problem]
        for i, result in enumerate(results):
            setattr(result, attr, float(pred_raw[i]))

    # -- persistence --------------------------------------------------------- #

    def member_name(self) -> str:
        """Artifact member carrying this head's model payload."""
        return f"heads/{self.problem.name.lower()}.bin"

    def manifest_entry(self, codec: str = "pickle") -> dict:
        """JSON-safe description of this head for the artifact manifest.

        Label vocabularies and transform parameters live here (inspectable
        with ``unzip -p artifact manifest.json``); only the model object
        itself goes into the binary payload.
        """
        return {
            "problem": self.problem.name,
            "model_class": type(self.model).__name__,
            "codec": codec,
            "payload": self.member_name(),
            "classes": list(self.encoder.classes_) if self.encoder else None,
            "transform": (
                {"eps": self.transform.eps, "min_y": self.transform.min_y}
                if self.transform
                else None
            ),
        }

    def payload(self, codec: str = "pickle") -> bytes:
        """Encoded model bytes for the artifact."""
        return serialize.encode_payload(codec, self.model)

    def artifact_payload(self) -> tuple[dict, bytes, dict[str, np.ndarray]]:
        """Split persistence for v3 artifacts: skeleton + weight arrays.

        Returns ``(manifest entry, skeleton bytes, {member: array})``.
        The model pickles with its large numeric arrays externalized
        (cast float64 → float32, the serving numerics policy) into
        individually addressable ``.npy`` zip members under
        ``arrays/<problem>/``, so loaders can memory-map the weights.
        The entry's ``codec`` is ``pickle-split`` and its ``arrays`` map
        links each split key to its zip member.
        """
        skeleton, arrays = serialize.split_arrays(self.model)
        prefix = f"arrays/{self.problem.name.lower()}"
        members = {f"{prefix}/{key}.npy": arr for key, arr in arrays.items()}
        entry = self.manifest_entry(codec="pickle-split")
        entry["arrays"] = {
            key: f"{prefix}/{key}.npy" for key in arrays
        }
        return entry, skeleton, members

    @classmethod
    def from_artifact(
        cls,
        entry: dict,
        data: bytes,
        arrays: dict[str, np.ndarray] | None = None,
    ) -> "ProblemHead":
        """Rebuild a head from its manifest entry and payload bytes.

        ``arrays`` maps artifact member names to loaded (or memory-
        mapped) arrays; required when the entry's codec is
        ``pickle-split``.
        """
        try:
            problem = Problem[entry["problem"]]
        except KeyError:
            raise ArtifactFormatError(
                f"artifact names unknown problem {entry.get('problem')!r}"
            ) from None
        codec = entry.get("codec", "pickle")
        if codec == "pickle-split":
            keyed: dict[str, np.ndarray] = {}
            for key, member in (entry.get("arrays") or {}).items():
                if arrays is None or member not in arrays:
                    raise ArtifactFormatError(
                        f"head payload for {problem.name} references "
                        f"missing array member {member!r}"
                    )
                keyed[key] = arrays[member]
            model = serialize.join_arrays(data, keyed)
        else:
            model = serialize.decode_payload(codec, data)
        if not isinstance(model, QueryModel):
            raise ArtifactFormatError(
                f"head payload for {problem.name} is "
                f"{type(model).__name__}, not a QueryModel"
            )
        encoder = None
        if entry.get("classes") is not None:
            encoder = LabelEncoder.from_classes(entry["classes"])
        transform = None
        if entry.get("transform") is not None:
            spec = entry["transform"]
            transform = LogLabelTransform(eps=float(spec["eps"]))
            transform.min_y = float(spec["min_y"])
        return cls(problem, model, encoder=encoder, transform=transform)
