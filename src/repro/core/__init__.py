"""Core API: the paper's problems, settings, splits, and facilitator.

The centrepiece is :class:`QueryFacilitator`: fit it on a query workload,
then ask for pre-execution insights (predicted error class, CPU time,
answer size, session class) about any new statement — the user-facing
capability the paper motivates in Sections 1-2.
"""

from repro.core.problems import Problem, Setting, TaskType
from repro.core.splits import DataSplit, random_split, user_split
from repro.core.facilitator import QueryFacilitator, QueryInsights
from repro.core.evaluation import (
    evaluate_classification,
    evaluate_regression,
    train_and_predict,
)

__all__ = [
    "Problem",
    "Setting",
    "TaskType",
    "DataSplit",
    "random_split",
    "user_split",
    "QueryFacilitator",
    "QueryInsights",
    "evaluate_classification",
    "evaluate_regression",
    "train_and_predict",
]
