"""QueryFacilitator: pre-execution insights about SQL statements.

The user-facing entry point of the library. Fit it on a historical query
workload; it trains one model per available query facilitation problem and
then answers, for any new statement and *before execution*:

- will it fail (and how badly)?
- roughly how long will it run?
- roughly how many rows will it return?
- what class of client does it look like (for DBAs)?

>>> facilitator = QueryFacilitator().fit(workload)
>>> insights = facilitator.insights("SELECT * FROM PhotoObj")
>>> insights.cpu_time_seconds, insights.error_class
"""

from __future__ import annotations

import pickle
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.problems import Problem
from repro.ml.preprocessing import LabelEncoder, LogLabelTransform
from repro.models.base import QueryModel
from repro.models.factory import ModelScale, build_model
from repro.workloads.records import Workload

__all__ = ["QueryFacilitator", "QueryInsights"]


@dataclass
class QueryInsights:
    """Predicted properties of one statement, prior to execution.

    Fields are None when the facilitator was not trained for that problem
    (e.g. SQLShare workloads carry only CPU time).
    """

    statement: str
    error_class: Optional[str] = None
    error_probabilities: dict[str, float] = field(default_factory=dict)
    cpu_time_seconds: Optional[float] = None
    answer_size: Optional[float] = None
    session_class: Optional[str] = None
    elapsed_seconds: Optional[float] = None

    @property
    def likely_to_fail(self) -> bool:
        """True when the predicted error class is not ``success``."""
        return self.error_class is not None and self.error_class != "success"


class _FittedProblem:
    """A trained model plus its label codec for one problem."""

    def __init__(
        self,
        problem: Problem,
        model: QueryModel,
        encoder: LabelEncoder | None,
        transform: LogLabelTransform | None,
    ):
        self.problem = problem
        self.model = model
        self.encoder = encoder
        self.transform = transform


class QueryFacilitator:
    """Train per-problem models on a workload; predict query properties.

    Args:
        model_name: Paper model to use for every problem (default ``ccnn``
            — the architecture the paper found generalizes best).
        scale: Capacity/runtime knobs (see :class:`ModelScale`).

    The facilitator trains on whichever of the four label columns the
    workload provides; missing labels simply disable that insight.
    """

    def __init__(
        self,
        model_name: str = "ccnn",
        scale: ModelScale | None = None,
        index_similar: bool = False,
    ):
        self.model_name = model_name
        self.scale = scale or ModelScale()
        self.index_similar = index_similar
        self.fitted: dict[Problem, _FittedProblem] = {}
        self.similar_index = None

    # -- training ----------------------------------------------------------- #

    def fit(
        self,
        workload: Workload,
        problems: Sequence[Problem] | None = None,
    ) -> "QueryFacilitator":
        """Train one model per problem available in ``workload``.

        Args:
            workload: Labelled historical queries.
            problems: Restrict to these problems (default: every problem
                whose label column is fully present).
        """
        statements = workload.statements()
        wanted = list(problems) if problems is not None else list(Problem)
        for problem in wanted:
            if not self._has_labels(workload, problem):
                if problems is not None:
                    raise ValueError(
                        f"workload {workload.name!r} lacks labels for {problem}"
                    )
                continue
            labels = workload.labels(problem.label_column)
            if problem.is_classification:
                encoder = LabelEncoder().fit(list(labels))
                model = build_model(
                    self.model_name,
                    problem.task,
                    num_classes=encoder.num_classes,
                    scale=self.scale,
                )
                model.fit(statements, encoder.transform(list(labels)))
                self.fitted[problem] = _FittedProblem(
                    problem, model, encoder, None
                )
            else:
                transform = LogLabelTransform().fit(labels)
                model = build_model(
                    self.model_name, problem.task, scale=self.scale
                )
                model.fit(statements, transform.transform(labels))
                self.fitted[problem] = _FittedProblem(
                    problem, model, None, transform
                )
        if not self.fitted:
            raise ValueError(
                f"workload {workload.name!r} has no usable label columns"
            )
        if self.index_similar:
            from repro.models.knn import SimilarQueryIndex

            self.similar_index = SimilarQueryIndex().fit(workload)
        return self

    @staticmethod
    def _has_labels(workload: Workload, problem: Problem) -> bool:
        return all(
            getattr(r, problem.label_column) is not None for r in workload
        )

    # -- prediction ---------------------------------------------------------- #

    def insights(self, statement: str) -> QueryInsights:
        """Pre-execution insights for a single statement."""
        return self.insights_batch([statement])[0]

    def insights_batch(self, statements: Sequence[str]) -> list[QueryInsights]:
        """Pre-execution insights for many statements at once."""
        if not self.fitted:
            raise RuntimeError("QueryFacilitator must be fitted first")
        statements = list(statements)
        results = [QueryInsights(statement=s) for s in statements]
        for problem, fitted in self.fitted.items():
            if problem.is_classification:
                assert fitted.encoder is not None
                if problem is Problem.ERROR_CLASSIFICATION:
                    # one forward pass: class ids are the argmax of the
                    # probabilities, so predict() would redo the work
                    probs = fitted.model.predict_proba(statements)
                    names = fitted.encoder.inverse(probs.argmax(axis=1))
                    for i, result in enumerate(results):
                        result.error_class = str(names[i])
                        result.error_probabilities = {
                            str(c): float(probs[i, j])
                            for j, c in enumerate(fitted.encoder.classes_)
                        }
                else:
                    pred = fitted.model.predict(statements)
                    names = fitted.encoder.inverse(pred)
                    for i, result in enumerate(results):
                        result.session_class = str(names[i])
            else:
                assert fitted.transform is not None
                pred_raw = fitted.transform.inverse(
                    fitted.model.predict(statements)
                )
                pred_raw = np.maximum(pred_raw, 0.0)
                attr = {
                    Problem.CPU_TIME: "cpu_time_seconds",
                    Problem.ANSWER_SIZE: "answer_size",
                    Problem.ELAPSED_TIME: "elapsed_seconds",
                }[problem]
                for i, result in enumerate(results):
                    setattr(result, attr, float(pred_raw[i]))
        return results

    def similar_queries(self, statement: str, k: int = 5):
        """The ``k`` most similar historical queries with their outcomes.

        Requires ``index_similar=True`` at construction (the index stores
        the training workload, which costs memory).

        Returns:
            list[repro.models.knn.QueryNeighbor], best match first.
        """
        if self.similar_index is None:
            raise RuntimeError(
                "similar-query retrieval needs QueryFacilitator("
                "index_similar=True) before fit()"
            )
        return self.similar_index.lookup(statement, k=k)

    @property
    def problems(self) -> list[Problem]:
        """Problems this facilitator was trained for."""
        return list(self.fitted)

    # -- persistence --------------------------------------------------------- #

    def save(self, path: str | Path) -> None:
        """Persist the fitted facilitator (models + label codecs) to a file.

        Uses pickle, the same trade-off scikit-learn makes: load only files
        you wrote yourself. Raises if called before :meth:`fit`.
        """
        if not self.fitted:
            raise RuntimeError("cannot save an unfitted QueryFacilitator")
        payload = {
            "format": "repro.facilitator",
            "version": 1,
            "model_name": self.model_name,
            "facilitator": self,
        }
        with Path(path).open("wb") as handle:
            pickle.dump(payload, handle)

    @classmethod
    def load(cls, path: str | Path) -> "QueryFacilitator":
        """Load a facilitator saved by :meth:`save`.

        Raises:
            ValueError: the file was not written by :meth:`save`.
        """
        with Path(path).open("rb") as handle:
            payload = pickle.load(handle)
        if (
            not isinstance(payload, dict)
            or payload.get("format") != "repro.facilitator"
        ):
            raise ValueError(f"{path}: not a saved QueryFacilitator")
        facilitator = payload["facilitator"]
        if not isinstance(facilitator, cls):
            raise ValueError(f"{path}: payload is {type(facilitator).__name__}")
        return facilitator
