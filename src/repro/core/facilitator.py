"""QueryFacilitator: pre-execution insights about SQL statements.

The user-facing entry point of the library. Fit it on a historical query
workload; it trains one :class:`~repro.core.heads.ProblemHead` per
available query facilitation problem and then answers, for any new
statement and *before execution*:

- will it fail (and how badly)?
- roughly how long will it run?
- roughly how many rows will it return?
- what class of client does it look like (for DBAs)?

>>> facilitator = QueryFacilitator().fit(workload)
>>> insights = facilitator.insights("SELECT * FROM PhotoObj")
>>> insights.cpu_time_seconds, insights.error_class

Fitted facilitators persist as versioned zip artifacts (a JSON manifest
listing format version, model names, and label vocabularies, plus one
binary payload per head — see :mod:`repro.models.serialize`). For serving
them behind a micro-batching queue or HTTP endpoint, see
:mod:`repro.serving`.
"""

from __future__ import annotations

import os
import time
import warnings
from collections.abc import Sequence
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.heads import ProblemHead
from repro.core.problems import Problem
from repro.models import serialize
from repro.models.factory import ModelScale
from repro.models.serialize import ArtifactFormatError
from repro.obs import events as obs_events
from repro.obs.registry import get_registry
from repro.obs.spans import span
from repro.workloads.records import Workload

__all__ = [
    "QueryFacilitator",
    "QueryInsights",
    "ArtifactFormatError",
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "SUPPORTED_ARTIFACT_VERSIONS",
]

#: Artifact manifest ``format`` name for saved facilitators.
ARTIFACT_FORMAT = "repro.facilitator"

#: Current artifact format version; bump when the layout changes.
#: v3 externalizes model weight arrays into uncompressed float32 ``.npy``
#: zip members with manifest-recorded offsets, enabling memory-mapped
#: loads; v2 kept everything inside one compressed pickle per head.
ARTIFACT_VERSION = 3

#: Versions :meth:`QueryFacilitator.load` still reads.
SUPPORTED_ARTIFACT_VERSIONS = (2, 3)

_SIMILAR_INDEX_MEMBER = "similar_index.bin"


def _limit_worker_blas_threads(threads: int) -> None:
    """Cap BLAS threading inside a pool worker (pool initializer).

    Without this, every worker inherits OpenBLAS's use-all-cores
    default, and ``workers × cores`` GEMM threads thrash the scheduler —
    a pooled run can come out *slower* than serial. The env vars cover
    lazily-initialized pools (and spawn-context workers); already-spawned
    inherited pools are additionally capped through ``threadpoolctl``
    when it is installed.
    """
    threads = max(1, threads)
    for var in (
        "OMP_NUM_THREADS",
        "OPENBLAS_NUM_THREADS",
        "MKL_NUM_THREADS",
    ):
        os.environ[var] = str(threads)
    try:
        import threadpoolctl

        threadpoolctl.threadpool_limits(threads)
    except ImportError:
        pass


def _train_head_artifact(
    problem: Problem,
    model_name: str,
    scale: ModelScale,
    statements: list[str],
    labels: np.ndarray,
) -> tuple[dict, bytes, float]:
    """Train one head and return it in artifact form (pool worker).

    Returning ``(manifest entry, codec payload, seconds)`` instead of the
    live head keeps the parent↔worker contract identical to the on-disk
    artifact format: the parent rebuilds the head through the same
    :mod:`repro.models.serialize` codec registry that ``save``/``load``
    use, so a pool-trained facilitator is byte-compatible with a serial
    one by construction.
    """
    start = time.perf_counter()
    head = ProblemHead.train(problem, model_name, scale, statements, labels)
    return head.manifest_entry(), head.payload(), time.perf_counter() - start


@dataclass
class QueryInsights:
    """Predicted properties of one statement, prior to execution.

    Fields are None when the facilitator was not trained for that problem
    (e.g. SQLShare workloads carry only CPU time).
    """

    statement: str
    error_class: Optional[str] = None
    error_probabilities: dict[str, float] = field(default_factory=dict)
    cpu_time_seconds: Optional[float] = None
    answer_size: Optional[float] = None
    session_class: Optional[str] = None
    elapsed_seconds: Optional[float] = None

    @property
    def likely_to_fail(self) -> bool:
        """True when the predicted error class is not ``success``."""
        return self.error_class is not None and self.error_class != "success"

    def copy(self) -> "QueryInsights":
        """Independent copy (batch fan-out gives each caller its own).

        Direct construction, not ``dataclasses.replace`` — this runs once
        per served duplicate statement on the serving hot path.
        """
        return QueryInsights(
            statement=self.statement,
            error_class=self.error_class,
            error_probabilities=dict(self.error_probabilities),
            cpu_time_seconds=self.cpu_time_seconds,
            answer_size=self.answer_size,
            session_class=self.session_class,
            elapsed_seconds=self.elapsed_seconds,
        )

    def to_dict(self) -> dict:
        """JSON-safe dict (the ``predict --json`` / HTTP wire format)."""
        return {
            "statement": self.statement,
            "error_class": self.error_class,
            "likely_to_fail": self.likely_to_fail,
            "error_probabilities": self.error_probabilities,
            "cpu_time_seconds": self.cpu_time_seconds,
            "answer_size": self.answer_size,
            "session_class": self.session_class,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryInsights":
        """Inverse of :meth:`to_dict` (the fleet TCP wire format).

        ``likely_to_fail`` is derived, never stored, so a decoded insight
        re-encodes bit-identically — remote fleet workers answer with the
        exact bytes an in-process worker would. JSON float round-trips
        are exact (repr-based), so no precision is lost either way.
        """
        return cls(
            statement=payload["statement"],
            error_class=payload.get("error_class"),
            error_probabilities=dict(payload.get("error_probabilities") or {}),
            cpu_time_seconds=payload.get("cpu_time_seconds"),
            answer_size=payload.get("answer_size"),
            session_class=payload.get("session_class"),
            elapsed_seconds=payload.get("elapsed_seconds"),
        )


class QueryFacilitator:
    """Train per-problem models on a workload; predict query properties.

    Args:
        model_name: Paper model to use for every problem (default ``ccnn``
            — the architecture the paper found generalizes best).
        scale: Capacity/runtime knobs (see :class:`ModelScale`).

    The facilitator trains on whichever of the four label columns the
    workload provides; missing labels simply disable that insight. The
    trained state is a dict of :class:`ProblemHead` objects, one per
    problem, each owning its model and label codec.
    """

    def __init__(
        self,
        model_name: str = "ccnn",
        scale: ModelScale | None = None,
        index_similar: bool = False,
    ):
        self.model_name = model_name
        self.scale = scale or ModelScale()
        self.index_similar = index_similar
        self.heads: dict[Problem, ProblemHead] = {}
        self.similar_index = None
        #: serve batches through the compiled inference plan (compiled
        #: lazily on first batch; falls back to the per-head loop if
        #: compilation fails)
        self.use_plan = True
        #: numerics policy for the compiled plan — ``np.float32``
        #: (default) or ``np.float64``, the exact-equivalence escape
        #: hatch (see :mod:`repro.inference.plan`)
        self.plan_dtype = np.float32
        self._plan = None
        self._plan_failed = False
        #: per-problem training telemetry filled by :meth:`fit`
        #: (``{problem_name: {"seconds", "epochs", "epochs_per_s"}}``) —
        #: a thin view: the same quantities land in the obs registry as
        #: ``repro_train_head_seconds{problem=...}`` gauges and, when
        #: ``REPRO_OBS_LOG`` is set, as ``train.head`` JSONL events
        self.fit_stats: dict[str, dict] = {}
        #: manifest identity when loaded from / saved to an artifact
        #: (``{"format", "version", "path"}``); ``None`` for in-memory fits
        self.artifact_meta: dict | None = None

    # -- training ----------------------------------------------------------- #

    def fit(
        self,
        workload: Workload,
        problems: Sequence[Problem] | None = None,
        workers: int | None = None,
    ) -> "QueryFacilitator":
        """Train one head per problem available in ``workload``.

        Args:
            workload: Labelled historical queries.
            problems: Restrict to these problems (default: every problem
                whose label column is fully present).
            workers: Train heads concurrently in a process pool of this
                size. Heads are independent seeded models, so the fitted
                result is identical to serial training; workers hand
                their heads back in artifact form (manifest entry +
                codec payload), merged through the same
                :mod:`repro.models.serialize` registry the on-disk
                format uses. ``None``/``1`` trains serially in-process.
        """
        statements = workload.statements()
        wanted = list(problems) if problems is not None else list(Problem)
        jobs: list[tuple[Problem, np.ndarray]] = []
        for problem in wanted:
            if not self._has_labels(workload, problem):
                if problems is not None:
                    raise ValueError(
                        f"workload {workload.name!r} lacks labels for {problem}"
                    )
                continue
            jobs.append((problem, workload.labels(problem.label_column)))
        if not jobs:
            raise ValueError(
                f"workload {workload.name!r} has no usable label columns"
            )
        self.fit_stats = {}
        self.invalidate_plan()
        if workers is not None and workers > 1 and len(jobs) > 1:
            self._fit_parallel(jobs, statements, workers)
        else:
            for problem, labels in jobs:
                start = time.perf_counter()
                self.heads[problem] = ProblemHead.train(
                    problem, self.model_name, self.scale, statements, labels
                )
                self._record_fit(problem, time.perf_counter() - start)
        if self.index_similar:
            from repro.models.knn import SimilarQueryIndex

            self.similar_index = SimilarQueryIndex().fit(workload)
        return self

    def _fit_parallel(
        self,
        jobs: list[tuple[Problem, np.ndarray]],
        statements: list[str],
        workers: int,
    ) -> None:
        """Fan independent head-training jobs out over a process pool."""
        from concurrent.futures import ProcessPoolExecutor

        pool_width = min(workers, len(jobs))
        blas_threads = max(1, (os.cpu_count() or 1) // pool_width)
        with ProcessPoolExecutor(
            max_workers=pool_width,
            initializer=_limit_worker_blas_threads,
            initargs=(blas_threads,),
        ) as pool:
            futures = [
                (
                    problem,
                    pool.submit(
                        _train_head_artifact,
                        problem,
                        self.model_name,
                        self.scale,
                        statements,
                        labels,
                    ),
                )
                for problem, labels in jobs
            ]
            for problem, future in futures:  # head order stays deterministic
                entry, payload, seconds = future.result()
                self.heads[problem] = ProblemHead.from_artifact(entry, payload)
                self._record_fit(problem, seconds)

    def _record_fit(self, problem: Problem, seconds: float) -> None:
        epochs = self._head_epochs(self.heads[problem])
        name = problem.name.lower()
        stats = {
            "seconds": seconds,
            "epochs": epochs,
            "epochs_per_s": (
                epochs / seconds if epochs and seconds > 0 else None
            ),
        }
        self.fit_stats[name] = stats
        get_registry().gauge(
            "repro_train_head_seconds",
            "Wall-clock of the most recent fit of this problem head",
            problem=name,
        ).set(seconds)
        obs_events.emit(
            "train.head", problem=name, model=self.model_name, **stats
        )

    @staticmethod
    def _head_epochs(head: ProblemHead) -> int | None:
        """Optimizer epochs the head's model ran, when it exposes them."""
        model = head.model
        for attr in ("hyper", "classifier", "regressor"):
            inner = getattr(model, attr, None)
            if inner is not None and hasattr(inner, "epochs"):
                return int(inner.epochs)
        return None

    @staticmethod
    def _has_labels(workload: Workload, problem: Problem) -> bool:
        return all(
            getattr(r, problem.label_column) is not None for r in workload
        )

    # -- prediction ---------------------------------------------------------- #

    def insights(self, statement: str) -> QueryInsights:
        """Pre-execution insights for a single statement."""
        return self.insights_batch([statement])[0]

    def invalidate_plan(self) -> None:
        """Drop the compiled inference plan (recompiled on next batch)."""
        self._plan = None
        self._plan_failed = False

    def _ensure_plan(self):
        """Lazily compile the inference plan; ``None`` if it can't build.

        A compile failure (an exotic model without the expected weight
        layout, say) is remembered and reported once through the obs
        event log; prediction then permanently falls back to the
        per-head loop instead of retrying per batch.
        """
        if self._plan is None and not self._plan_failed:
            # spanned so the one-off import+compile cost shows up as a
            # traced stage on whichever request triggers it, instead of
            # unexplained time in that batch's total
            with span("plan_compile", model=self.model_name):
                from repro.inference import compile_plan

                try:
                    self._plan = compile_plan(self, dtype=self.plan_dtype)
                except Exception as exc:
                    self._plan_failed = True
                    obs_events.emit(
                        "plan.compile_failed",
                        model=self.model_name,
                        error=f"{type(exc).__name__}: {exc}",
                    )
        return self._plan

    def insights_batch(
        self,
        statements: Sequence[str],
        use_plan: bool | None = None,
    ) -> list[QueryInsights]:
        """Pre-execution insights for many statements at once.

        Serving-oriented batch path: duplicate statements inside the batch
        are collapsed before any model runs (real traffic is massively
        repetitive — Figure 20), then scored through the compiled
        inference plan (:mod:`repro.inference`): featurization runs in
        vectorized counting kernels and every TF-IDF head sharing a
        feature fingerprint is scored by one fused CSR × dense matmul.
        ``use_plan=False`` (or ``self.use_plan = False``) forces the
        reference per-head loop — predictions agree with the plan to
        float32 tolerance, exactly when ``plan_dtype`` is ``np.float64``.
        """
        if not self.heads:
            raise RuntimeError("QueryFacilitator must be fitted first")
        statements = list(statements)
        with span("dedup", statements=len(statements)):
            index_of: dict[str, int] = {}
            unique: list[str] = []
            for statement in statements:
                if statement not in index_of:
                    index_of[statement] = len(unique)
                    unique.append(statement)
            unique_results = [QueryInsights(statement=s) for s in unique]
        wants_plan = self.use_plan if use_plan is None else use_plan
        plan = self._ensure_plan() if wants_plan else None
        if plan is not None:
            plan.predict_into(unique, unique_results)
        else:
            self._predict_per_head(unique, unique_results)
        if len(unique) == len(statements):
            return unique_results
        with span("fanout"):
            return [unique_results[index_of[s]].copy() for s in statements]

    def _predict_per_head(
        self, unique: list[str], unique_results: list[QueryInsights]
    ) -> None:
        """Reference prediction loop: one head at a time, shared features.

        Heads whose models share a feature fingerprint featurize the
        batch once instead of once per head. This is the baseline the
        compiled plan is validated against.
        """
        shared_features: dict[bytes, object] = {}
        for head in self.heads.values():
            fingerprint = head.model.feature_fingerprint()
            features = None
            if fingerprint is not None:
                if fingerprint not in shared_features:
                    with span("featurize", statements=len(unique)):
                        shared_features[fingerprint] = head.model.featurize(
                            unique
                        )
                features = shared_features[fingerprint]
            head_name = head.problem.name.lower()
            with span(f"predict:{head_name}", head=head_name):
                head.predict_into(unique, unique_results, features=features)

    def similar_queries(self, statement: str, k: int = 5):
        """The ``k`` most similar historical queries with their outcomes.

        Requires ``index_similar=True`` at construction (the index stores
        the training workload, which costs memory).

        Returns:
            list[repro.models.knn.QueryNeighbor], best match first.
        """
        if self.similar_index is None:
            raise RuntimeError(
                "similar-query retrieval needs QueryFacilitator("
                "index_similar=True) before fit()"
            )
        return self.similar_index.lookup(statement, k=k)

    @property
    def problems(self) -> list[Problem]:
        """Problems this facilitator was trained for."""
        return list(self.heads)

    @property
    def artifact_identity(self) -> dict:
        """Manifest-level identity of the model state being served.

        A fleet health-checker compares this across shards to detect
        stale artifacts (``GET /healthz`` reports it). For a facilitator
        loaded from (or saved to) an artifact it carries the manifest's
        format name/version and the source path; for an in-memory fit the
        ``path`` is ``None`` but format/version describe what ``save()``
        would write.
        """
        meta = self.artifact_meta or {}
        return {
            "format": meta.get("format", ARTIFACT_FORMAT),
            "version": meta.get("version", ARTIFACT_VERSION),
            "path": meta.get("path"),
            "model_name": self.model_name,
            "models": {
                head.problem.name.lower(): type(head.model).__name__
                for head in self.heads.values()
            },
        }

    # -- persistence --------------------------------------------------------- #

    def save(self, path: str | Path) -> None:
        """Persist the fitted facilitator as a versioned artifact file.

        The artifact is a zip container: a human-inspectable
        ``manifest.json`` (format version, model names, scale, label
        vocabularies, transform parameters) plus one skeleton payload per
        head. Each head's large weight arrays are externalized into
        uncompressed float32 ``.npy`` members whose raw-data offsets are
        recorded in the manifest, so :meth:`load` can memory-map them
        (``mmap=True``) instead of unpickling everything up front.
        Raises if called before :meth:`fit`.
        """
        if not self.heads:
            raise RuntimeError("cannot save an unfitted QueryFacilitator")
        head_entries: list[dict] = []
        payloads: dict[str, bytes] = {}
        arrays: dict[str, np.ndarray] = {}
        for head in self.heads.values():
            entry, skeleton, members = head.artifact_payload()
            head_entries.append(entry)
            payloads[head.member_name()] = skeleton
            arrays.update(members)
        manifest = {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "model_name": self.model_name,
            "scale": asdict(self.scale),
            "index_similar": self.index_similar,
            "heads": head_entries,
            "similar_index": (
                _SIMILAR_INDEX_MEMBER if self.similar_index is not None else None
            ),
        }
        if self.similar_index is not None:
            payloads[_SIMILAR_INDEX_MEMBER] = serialize.encode_payload(
                "pickle", self.similar_index
            )
        serialize.write_artifact(path, manifest, payloads, arrays=arrays)
        self.artifact_meta = {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "path": str(path),
        }

    @classmethod
    def load(cls, path: str | Path, mmap: bool = False) -> "QueryFacilitator":
        """Load a facilitator artifact saved by :meth:`save`.

        With ``mmap=True``, weight arrays of a v3 artifact are
        memory-mapped straight out of the zip file (they are stored
        uncompressed at manifest-recorded offsets) instead of read and
        copied up front — pages fault in on first use, which is what
        makes cold starts on large artifacts sub-second. Older v2
        artifacts (one compressed pickle per head) can't be mapped; they
        load eagerly with a warning.

        The format checks catch accidents (wrong file, stale version),
        not attacks: head payloads are pickle-encoded, so — as with any
        pickle — load only artifacts you wrote yourself.

        Raises:
            ArtifactFormatError: ``path`` is not a saved QueryFacilitator
                artifact (foreign file, pre-versioning pickle, corrupt
                manifest) or carries an unsupported format version.
            OSError: the file does not exist or cannot be read.
        """
        manifest = serialize.read_manifest(
            path, ARTIFACT_FORMAT, SUPPORTED_ARTIFACT_VERSIONS
        )
        version = manifest.get("version")
        if mmap and version == 2:
            warnings.warn(
                f"{path}: version 2 artifacts store weights inside "
                "compressed pickles and cannot be memory-mapped; loading "
                "eagerly (re-save to upgrade to the mappable v3 layout)",
                RuntimeWarning,
                stacklevel=2,
            )
            mmap = False
        try:
            scale = ModelScale(**manifest["scale"])
            head_entries = manifest["heads"]
        except (KeyError, TypeError) as exc:
            raise ArtifactFormatError(
                f"{path}: facilitator manifest is incomplete: {exc}"
            ) from exc
        wanted = [
            entry.get("payload")
            for entry in head_entries
            if entry.get("payload")
        ]
        index_member = manifest.get("similar_index")
        if index_member:
            wanted.append(index_member)
        try:
            payloads = serialize.read_members(path, wanted)
        except ArtifactFormatError as exc:
            raise ArtifactFormatError(
                f"{path}: manifest references missing payload: {exc}"
            ) from None
        arrays = serialize.read_array_members(path, manifest, mmap=mmap)
        facilitator = cls(
            model_name=manifest.get("model_name", "ccnn"),
            scale=scale,
            index_similar=bool(manifest.get("index_similar", False)),
        )
        for entry in head_entries:
            member = entry.get("payload")
            if member not in payloads:
                raise ArtifactFormatError(
                    f"{path}: manifest references missing payload {member!r}"
                )
            head = ProblemHead.from_artifact(
                entry, payloads[member], arrays=arrays
            )
            facilitator.heads[head.problem] = head
        if not facilitator.heads:
            raise ArtifactFormatError(f"{path}: artifact contains no heads")
        index_member = manifest.get("similar_index")
        if index_member:
            if index_member not in payloads:
                raise ArtifactFormatError(
                    f"{path}: manifest references missing payload "
                    f"{index_member!r}"
                )
            facilitator.similar_index = serialize.decode_payload(
                "pickle", payloads[index_member]
            )
        facilitator.artifact_meta = {
            "format": manifest.get("format", ARTIFACT_FORMAT),
            "version": manifest.get("version", ARTIFACT_VERSION),
            "path": str(path),
        }
        return facilitator
