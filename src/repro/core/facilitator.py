"""QueryFacilitator: pre-execution insights about SQL statements.

The user-facing entry point of the library. Fit it on a historical query
workload; it trains one :class:`~repro.core.heads.ProblemHead` per
available query facilitation problem and then answers, for any new
statement and *before execution*:

- will it fail (and how badly)?
- roughly how long will it run?
- roughly how many rows will it return?
- what class of client does it look like (for DBAs)?

>>> facilitator = QueryFacilitator().fit(workload)
>>> insights = facilitator.insights("SELECT * FROM PhotoObj")
>>> insights.cpu_time_seconds, insights.error_class

Fitted facilitators persist as versioned zip artifacts (a JSON manifest
listing format version, model names, and label vocabularies, plus one
binary payload per head — see :mod:`repro.models.serialize`). For serving
them behind a micro-batching queue or HTTP endpoint, see
:mod:`repro.serving`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

from repro.core.heads import ProblemHead
from repro.core.problems import Problem
from repro.models import serialize
from repro.models.factory import ModelScale
from repro.models.serialize import ArtifactFormatError
from repro.workloads.records import Workload

__all__ = [
    "QueryFacilitator",
    "QueryInsights",
    "ArtifactFormatError",
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
]

#: Artifact manifest ``format`` name for saved facilitators.
ARTIFACT_FORMAT = "repro.facilitator"

#: Current artifact format version; bump when the layout changes.
ARTIFACT_VERSION = 2

_SIMILAR_INDEX_MEMBER = "similar_index.bin"


@dataclass
class QueryInsights:
    """Predicted properties of one statement, prior to execution.

    Fields are None when the facilitator was not trained for that problem
    (e.g. SQLShare workloads carry only CPU time).
    """

    statement: str
    error_class: Optional[str] = None
    error_probabilities: dict[str, float] = field(default_factory=dict)
    cpu_time_seconds: Optional[float] = None
    answer_size: Optional[float] = None
    session_class: Optional[str] = None
    elapsed_seconds: Optional[float] = None

    @property
    def likely_to_fail(self) -> bool:
        """True when the predicted error class is not ``success``."""
        return self.error_class is not None and self.error_class != "success"

    def copy(self) -> "QueryInsights":
        """Independent copy (batch fan-out gives each caller its own).

        Direct construction, not ``dataclasses.replace`` — this runs once
        per served duplicate statement on the serving hot path.
        """
        return QueryInsights(
            statement=self.statement,
            error_class=self.error_class,
            error_probabilities=dict(self.error_probabilities),
            cpu_time_seconds=self.cpu_time_seconds,
            answer_size=self.answer_size,
            session_class=self.session_class,
            elapsed_seconds=self.elapsed_seconds,
        )

    def to_dict(self) -> dict:
        """JSON-safe dict (the ``predict --json`` / HTTP wire format)."""
        return {
            "statement": self.statement,
            "error_class": self.error_class,
            "likely_to_fail": self.likely_to_fail,
            "error_probabilities": self.error_probabilities,
            "cpu_time_seconds": self.cpu_time_seconds,
            "answer_size": self.answer_size,
            "session_class": self.session_class,
            "elapsed_seconds": self.elapsed_seconds,
        }


class QueryFacilitator:
    """Train per-problem models on a workload; predict query properties.

    Args:
        model_name: Paper model to use for every problem (default ``ccnn``
            — the architecture the paper found generalizes best).
        scale: Capacity/runtime knobs (see :class:`ModelScale`).

    The facilitator trains on whichever of the four label columns the
    workload provides; missing labels simply disable that insight. The
    trained state is a dict of :class:`ProblemHead` objects, one per
    problem, each owning its model and label codec.
    """

    def __init__(
        self,
        model_name: str = "ccnn",
        scale: ModelScale | None = None,
        index_similar: bool = False,
    ):
        self.model_name = model_name
        self.scale = scale or ModelScale()
        self.index_similar = index_similar
        self.heads: dict[Problem, ProblemHead] = {}
        self.similar_index = None

    # -- training ----------------------------------------------------------- #

    def fit(
        self,
        workload: Workload,
        problems: Sequence[Problem] | None = None,
    ) -> "QueryFacilitator":
        """Train one head per problem available in ``workload``.

        Args:
            workload: Labelled historical queries.
            problems: Restrict to these problems (default: every problem
                whose label column is fully present).
        """
        statements = workload.statements()
        wanted = list(problems) if problems is not None else list(Problem)
        for problem in wanted:
            if not self._has_labels(workload, problem):
                if problems is not None:
                    raise ValueError(
                        f"workload {workload.name!r} lacks labels for {problem}"
                    )
                continue
            labels = workload.labels(problem.label_column)
            self.heads[problem] = ProblemHead.train(
                problem, self.model_name, self.scale, statements, labels
            )
        if not self.heads:
            raise ValueError(
                f"workload {workload.name!r} has no usable label columns"
            )
        if self.index_similar:
            from repro.models.knn import SimilarQueryIndex

            self.similar_index = SimilarQueryIndex().fit(workload)
        return self

    @staticmethod
    def _has_labels(workload: Workload, problem: Problem) -> bool:
        return all(
            getattr(r, problem.label_column) is not None for r in workload
        )

    # -- prediction ---------------------------------------------------------- #

    def insights(self, statement: str) -> QueryInsights:
        """Pre-execution insights for a single statement."""
        return self.insights_batch([statement])[0]

    def insights_batch(self, statements: Sequence[str]) -> list[QueryInsights]:
        """Pre-execution insights for many statements at once.

        Serving-oriented batch path: duplicate statements inside the batch
        are collapsed before any model runs (real traffic is massively
        repetitive — Figure 20), and heads whose models share a feature
        fingerprint (every head, when the facilitator trained them with
        one model name on one workload) featurize the batch once instead
        of once per head. Predictions are identical to the naive
        per-statement loop; only the work is smaller.
        """
        if not self.heads:
            raise RuntimeError("QueryFacilitator must be fitted first")
        statements = list(statements)
        index_of: dict[str, int] = {}
        unique: list[str] = []
        for statement in statements:
            if statement not in index_of:
                index_of[statement] = len(unique)
                unique.append(statement)
        unique_results = [QueryInsights(statement=s) for s in unique]
        shared_features: dict[bytes, object] = {}
        for head in self.heads.values():
            fingerprint = head.model.feature_fingerprint()
            features = None
            if fingerprint is not None:
                if fingerprint not in shared_features:
                    shared_features[fingerprint] = head.model.featurize(unique)
                features = shared_features[fingerprint]
            head.predict_into(unique, unique_results, features=features)
        if len(unique) == len(statements):
            return unique_results
        return [unique_results[index_of[s]].copy() for s in statements]

    def similar_queries(self, statement: str, k: int = 5):
        """The ``k`` most similar historical queries with their outcomes.

        Requires ``index_similar=True`` at construction (the index stores
        the training workload, which costs memory).

        Returns:
            list[repro.models.knn.QueryNeighbor], best match first.
        """
        if self.similar_index is None:
            raise RuntimeError(
                "similar-query retrieval needs QueryFacilitator("
                "index_similar=True) before fit()"
            )
        return self.similar_index.lookup(statement, k=k)

    @property
    def problems(self) -> list[Problem]:
        """Problems this facilitator was trained for."""
        return list(self.heads)

    # -- persistence --------------------------------------------------------- #

    def save(self, path: str | Path) -> None:
        """Persist the fitted facilitator as a versioned artifact file.

        The artifact is a zip container: a human-inspectable
        ``manifest.json`` (format version, model names, scale, label
        vocabularies, transform parameters) plus one binary payload per
        head, encoded through the :mod:`repro.models.serialize` codec
        registry. Raises if called before :meth:`fit`.
        """
        if not self.heads:
            raise RuntimeError("cannot save an unfitted QueryFacilitator")
        manifest = {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "model_name": self.model_name,
            "scale": asdict(self.scale),
            "index_similar": self.index_similar,
            "heads": [head.manifest_entry() for head in self.heads.values()],
            "similar_index": (
                _SIMILAR_INDEX_MEMBER if self.similar_index is not None else None
            ),
        }
        payloads = {
            head.member_name(): head.payload() for head in self.heads.values()
        }
        if self.similar_index is not None:
            payloads[_SIMILAR_INDEX_MEMBER] = serialize.encode_payload(
                "pickle", self.similar_index
            )
        serialize.write_artifact(path, manifest, payloads)

    @classmethod
    def load(cls, path: str | Path) -> "QueryFacilitator":
        """Load a facilitator artifact saved by :meth:`save`.

        The format checks catch accidents (wrong file, stale version),
        not attacks: head payloads are pickle-encoded, so — as with any
        pickle — load only artifacts you wrote yourself.

        Raises:
            ArtifactFormatError: ``path`` is not a saved QueryFacilitator
                artifact (foreign file, pre-versioning pickle, corrupt
                manifest) or carries an unsupported format version.
            OSError: the file does not exist or cannot be read.
        """
        manifest, payloads = serialize.read_artifact(
            path, ARTIFACT_FORMAT, ARTIFACT_VERSION
        )
        try:
            scale = ModelScale(**manifest["scale"])
            head_entries = manifest["heads"]
        except (KeyError, TypeError) as exc:
            raise ArtifactFormatError(
                f"{path}: facilitator manifest is incomplete: {exc}"
            ) from exc
        facilitator = cls(
            model_name=manifest.get("model_name", "ccnn"),
            scale=scale,
            index_similar=bool(manifest.get("index_similar", False)),
        )
        for entry in head_entries:
            member = entry.get("payload")
            if member not in payloads:
                raise ArtifactFormatError(
                    f"{path}: manifest references missing payload {member!r}"
                )
            head = ProblemHead.from_artifact(entry, payloads[member])
            facilitator.heads[head.problem] = head
        if not facilitator.heads:
            raise ArtifactFormatError(f"{path}: artifact contains no heads")
        index_member = manifest.get("similar_index")
        if index_member:
            if index_member not in payloads:
                raise ArtifactFormatError(
                    f"{path}: manifest references missing payload "
                    f"{index_member!r}"
                )
            facilitator.similar_index = serialize.decode_payload(
                "pickle", payloads[index_member]
            )
        return facilitator
