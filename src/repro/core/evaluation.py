"""Experiment runner: fit models on a split, evaluate on its test set.

One function per task kind. Both return the paper-style reports *and* the
raw per-query predictions, because the qualitative analyses (Figures 12-14)
slice squared errors by session class and structural properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problems import Problem
from repro.core.splits import DataSplit
from repro.evalx.metrics import (
    ClassificationReport,
    RegressionReport,
    classification_report,
    regression_report,
)
from repro.ml.preprocessing import LabelEncoder, LogLabelTransform
from repro.models.base import QueryModel

__all__ = [
    "ClassificationOutcome",
    "RegressionOutcome",
    "evaluate_classification",
    "evaluate_regression",
    "train_and_predict",
]


@dataclass
class ClassificationOutcome:
    """Reports plus raw predictions for one classification experiment."""

    problem: Problem
    class_names: list[str]
    reports: list[ClassificationReport] = field(default_factory=list)
    y_true: np.ndarray | None = None
    predictions: dict[str, np.ndarray] = field(default_factory=dict)


@dataclass
class RegressionOutcome:
    """Reports plus raw (log-space) predictions for one regression run."""

    problem: Problem
    transform: LogLabelTransform | None = None
    reports: list[RegressionReport] = field(default_factory=list)
    y_true_log: np.ndarray | None = None
    y_true_raw: np.ndarray | None = None
    predictions_log: dict[str, np.ndarray] = field(default_factory=dict)


def train_and_predict(
    model: QueryModel,
    train_statements: list[str],
    train_labels: np.ndarray,
    test_statements: list[str],
) -> np.ndarray:
    """Convenience: fit then predict (used by ablation benches)."""
    model.fit(train_statements, train_labels)
    return model.predict(test_statements)


def evaluate_classification(
    problem: Problem,
    split: DataSplit,
    models: dict[str, QueryModel],
) -> ClassificationOutcome:
    """Fit every model on the split's train set; report on its test set.

    Args:
        problem: A classification problem (error/session classification).
        split: Data split whose workload carries the problem's labels.
        models: Mapping display name → unfitted model. Models must accept
            integer class ids produced by a LabelEncoder fitted on the
            *whole* workload label column (so train/test agree on ids).
    """
    if not problem.is_classification:
        raise ValueError(f"{problem} is not a classification problem")
    labels_all = split.workload.labels(problem.label_column)
    encoder = LabelEncoder().fit(list(labels_all))
    train = split.train
    test = split.test
    y_train = encoder.transform(list(train.labels(problem.label_column)))
    y_test = encoder.transform(list(test.labels(problem.label_column)))
    outcome = ClassificationOutcome(
        problem=problem, class_names=[str(c) for c in encoder.classes_]
    )
    outcome.y_true = y_test
    train_statements = train.statements()
    test_statements = test.statements()
    for name, model in models.items():
        model.fit(train_statements, y_train)
        # featurize the test set once: predict and predict_proba would
        # otherwise each re-run the TF-IDF pipeline over the same
        # statements (models without a feature fingerprint — the neural
        # nets, the baseline — keep the plain two-call path)
        if model.feature_fingerprint() is not None:
            features = model.featurize(test_statements)
            y_pred = model.predict_from_features(features)
            probs = model.predict_proba_from_features(features)
        else:
            y_pred = model.predict(test_statements)
            probs = model.predict_proba(test_statements)
        outcome.predictions[name] = y_pred
        outcome.reports.append(
            classification_report(
                name,
                y_test,
                y_pred,
                probs,
                outcome.class_names,
                vocab_size=model.vocab_size,
                num_parameters=model.num_parameters,
            )
        )
    return outcome


def evaluate_regression(
    problem: Problem,
    split: DataSplit,
    models: dict[str, QueryModel],
    percentiles: tuple[float, ...] = (50, 75, 80, 85, 90, 95),
) -> RegressionOutcome:
    """Fit every model on log-transformed labels; report on the test set.

    The log transform (Section 4.4.1) is fitted on the training labels only
    and applied to both partitions; qerror percentiles are computed on the
    original label scale after inverting the transform.
    """
    if problem.is_classification:
        raise ValueError(f"{problem} is not a regression problem")
    train = split.train
    test = split.test
    y_train_raw = train.labels(problem.label_column)
    y_test_raw = test.labels(problem.label_column)
    transform = LogLabelTransform().fit(y_train_raw)
    y_train_log = transform.transform(y_train_raw)
    y_test_log = transform.transform(y_test_raw)
    outcome = RegressionOutcome(problem=problem, transform=transform)
    outcome.y_true_log = y_test_log
    outcome.y_true_raw = y_test_raw
    train_statements = train.statements()
    test_statements = test.statements()
    for name, model in models.items():
        model.fit(train_statements, y_train_log)
        y_pred_log = model.predict(test_statements)
        outcome.predictions_log[name] = y_pred_log
        outcome.reports.append(
            regression_report(
                name,
                y_test_log,
                y_pred_log,
                y_test_raw,
                transform.inverse(y_pred_log),
                percentiles=percentiles,
                vocab_size=model.vocab_size,
                num_parameters=model.num_parameters,
            )
        )
    return outcome
