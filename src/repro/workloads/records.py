"""Data containers: log entries, deduplicated query records, workloads."""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["LogEntry", "QueryRecord", "Workload", "ERROR_CLASSES", "SESSION_CLASSES"]

#: Error classes observed in the SDSS SqlLog.error column (Section 4.1).
ERROR_CLASSES = ("severe", "success", "non_severe")

#: Session classes from the SDSS WebAgent join (Section 4.1 / Appendix B.1).
SESSION_CLASSES = (
    "no_web_hit",
    "unknown",
    "bot",
    "admin",
    "program",
    "anonymous",
    "browser",
)


@dataclass
class LogEntry:
    """One raw hit in a (synthetic) query log, before deduplication.

    Mirrors the columns the paper extracts from SqlLog/WebLog: the raw
    statement plus the four label columns, and the session the hit belongs
    to. ``answer_size`` is -1 when the query did not run. ``ip``,
    ``timestamp`` and ``agent_string`` carry the WebLog-side metadata the
    sessionization step (Section 2) consumes; ``agent_string`` is None for
    hits that did not arrive through the web (the no_web_hit class).
    """

    statement: str
    session_id: int
    session_class: str
    error_class: str
    answer_size: float
    cpu_time: float
    user: Optional[str] = None
    ip: str = "0.0.0.0"
    timestamp: float = 0.0
    agent_string: Optional[str] = None
    elapsed_time: float = 0.0


@dataclass
class QueryRecord:
    """One unique statement with aggregated labels (Section 4.1).

    Regression labels are means over duplicate log entries; class labels
    are majority votes. ``user`` is the submitting user for SQLShare
    (drives the Heterogeneous Schema split).
    """

    statement: str
    error_class: Optional[str] = None
    answer_size: Optional[float] = None
    cpu_time: Optional[float] = None
    session_class: Optional[str] = None
    user: Optional[str] = None
    num_duplicates: int = 1
    elapsed_time: Optional[float] = None


@dataclass
class Workload:
    """A named collection of query records (Definition 3)."""

    name: str
    records: list[QueryRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[QueryRecord]:
        return iter(self.records)

    def __getitem__(self, idx: int) -> QueryRecord:
        return self.records[idx]

    def statements(self) -> list[str]:
        """All statements, in record order."""
        return [r.statement for r in self.records]

    def labels(self, name: str) -> np.ndarray:
        """Label column as an array; raises if any record lacks it.

        Args:
            name: ``error_class``, ``answer_size``, ``cpu_time`` or
                ``session_class``.
        """
        values = [getattr(r, name) for r in self.records]
        if any(v is None for v in values):
            raise ValueError(
                f"workload {self.name!r} has records without {name!r} labels"
            )
        if name in ("answer_size", "cpu_time", "elapsed_time"):
            return np.asarray(values, dtype=np.float64)
        return np.asarray(values, dtype=object)

    def users(self) -> list[Optional[str]]:
        """Submitting user per record (None where unknown)."""
        return [r.user for r in self.records]

    def filter(self, predicate: Callable[[QueryRecord], bool]) -> "Workload":
        """New workload containing the records satisfying ``predicate``."""
        return Workload(self.name, [r for r in self.records if predicate(r)])

    def subset(self, indices: Sequence[int]) -> "Workload":
        """New workload with the records at ``indices`` (order preserved)."""
        return Workload(self.name, [self.records[i] for i in indices])
