"""Workload compression (Section 8 future work; Chaudhuri et al. [8]).

Large workloads create practical problems for downstream tasks — the paper
notes this for its own 194M-entry SDSS log and proposes workload
compression as "an orthogonal extension for the data extraction part of
our work". This module implements that extension: pick a small, weighted
subset of a workload that preserves its diversity, so models can be
trained on the subset at a fraction of the cost.

Three strategies, in increasing awareness of query structure:

- ``random`` — uniform sample (the baseline any compression must beat);
- ``stratified`` — sample proportionally per label stratum, guaranteeing
  at least one representative per class (protects the minority error
  classes the paper's Tables 2/4 care about);
- ``kcenter`` — greedy farthest-point selection over normalized structural
  feature vectors (Gonzalez's 2-approximation to the k-center objective):
  representatives cover the workload's *structural* diversity, in the
  spirit of [8], where each kept query is weighted by how many original
  queries it stands in for.

All strategies return a :class:`CompressedWorkload` carrying per-record
multiplicities so that weighted statistics over the subset estimate
statistics over the original workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sqlang.pipeline import get_pipeline
from repro.workloads.records import QueryRecord, Workload

__all__ = [
    "CompressedWorkload",
    "compress_workload",
    "structural_feature_matrix",
    "coverage_radius",
    "STRATEGIES",
]

STRATEGIES = ("random", "stratified", "kcenter")


@dataclass
class CompressedWorkload:
    """A weighted subset of a workload.

    ``weights[i]`` counts how many original records the i-th kept record
    represents; weights sum to the original workload size.
    """

    workload: Workload
    weights: np.ndarray
    original_size: int
    kept_indices: np.ndarray = field(default_factory=lambda: np.empty(0, int))

    @property
    def ratio(self) -> float:
        """Fraction of the original workload that was kept."""
        if self.original_size == 0:
            return 1.0
        return len(self.workload) / self.original_size

    def repeated_records(self) -> list[QueryRecord]:
        """Records repeated per weight — a drop-in weighted training set.

        Rounds weights to the nearest positive integer, so the expanded
        list approximates the original size while containing only kept
        statements.
        """
        out: list[QueryRecord] = []
        for record, weight in zip(self.workload.records, self.weights):
            out.extend([record] * max(1, int(round(float(weight)))))
        return out


def structural_feature_matrix(
    workload: Workload, *, chunk_size: int | None = None, workers: int = 0
) -> np.ndarray:
    """Z-normalized structural feature matrix (n_records, 10).

    Constant features normalize to zero so they do not contribute to
    distances. With ``chunk_size``/``workers`` set, the raw matrix is
    built chunk-wise through the analytics engine (one
    :class:`~repro.analytics.aggregators.StructuralMatrixAggregator`
    pass), so featurization of a workload-scale input is cached and
    parallel; the result is identical to the monolithic path.
    """
    if chunk_size is not None or workers:
        from repro.analytics.core import DEFAULT_CHUNK_SIZE, ChunkedScan
        from repro.analytics.aggregators import StructuralMatrixAggregator

        scan = ChunkedScan(
            workload,
            chunk_size=chunk_size or DEFAULT_CHUNK_SIZE,
            workers=workers,
        )
        matrix = scan.run({"matrix": StructuralMatrixAggregator()})["matrix"]
    else:
        matrix = get_pipeline().feature_matrix(
            [record.statement for record in workload]
        )
    if matrix.shape[0] == 0:
        return matrix
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    std[std == 0] = 1.0
    return (matrix - mean) / std


def _assign_to_centers(matrix: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Index of the nearest center for every row of ``matrix``."""
    # (n, k) squared distances, computed blockwise to bound memory
    n = matrix.shape[0]
    assignment = np.empty(n, dtype=np.int64)
    block = 4096
    center_rows = matrix[centers]
    for start in range(0, n, block):
        chunk = matrix[start : start + block]
        d2 = (
            (chunk**2).sum(axis=1, keepdims=True)
            - 2 * chunk @ center_rows.T
            + (center_rows**2).sum(axis=1)
        )
        assignment[start : start + block] = np.argmin(d2, axis=1)
    return assignment


def _kcenter_select(matrix: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Greedy farthest-point traversal: k center indices."""
    n = matrix.shape[0]
    first = int(rng.integers(n))
    centers = [first]
    dist2 = ((matrix - matrix[first]) ** 2).sum(axis=1)
    while len(centers) < k:
        nxt = int(np.argmax(dist2))
        if dist2[nxt] == 0.0:
            # all remaining points coincide with a center; fill with
            # arbitrary distinct indices to honour the requested size
            remaining = [i for i in range(n) if i not in set(centers)]
            centers.extend(remaining[: k - len(centers)])
            break
        centers.append(nxt)
        dist2 = np.minimum(dist2, ((matrix - matrix[nxt]) ** 2).sum(axis=1))
    return np.asarray(sorted(centers[:k]), dtype=np.int64)


def _stratified_select(
    workload: Workload, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Per-label-stratum proportional sample, >=1 per stratum."""
    strata: dict[str, list[int]] = {}
    for idx, record in enumerate(workload):
        key = f"{record.error_class}|{record.session_class}"
        strata.setdefault(key, []).append(idx)
    n = len(workload)
    chosen: list[int] = []
    # guarantee one per stratum first, then fill proportionally
    for indices in strata.values():
        chosen.append(int(rng.choice(indices)))
    remaining_budget = k - len(chosen)
    if remaining_budget > 0:
        chosen_set = set(chosen)
        pool = np.asarray(
            [i for i in range(n) if i not in chosen_set], dtype=np.int64
        )
        if pool.size:
            extra = rng.choice(
                pool, size=min(remaining_budget, pool.size), replace=False
            )
            chosen.extend(int(i) for i in extra)
    return np.asarray(sorted(set(chosen))[:k], dtype=np.int64)


def compress_workload(
    workload: Workload,
    ratio: float = 0.1,
    strategy: str = "kcenter",
    seed: int = 0,
    *,
    workers: int = 0,
    chunk_size: int | None = None,
) -> CompressedWorkload:
    """Compress ``workload`` to roughly ``ratio`` of its size.

    Args:
        workload: The workload to compress.
        ratio: Target kept fraction in (0, 1].
        strategy: One of :data:`STRATEGIES`.
        seed: Randomness seed (tie-breaking, sampling).
        workers: Process count for the chunked k-center featurization
            pass (0 = in-process); selection itself is unchanged.
        chunk_size: Records per engine chunk for that pass (None =
            engine default). Output is identical for every setting.

    Returns:
        A :class:`CompressedWorkload` whose weights sum to ``len(workload)``.

    Raises:
        ValueError: empty workload, bad ratio, or unknown strategy.
    """
    if len(workload) == 0:
        raise ValueError("cannot compress an empty workload")
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")

    n = len(workload)
    k = max(1, min(n, int(round(ratio * n))))
    rng = np.random.default_rng(seed)

    if strategy == "random":
        kept = np.sort(rng.choice(n, size=k, replace=False))
        weights = np.full(k, n / k, dtype=np.float64)
        return CompressedWorkload(
            workload=workload.subset(kept.tolist()),
            weights=weights,
            original_size=n,
            kept_indices=kept,
        )

    if strategy == "stratified":
        kept = _stratified_select(workload, k, rng)
        weights = np.full(len(kept), n / len(kept), dtype=np.float64)
        return CompressedWorkload(
            workload=workload.subset(kept.tolist()),
            weights=weights,
            original_size=n,
            kept_indices=kept,
        )

    matrix = structural_feature_matrix(
        workload, chunk_size=chunk_size, workers=workers
    )
    kept = _kcenter_select(matrix, k, rng)
    assignment = _assign_to_centers(matrix, kept)
    weights = np.bincount(assignment, minlength=len(kept)).astype(np.float64)
    return CompressedWorkload(
        workload=workload.subset(kept.tolist()),
        weights=weights,
        original_size=n,
        kept_indices=kept,
    )


def coverage_radius(
    workload: Workload, compressed: CompressedWorkload
) -> float:
    """Max distance from any original record to its nearest kept record.

    The k-center objective: lower is better coverage. Distances are in the
    z-normalized structural feature space of
    :func:`structural_feature_matrix` on the *original* workload.
    """
    if len(compressed.kept_indices) == 0:
        raise ValueError("compressed workload does not carry kept_indices")
    matrix = structural_feature_matrix(workload)
    assignment = _assign_to_centers(matrix, compressed.kept_indices)
    centers = matrix[compressed.kept_indices]
    deltas = matrix - centers[assignment]
    return float(np.sqrt((deltas**2).sum(axis=1)).max())
