"""Synthetic catalogs mirroring the SDSS and SQLShare schema shapes.

The SDSS CAS schema has 87 tables, 46 views, and 467 functions (Section 2).
:func:`sdss_catalog` reproduces the well-known core of that schema by name
(PhotoObj at 794 328 715 rows, SpecObj at 4 311 571 rows — the row counts the
paper quotes in its Section 6.3.3 case study) and fills the tail with
generated astronomy-flavoured tables so the name distribution is realistic.

SQLShare is a database-as-a-service where each user uploads private data, so
:func:`sqlshare_catalog` creates a per-user catalog with user-specific table
and column lexicons — exactly the rare-token heterogeneity that makes the
paper's Heterogeneous Schema setting hard for word-level models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Column",
    "Table",
    "DbFunction",
    "Catalog",
    "sdss_catalog",
    "sqlshare_catalog",
    "sqlshare_username",
    "alpha_tag",
]


def alpha_tag(value: int, width: int = 3) -> str:
    """Deterministic letters-only tag for an integer (base-26, a-z).

    Identifiers in the SQLShare catalogs use letter tags instead of numbers
    because the word-level models mask every digit run to ``<DIGIT>`` —
    numeric suffixes would make different users' tables indistinguishable
    after masking and erase the heterogeneity the paper measures.
    """
    letters = []
    value = abs(int(value))
    for _ in range(width):
        letters.append(chr(ord("a") + value % 26))
        value //= 26
    return "".join(reversed(letters))


def sqlshare_username(index: int) -> str:
    """Canonical SQLShare username for user ``index`` (letters only)."""
    return f"user_{alpha_tag(index, width=3)}"


@dataclass(frozen=True)
class Column:
    """One column with the metadata the cardinality model needs.

    Attributes:
        name: Column name.
        kind: ``id`` (near-unique key), ``category`` (few distinct values),
            ``numeric`` (continuous measurements), or ``text``.
        lo / hi: Value domain for numeric columns (drives range selectivity).
        distinct: Approximate distinct-value count for category columns.
    """

    name: str
    kind: str = "numeric"
    lo: float = 0.0
    hi: float = 1.0
    distinct: int = 10


@dataclass(frozen=True)
class Table:
    """A base table: name, row count, and columns."""

    name: str
    rows: int
    columns: tuple[Column, ...] = ()

    def column(self, name: str) -> Column | None:
        target = name.lower()
        for col in self.columns:
            if col.name.lower() == target:
                return col
        return None

    def numeric_columns(self) -> list[Column]:
        return [c for c in self.columns if c.kind == "numeric"]

    def id_columns(self) -> list[Column]:
        return [c for c in self.columns if c.kind == "id"]

    def category_columns(self) -> list[Column]:
        return [c for c in self.columns if c.kind == "category"]


@dataclass(frozen=True)
class DbFunction:
    """A scalar UDF with a per-call CPU cost (seconds).

    Per-row invocation of expensive UDFs in WHERE clauses is the paper's
    Figure 1b inefficiency; the execution engine charges ``cost_per_call``
    for every row the predicate is evaluated on.
    """

    name: str
    cost_per_call: float = 1e-6


@dataclass
class Catalog:
    """A queryable schema: tables and functions by lower-cased name."""

    name: str
    tables: dict[str, Table] = field(default_factory=dict)
    functions: dict[str, DbFunction] = field(default_factory=dict)

    def add_table(self, table: Table) -> None:
        self.tables[table.name.lower()] = table

    def add_function(self, func: DbFunction) -> None:
        # key by the final name component so `dbo.fX` and `fX` both resolve
        self.functions[func.name.rsplit(".", 1)[-1].lower()] = func

    def table(self, name: str) -> Table | None:
        """Lookup by (possibly qualified) name; unknown → None."""
        return self.tables.get(name.rsplit(".", 1)[-1].lower())

    def function(self, name: str) -> DbFunction | None:
        return self.functions.get(name.rsplit(".", 1)[-1].lower())

    def table_list(self) -> list[Table]:
        return list(self.tables.values())


# --------------------------------------------------------------------------- #
# SDSS


_PHOTO_COLUMNS = (
    Column("objID", kind="id"),
    Column("ra", kind="numeric", lo=0.0, hi=360.0),
    Column("dec", kind="numeric", lo=-90.0, hi=90.0),
    Column("u", kind="numeric", lo=10.0, hi=30.0),
    Column("g", kind="numeric", lo=10.0, hi=30.0),
    Column("r", kind="numeric", lo=10.0, hi=30.0),
    Column("i", kind="numeric", lo=10.0, hi=30.0),
    Column("z", kind="numeric", lo=10.0, hi=30.0),
    Column("type", kind="category", distinct=9),
    Column("mode", kind="category", distinct=4),
    Column("flags", kind="category", distinct=64),
    Column("status", kind="category", distinct=16),
    Column("modelMag_u", kind="numeric", lo=10.0, hi=30.0),
    Column("modelMag_g", kind="numeric", lo=10.0, hi=30.0),
    Column("modelMag_r", kind="numeric", lo=10.0, hi=30.0),
    Column("psfMag_r", kind="numeric", lo=10.0, hi=30.0),
    Column("psfMagErr_u", kind="numeric", lo=0.0, hi=2.0),
    Column("psfMagErr_g", kind="numeric", lo=0.0, hi=2.0),
    Column("petroR50_r", kind="numeric", lo=0.0, hi=60.0),
    Column("extinction_r", kind="numeric", lo=0.0, hi=2.0),
    Column("run", kind="category", distinct=700),
    Column("rerun", kind="category", distinct=50),
    Column("camcol", kind="category", distinct=6),
    Column("field", kind="category", distinct=1000),
)

_SPEC_COLUMNS = (
    Column("specObjID", kind="id"),
    Column("bestObjID", kind="id"),
    Column("ra", kind="numeric", lo=0.0, hi=360.0),
    Column("dec", kind="numeric", lo=-90.0, hi=90.0),
    Column("z", kind="numeric", lo=-0.01, hi=7.0),
    Column("zErr", kind="numeric", lo=0.0, hi=1.0),
    Column("zConf", kind="numeric", lo=0.0, hi=1.0),
    Column("zWarning", kind="category", distinct=32),
    Column("specClass", kind="category", distinct=7),
    Column("plate", kind="category", distinct=3000),
    Column("mjd", kind="category", distinct=2000),
    Column("fiberID", kind="category", distinct=640),
    Column("modelMag_u", kind="numeric", lo=10.0, hi=30.0),
    Column("modelMag_g", kind="numeric", lo=10.0, hi=30.0),
)

_ADMIN_COLUMNS = (
    Column("name", kind="text"),
    Column("target", kind="category", distinct=20),
    Column("queue", kind="category", distinct=8),
    Column("estimate", kind="numeric", lo=0.0, hi=5000.0),
    Column("outputtype", kind="category", distinct=6),
    Column("status", kind="category", distinct=8),
    Column("jobID", kind="id"),
    Column("userID", kind="id"),
)

#: (name, rows, columns) for the named core of the SDSS schema. Row counts
#: for PhotoObj/SpecObj are the ones the paper quotes; others are realistic.
_SDSS_CORE_TABLES: list[tuple[str, int, tuple[Column, ...]]] = [
    ("PhotoObj", 794_328_715, _PHOTO_COLUMNS),
    ("PhotoObjAll", 1_200_000_000, _PHOTO_COLUMNS),
    ("PhotoPrimary", 400_000_000, _PHOTO_COLUMNS),
    ("PhotoTag", 794_328_715, _PHOTO_COLUMNS[:12]),
    ("Galaxy", 208_478_448, _PHOTO_COLUMNS),
    ("Star", 260_562_744, _PHOTO_COLUMNS),
    ("SpecObj", 4_311_571, _SPEC_COLUMNS),
    ("SpecObjAll", 5_789_200, _SPEC_COLUMNS),
    ("SpecPhoto", 3_929_000, _SPEC_COLUMNS + _PHOTO_COLUMNS[:8]),
    ("SpecLine", 88_000_000, _SPEC_COLUMNS[:8]),
    ("PlateX", 2_900, _SPEC_COLUMNS[8:]),
    ("Field", 938_046, _PHOTO_COLUMNS[18:]),
    ("Frame", 3_752_184, _PHOTO_COLUMNS[18:]),
    ("Neighbors", 2_600_000_000, (
        Column("objID", kind="id"),
        Column("neighborObjID", kind="id"),
        Column("distance", kind="numeric", lo=0.0, hi=0.5),
        Column("type", kind="category", distinct=9),
        Column("neighborType", kind="category", distinct=9),
    )),
    ("TwoMass", 470_000_000, _PHOTO_COLUMNS[:10]),
    ("First", 946_000, _PHOTO_COLUMNS[:10]),
    ("Rosat", 18_000, _PHOTO_COLUMNS[:10]),
    ("USNO", 1_000_000_000, _PHOTO_COLUMNS[:10]),
    ("Match", 60_000_000, (
        Column("objID1", kind="id"),
        Column("objID2", kind="id"),
        Column("distance", kind="numeric", lo=0.0, hi=1.0),
    )),
    ("Region", 3_500_000, _PHOTO_COLUMNS[18:]),
    ("Mask", 5_000_000, _PHOTO_COLUMNS[18:]),
    ("Jobs", 150_000, _ADMIN_COLUMNS),
    ("Users", 42_000, _ADMIN_COLUMNS),
    ("Status", 96, _ADMIN_COLUMNS),
    ("Servers", 24, _ADMIN_COLUMNS),
    ("DBObjects", 3_100, _ADMIN_COLUMNS),
    ("SiteConstants", 40, _ADMIN_COLUMNS),
]

#: Named core of the SDSS function catalog, with per-call CPU costs chosen so
#: per-row WHERE-clause invocation is expensive (Figure 1b).
_SDSS_CORE_FUNCTIONS = [
    ("dbo.fPhotoFlags", 2e-6),
    ("dbo.fPhotoStatus", 2e-6),
    ("dbo.fGetNearbyObjEq", 5e-4),
    ("dbo.fGetNearestObjEq", 5e-4),
    ("dbo.fGetObjFromRect", 4e-4),
    ("dbo.fDistanceArcMinEq", 3e-6),
    ("dbo.fSpecZWarning", 2e-6),
    ("dbo.fGetUrlExpId", 1e-5),
    ("dbo.fGetUrlFitsCFrame", 1e-5),
    ("dbo.fObjidFromSDSS", 4e-6),
    ("dbo.fSDSSfromObjID", 4e-6),
    ("dbo.fMJDToGMT", 1e-6),
    ("dbo.fIAUFromEq", 2e-6),
    ("dbo.fCosmoDl", 8e-6),
    ("dbo.fWedgeV3", 6e-6),
]

_ASTRO_WORDS = (
    "Photo Spec Obj Tile Target Sector Chunk Segment Stripe Run Field "
    "Mask Region Sky Zone Best Plate Fiber Line Index Cross Match Prof "
    "Gal Star QSO Neighbor Source Flux Mag Err Model Petro Psf Frame "
    "Header Meta Data Quality QA Diag History Version Load Drop Zoom"
).split()


def _generated_tables(rng: np.random.Generator, count: int) -> list[Table]:
    """Astronomy-flavoured filler tables so the catalog has SDSS's breadth."""
    tables: list[Table] = []
    seen: set[str] = set()
    while len(tables) < count:
        name = "".join(rng.choice(_ASTRO_WORDS, size=2, replace=False))
        if name.lower() in seen:
            continue
        seen.add(name.lower())
        rows = int(10 ** rng.uniform(2.0, 8.5))
        cols = tuple(
            rng.choice(
                np.asarray(_PHOTO_COLUMNS + _SPEC_COLUMNS, dtype=object),
                size=rng.integers(4, 12),
                replace=False,
            )
        )
        tables.append(Table(name, rows, cols))
    return tables


def sdss_catalog(seed: int = 7) -> Catalog:
    """The synthetic SDSS catalog (deterministic for a given seed)."""
    rng = np.random.default_rng(seed)
    catalog = Catalog("sdss")
    for name, rows, cols in _SDSS_CORE_TABLES:
        catalog.add_table(Table(name, rows, cols))
    for table in _generated_tables(rng, 87 - len(_SDSS_CORE_TABLES)):
        if catalog.table(table.name) is None:
            catalog.add_table(table)
    for name, cost in _SDSS_CORE_FUNCTIONS:
        catalog.add_function(DbFunction(name, cost))
    # fill to a few hundred functions like the real schema
    kinds = ["Get", "Calc", "Check", "From", "To", "Nearby", "Enum"]
    while len(catalog.functions) < 120:
        word = rng.choice(_ASTRO_WORDS)
        kind = rng.choice(kinds)
        fname = f"dbo.f{kind}{word}"
        if catalog.function(fname) is None:
            catalog.add_function(
                DbFunction(fname, float(10 ** rng.uniform(-6.5, -3.5)))
            )
    return catalog


# --------------------------------------------------------------------------- #
# SQLShare


_SQLSHARE_DOMAINS: dict[str, list[str]] = {
    "bio": [
        "gene", "protein", "sequence", "expression", "sample", "taxon",
        "genome", "read", "contig", "annotation", "blast", "alignment",
    ],
    "ocean": [
        "cruise", "station", "depth", "salinity", "temperature", "nitrate",
        "oxygen", "chlorophyll", "cast", "bottle", "sensor", "tow",
    ],
    "social": [
        "user", "post", "tag", "follower", "tweet", "hashtag", "mention",
        "thread", "vote", "comment", "session", "click",
    ],
    "sensor": [
        "reading", "device", "timestamp", "voltage", "signal", "event",
        "trace", "packet", "node", "channel", "sample", "batch",
    ],
}


def sqlshare_catalog(user: str, seed: int) -> Catalog:
    """Per-user SQLShare catalog with a user-specific lexicon.

    Each user gets 2-14 uploaded tables whose names embed user-specific
    suffixes (dataset versions, upload dates), producing the rare-token
    distribution that separates Homogeneous from Heterogeneous Schema.
    """
    rng = np.random.default_rng(seed)
    domain = list(_SQLSHARE_DOMAINS)[int(rng.integers(len(_SQLSHARE_DOMAINS)))]
    words = _SQLSHARE_DOMAINS[domain]
    catalog = Catalog(f"sqlshare:{user}")
    n_tables = int(rng.integers(2, 15))
    for _ in range(n_tables):
        stem = rng.choice(words)
        suffix = alpha_tag(int(rng.integers(0, 26**3)))
        name = f"{user}_{stem}_{suffix}"
        if catalog.table(name) is not None:
            continue
        n_cols = int(rng.integers(3, 16))
        cols: list[Column] = [Column(f"{stem}_id", kind="id")]
        for _ in range(n_cols):
            col_stem = rng.choice(words)
            tag = alpha_tag(int(rng.integers(0, 26**2)), width=2)
            kind = rng.choice(
                np.asarray(["numeric", "category", "text"], dtype=object),
                p=[0.6, 0.25, 0.15],
            )
            lo = float(rng.uniform(-100, 100))
            cols.append(
                Column(
                    f"{col_stem}_{tag}",
                    kind=str(kind),
                    lo=lo,
                    hi=lo + float(10 ** rng.uniform(0, 4)),
                    distinct=int(rng.integers(2, 200)),
                )
            )
        rows = int(10 ** rng.uniform(2.0, 7.0))
        catalog.add_table(Table(name, rows, tuple(cols)))
    for i in range(int(rng.integers(0, 4))):
        catalog.add_function(
            DbFunction(
                f"dbo.f_{user}_udf_{alpha_tag(i, width=1)}",
                float(10 ** rng.uniform(-6, -4)),
            )
        )
    return catalog
