"""Session identification from raw hits (Section 2 / [31, 45, 51]).

The paper adopts the SkyServer convention: *a session is an ordered
sequence of hits from a single IP address such that the gap between
consecutive hits is no longer than 30 minutes*. The SDSS log generator
emits per-hit IPs and timestamps; :func:`sessionize` reconstructs session
ids from them — the preprocessing step the paper's pipeline assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

__all__ = ["Hit", "sessionize", "SESSION_GAP_SECONDS"]

#: The 30-minute inactivity threshold that ends a session.
SESSION_GAP_SECONDS = 30 * 60


@dataclass(frozen=True)
class Hit:
    """One raw hit: who sent it and when (plus an opaque payload index)."""

    ip: str
    timestamp: float
    index: int = 0
    agent_string: Optional[str] = None


def sessionize(
    hits: Iterable[Hit], gap_seconds: float = SESSION_GAP_SECONDS
) -> dict[int, list[Hit]]:
    """Group hits into sessions by (IP, ≤ gap) chains.

    Args:
        hits: Raw hits in any order; they are sorted by timestamp per IP.
        gap_seconds: Maximum silence within one session.

    Returns:
        Mapping session id → hits in timestamp order. Session ids are
        assigned in order of each session's first hit, so the output is
        deterministic for a given input multiset.
    """
    if gap_seconds <= 0:
        raise ValueError("gap_seconds must be positive")
    hits = list(hits)
    if not hits:
        return {}
    # One vectorized gap-split instead of per-hit Python chains: lexsort
    # groups hits by IP ordered by (timestamp, index) — the same per-IP
    # order the old sorted() produced — then one diff() finds every
    # session boundary at once.
    ips = np.asarray([h.ip for h in hits], dtype=object)
    ts = np.asarray([h.timestamp for h in hits], dtype=np.float64)
    idx = np.asarray([h.index for h in hits], dtype=np.int64)
    order = np.lexsort((idx, ts, ips))
    ips = ips[order]
    ts = ts[order]
    hit_arr = np.empty(len(hits), dtype=object)
    hit_arr[:] = hits
    hit_arr = hit_arr[order]
    new_session = np.empty(len(hits), dtype=bool)
    new_session[0] = True
    new_session[1:] = (ips[1:] != ips[:-1]) | (
        (ts[1:] - ts[:-1]) > gap_seconds
    )
    bounds = np.nonzero(new_session)[0]
    ends = np.concatenate((bounds[1:], [len(hits)]))
    sessions = [
        list(hit_arr[lo:hi]) for lo, hi in zip(bounds, ends)
    ]
    # session ids in order of each session's first hit (ties by IP), as
    # before — the (timestamp, ip) pair is unique per session because two
    # same-IP sessions cannot share a first timestamp
    sessions.sort(key=lambda chain: (chain[0].timestamp, chain[0].ip))
    return {sid: chain for sid, chain in enumerate(sessions)}
