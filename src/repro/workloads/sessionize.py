"""Session identification from raw hits (Section 2 / [31, 45, 51]).

The paper adopts the SkyServer convention: *a session is an ordered
sequence of hits from a single IP address such that the gap between
consecutive hits is no longer than 30 minutes*. The SDSS log generator
emits per-hit IPs and timestamps; :func:`sessionize` reconstructs session
ids from them — the preprocessing step the paper's pipeline assumes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["Hit", "sessionize", "SESSION_GAP_SECONDS"]

#: The 30-minute inactivity threshold that ends a session.
SESSION_GAP_SECONDS = 30 * 60


@dataclass(frozen=True)
class Hit:
    """One raw hit: who sent it and when (plus an opaque payload index)."""

    ip: str
    timestamp: float
    index: int = 0
    agent_string: Optional[str] = None


def sessionize(
    hits: Iterable[Hit], gap_seconds: float = SESSION_GAP_SECONDS
) -> dict[int, list[Hit]]:
    """Group hits into sessions by (IP, ≤ gap) chains.

    Args:
        hits: Raw hits in any order; they are sorted by timestamp per IP.
        gap_seconds: Maximum silence within one session.

    Returns:
        Mapping session id → hits in timestamp order. Session ids are
        assigned in order of each session's first hit, so the output is
        deterministic for a given input multiset.
    """
    if gap_seconds <= 0:
        raise ValueError("gap_seconds must be positive")
    by_ip: dict[str, list[Hit]] = defaultdict(list)
    for hit in hits:
        by_ip[hit.ip].append(hit)
    sessions: list[list[Hit]] = []
    for ip in sorted(by_ip):
        ordered = sorted(by_ip[ip], key=lambda h: (h.timestamp, h.index))
        current: list[Hit] = []
        for hit in ordered:
            if current and hit.timestamp - current[-1].timestamp > gap_seconds:
                sessions.append(current)
                current = []
            current.append(hit)
        if current:
            sessions.append(current)
    sessions.sort(key=lambda chain: (chain[0].timestamp, chain[0].ip))
    return {sid: chain for sid, chain in enumerate(sessions)}
