"""Template-based SQL query generators for the synthetic workloads.

Each template is a function ``(rng, catalog) -> statement`` producing one
family of queries observed in the real logs: bot point lookups, browser
cone searches (Figure 2b), the Figure 1b per-row-UDF anti-pattern, CasJobs
``INTO mydb`` batch queries, admin monitoring queries (the paper's Q2),
nested/aggregating analytics, malformed SQL, and plain natural language.

Constants in bot-style templates are drawn from small pools so identical
statements recur across sessions — the redundancy that Section 4.1 and
Figure 20 measure and the dedup pipeline collapses.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.workloads.schema import Catalog, Table

__all__ = ["SDSS_TEMPLATES", "SQLSHARE_TEMPLATES", "generate_statement"]

TemplateFn = Callable[[np.random.Generator, Catalog], str]

# pools of "popular" constants so bot/admin statements repeat verbatim
_OBJID_POOL_SIZE = 48
_RA_POOL_SIZE = 64


def _pick_table(rng: np.random.Generator, catalog: Catalog, *names: str) -> Table:
    """A named table if present, else a random catalog table."""
    candidates = [catalog.table(n) for n in names]
    candidates = [t for t in candidates if t is not None]
    if candidates:
        return candidates[int(rng.integers(len(candidates)))]
    tables = catalog.table_list()
    return tables[int(rng.integers(len(tables)))]


def _random_table(rng: np.random.Generator, catalog: Catalog) -> Table:
    tables = catalog.table_list()
    return tables[int(rng.integers(len(tables)))]


def _some_columns(
    rng: np.random.Generator, table: Table, low: int, high: int
) -> list[str]:
    names = [c.name for c in table.columns]
    if not names:
        return ["objID"]
    k = int(rng.integers(low, min(high, len(names)) + 1))
    k = max(k, 1)
    picked = rng.choice(np.asarray(names, dtype=object), size=k, replace=False)
    return [str(c) for c in picked]


def _pool_objid(rng: np.random.Generator) -> str:
    """A hex object id from a finite pool (drives statement repetition)."""
    value = 0x112D000000000000 + int(rng.integers(_OBJID_POOL_SIZE)) * 1789
    return hex(value)


def _pool_ra(rng: np.random.Generator) -> float:
    return round(float(rng.integers(_RA_POOL_SIZE)) * 1.44, 6)


def _numeric_predicate(rng: np.random.Generator, table: Table) -> str:
    cols = table.numeric_columns()
    if not cols:
        return "1=1"
    col = cols[int(rng.integers(len(cols)))]
    op = str(rng.choice(np.asarray(["<", ">", "<=", ">="], dtype=object)))
    value = round(float(rng.uniform(col.lo, col.hi)), 4)
    return f"{col.name}{op}{value}"


def _category_predicate(rng: np.random.Generator, table: Table) -> str:
    cols = table.category_columns()
    if not cols:
        return _numeric_predicate(rng, table)
    col = cols[int(rng.integers(len(cols)))]
    return f"{col.name}={int(rng.integers(col.distinct))}"


def _between_predicate(
    rng: np.random.Generator, table: Table, width_scale: float = 0.01
) -> str:
    cols = table.numeric_columns()
    if not cols:
        return _category_predicate(rng, table)
    col = cols[int(rng.integers(len(cols)))]
    center = float(rng.uniform(col.lo, col.hi))
    width = (col.hi - col.lo) * width_scale * float(rng.uniform(0.2, 3.0))
    lo = round(center - width / 2, 6)
    hi = round(center + width / 2, 6)
    return f"{col.name} BETWEEN {lo} AND {hi}"


# --------------------------------------------------------------------------- #
# SDSS templates


def point_lookup(rng: np.random.Generator, catalog: Catalog) -> str:
    # bots overwhelmingly target PhotoTag (the Figure 2a pattern)
    table = _pick_table(
        rng, catalog, "PhotoTag", "PhotoTag", "PhotoTag", "PhotoObj", "SpecObj"
    )
    id_cols = table.id_columns()
    id_col = id_cols[0].name if id_cols else "objID"
    return f"SELECT * FROM {table.name} WHERE {id_col}={_pool_objid(rng)}"


def count_star(rng: np.random.Generator, catalog: Catalog) -> str:
    table = _pick_table(rng, catalog, "Galaxy", "Star", "PhotoObj")
    predicate = _between_predicate(rng, table, width_scale=0.02)
    return f"SELECT COUNT(*) FROM {table.name} WHERE {predicate}"


def cone_search(rng: np.random.Generator, catalog: Catalog) -> str:
    """The Figure 2b browser query: photometry in a small sky window."""
    table = _pick_table(rng, catalog, "PhotoObj", "PhotoPrimary", "Galaxy")
    cols = ",".join(f"p.{c}" for c in _some_columns(rng, table, 3, 9))
    ra = _pool_ra(rng)
    dec = round(float(rng.uniform(-20, 80)), 6)
    radius = round(float(rng.uniform(0.05, 0.4)), 6)
    order = " ORDER BY p.objID" if rng.random() < 0.5 else ""
    query_type = int(rng.integers(3, 7))
    return (
        f"SELECT {cols} FROM {table.name} AS p WHERE type={query_type} "
        f"AND p.ra BETWEEN ({ra}-{radius}) AND ({ra}+{radius}) "
        f"AND p.dec BETWEEN ({dec}-{radius}) AND ({dec}+{radius}){order}"
    )


def top_sample(rng: np.random.Generator, catalog: Catalog) -> str:
    table = _random_table(rng, catalog)
    cols = ",".join(_some_columns(rng, table, 1, 5))
    top = int(rng.choice(np.asarray([10, 50, 100, 1000])))
    predicate = _category_predicate(rng, table)
    return f"SELECT TOP {top} {cols} FROM {table.name} WHERE {predicate}"


def function_where(rng: np.random.Generator, catalog: Catalog) -> str:
    """The Figure 1b anti-pattern: UDF invoked once per scanned row."""
    table = _pick_table(rng, catalog, "PhotoObj", "PhotoObjAll", "Galaxy")
    flag = str(
        rng.choice(
            np.asarray(
                ["BLENDED", "SATURATED", "EDGE", "CHILD", "DEBLENDED_AS_PSF"],
                dtype=object,
            )
        )
    )
    cols = ",".join(_some_columns(rng, table, 2, 6))
    return (
        f"SELECT {cols} FROM {table.name} "
        f"WHERE flags & dbo.fPhotoFlags('{flag}') > 0"
    )


def function_select(rng: np.random.Generator, catalog: Catalog) -> str:
    table = _pick_table(rng, catalog, "SpecObj", "SpecPhoto", "PhotoObj")
    functions = list(catalog.functions.values())
    func = functions[int(rng.integers(len(functions)))]
    cols = _some_columns(rng, table, 1, 4)
    predicate = _between_predicate(rng, table, width_scale=0.005)
    return (
        f"SELECT {func.name}({cols[0]}),{','.join(cols)} "
        f"FROM {table.name} WHERE {predicate}"
    )


def join_query(rng: np.random.Generator, catalog: Catalog) -> str:
    left = _pick_table(rng, catalog, "SpecObj", "SpecPhoto")
    right = _pick_table(rng, catalog, "PhotoObj", "PhotoPrimary", "Galaxy")
    lcols = ",".join(f"s.{c}" for c in _some_columns(rng, left, 1, 4))
    rcols = ",".join(f"p.{c}" for c in _some_columns(rng, right, 1, 4))
    predicate = _between_predicate(rng, right, width_scale=0.003)
    explicit = rng.random() < 0.6
    if explicit:
        kind = str(
            rng.choice(np.asarray(["INNER JOIN", "JOIN", "LEFT JOIN"], dtype=object))
        )
        return (
            f"SELECT {lcols},{rcols} FROM {left.name} AS s {kind} "
            f"{right.name} AS p ON s.bestObjID=p.objID WHERE p.{predicate}"
        )
    return (
        f"SELECT {lcols},{rcols} FROM {left.name} AS s, {right.name} AS p "
        f"WHERE s.bestObjID=p.objID AND p.{predicate}"
    )


def three_way_join(rng: np.random.Generator, catalog: Catalog) -> str:
    """The paper's Q1 shape: three large tables, long select list."""
    spec = _pick_table(rng, catalog, "SpecObj", "SpecPhoto")
    photo = _pick_table(rng, catalog, "PhotoObj", "Galaxy")
    extra = _pick_table(rng, catalog, "PhotoTag", "Neighbors", "TwoMass")
    cols = ",".join(
        [f"s.{c}" for c in _some_columns(rng, spec, 3, 8)]
        + [f"p.{c}" for c in _some_columns(rng, photo, 5, 20)]
        + [f"q.{c}" for c in _some_columns(rng, extra, 2, 6)]
    )
    func = "dbo.fDistanceArcMinEq(q.ra,q.dec,p.ra,p.dec)"
    ra = _pool_ra(rng)
    return (
        f"SELECT q.objID AS qname,{func},{cols} "
        f"FROM {spec.name} AS s, {extra.name} AS q, {photo.name} AS p "
        f"WHERE ((s.bestObjID=p.objID) AND (s.ra BETWEEN {ra} AND {ra + 5}) "
        f"AND (q.type=6)) ORDER BY q.ra"
    )


def nested_in(rng: np.random.Generator, catalog: Catalog) -> str:
    outer = _pick_table(rng, catalog, "PhotoObj", "Galaxy", "Star")
    inner = _pick_table(rng, catalog, "SpecObj", "SpecPhoto")
    cols = ",".join(_some_columns(rng, outer, 1, 5))
    predicate = _category_predicate(rng, inner)
    return (
        f"SELECT {cols} FROM {outer.name} WHERE objID IN "
        f"(SELECT bestObjID FROM {inner.name} WHERE {predicate})"
    )


def nested_scalar_agg(rng: np.random.Generator, catalog: Catalog) -> str:
    """Nested aggregation, like the paper's Figure 5 example."""
    table = _pick_table(rng, catalog, "SpecPhoto", "SpecObj")
    numeric = table.numeric_columns()
    col = numeric[int(rng.integers(len(numeric)))].name if numeric else "z"
    agg = str(rng.choice(np.asarray(["MIN", "MAX"], dtype=object)))
    predicate = _numeric_predicate(rng, table)
    return (
        f"SELECT dbo.fGetUrlExpId(specObjID) FROM {table.name} "
        f"WHERE {col} = (SELECT {agg}({col}) FROM {table.name} "
        f"WHERE {predicate})"
    )


def group_agg(rng: np.random.Generator, catalog: Catalog) -> str:
    table = _random_table(rng, catalog)
    cats = table.category_columns()
    group_col = cats[int(rng.integers(len(cats)))].name if cats else "type"
    agg = str(rng.choice(np.asarray(["COUNT(*)", "AVG(ra)", "MAX(dec)"], dtype=object)))
    having = (
        f" HAVING COUNT(*) > {int(rng.integers(1, 100))}"
        if rng.random() < 0.3
        else ""
    )
    return (
        f"SELECT {group_col},{agg} FROM {table.name} "
        f"WHERE {_numeric_predicate(rng, table)} GROUP BY {group_col}{having}"
    )


def wide_select(rng: np.random.Generator, catalog: Catalog) -> str:
    """Long ad-hoc human query: many columns, several predicates."""
    table = _pick_table(rng, catalog, "PhotoObj", "PhotoObjAll", "Galaxy")
    cols = ",".join(f"p.{c}" for c in _some_columns(rng, table, 8, 24))
    predicates = " AND ".join(
        _numeric_predicate(rng, table) for _ in range(int(rng.integers(2, 7)))
    )
    return f"SELECT {cols} FROM {table.name} AS p WHERE {predicates}"


def into_mydb(rng: np.random.Generator, catalog: Catalog) -> str:
    """CasJobs batch query writing into the user's MyDB (no_web_hit style)."""
    table = _pick_table(rng, catalog, "PhotoObj", "SpecObj", "Galaxy")
    cols = ",".join(_some_columns(rng, table, 3, 10))
    target = f"mydb.batch_{int(rng.integers(10000))}"
    predicate = _between_predicate(rng, table, width_scale=0.05)
    return (
        f"SELECT {cols} INTO {target} FROM {table.name} WHERE {predicate}"
    )


def admin_monitor(rng: np.random.Generator, catalog: Catalog) -> str:
    """The paper's Q2 shape: service-monitoring query over Jobs/Servers."""
    variant = int(rng.integers(3))
    if variant == 0:
        return (
            "SELECT j.target,cast(j.estimate AS varchar) AS queue,j.status "
            "FROM Jobs j,Users u,Status s,"
            "(SELECT DISTINCT target,queue FROM Servers s1 WHERE s1.name "
            "NOT IN (SELECT name FROM Servers s,(SELECT target,min(queue) "
            "AS queue FROM Servers GROUP BY target) AS a "
            "WHERE a.target=s.target)) b "
            f"WHERE j.outputtype LIKE '%QUERY%' AND j.jobID>{int(rng.integers(9000))}"
        )
    if variant == 1:
        return (
            "SELECT target,COUNT(*) FROM Jobs WHERE "
            f"status={int(rng.integers(8))} GROUP BY target"
        )
    return f"SELECT TOP 100 * FROM Jobs WHERE userID={_pool_objid(rng)}"


#: Canned statements mimicking the SDSS help-page sample queries that users
#: copy-paste verbatim (Section 2). A large source of exact-statement
#: repetition across sessions (Figure 20).
_SAMPLE_GALLERY = [
    "SELECT COUNT(*) FROM Galaxy",
    "SELECT TOP 10 objID,ra,dec FROM PhotoObj WHERE type=6",
    "SELECT TOP 100 * FROM SpecObj WHERE zConf>0.35 AND specClass=3",
    "SELECT objID,u,g,r,i,z FROM Star WHERE u-g>2.27 AND g-r>1.35",
    "SELECT COUNT(*) FROM PhotoObj WHERE type=3",
    "SELECT TOP 10 ra,dec,modelMag_r FROM Galaxy WHERE modelMag_r<17",
    "SELECT objID FROM PhotoPrimary WHERE ra BETWEEN 140 AND 141 AND dec BETWEEN 20 AND 21",
    "SELECT specObjID,z,zErr FROM SpecObj WHERE zWarning=0 AND z>3",
    "SELECT TOP 50 p.objID,p.ra,p.dec,s.z FROM PhotoObj AS p JOIN SpecObj AS s ON s.bestObjID=p.objID WHERE s.z>2",
    "SELECT COUNT(*) FROM SpecObj WHERE specClass=1",
    "SELECT plate,mjd,COUNT(*) FROM SpecObj GROUP BY plate,mjd",
    "SELECT TOP 10 * FROM PhotoTag",
    "SELECT name FROM Servers",
    "SELECT ra,dec FROM Galaxy WHERE petroR50_r>10",
    "SELECT TOP 100 objID,flags FROM PhotoObj WHERE flags & dbo.fPhotoFlags('SATURATED') > 0",
    "SELECT g,r,i FROM Star WHERE psfMag_r BETWEEN 15 AND 16",
]


def gallery_query(rng: np.random.Generator, catalog: Catalog) -> str:
    """A verbatim sample query from the documentation gallery."""
    del catalog
    return _SAMPLE_GALLERY[int(rng.integers(len(_SAMPLE_GALLERY)))]


_NL_SNIPPETS = [
    "how do I find galaxies near ra {0}",
    "show me all the quasars please",
    "what is the magnitude of object {0}",
    "list of stars brighter than 15 in the northern sky",
    "help I cannot get my query to work",
    "find photometric objects with redshift above {0}",
    "test test test",
    "select the good data",
]


def random_text(rng: np.random.Generator, catalog: Catalog) -> str:
    del catalog
    snippet = _NL_SNIPPETS[int(rng.integers(len(_NL_SNIPPETS)))]
    return snippet.format(round(float(rng.uniform(0, 200)), 2))


def malformed_sql(rng: np.random.Generator, catalog: Catalog) -> str:
    """A valid query corrupted the way humans typo them.

    Most corruptions leave the statement unparseable (the portal rejects it
    → severe); the BETWEEN corruption produces a statement that reaches the
    server and fails there (non-severe), like the real mix.
    """
    base = cone_search(rng, catalog)
    corruption = int(rng.integers(4))
    if corruption == 0:
        return base.replace("SELECT", "SELCT", 1)
    if corruption == 1:
        return base.replace("FROM", "FORM", 1).replace("WHERE", "WHRE", 1)
    if corruption == 2:
        return base + " AND ((( OR AND ) ? ? ?"
    return base.replace("BETWEEN", "BETWEEN AND", 1)


def bad_reference(rng: np.random.Generator, catalog: Catalog) -> str:
    """Syntactically valid query over a misspelled table (runtime error)."""
    table = _random_table(rng, catalog)
    typo = table.name + str(rng.choice(np.asarray(["s", "x", "2", "_old"], dtype=object)))
    cols = ",".join(_some_columns(rng, table, 1, 4))
    return f"SELECT {cols} FROM {typo} WHERE {_numeric_predicate(rng, table)}"


def ddl_misc(rng: np.random.Generator, catalog: Catalog) -> str:
    table = _random_table(rng, catalog)
    variant = int(rng.integers(4))
    if variant == 0:
        return f"DROP TABLE mydb.batch_{int(rng.integers(10000))}"
    if variant == 1:
        return (
            f"CREATE TABLE mydb.slice_{int(rng.integers(10000))} "
            "(objid bigint, ra float, dec float)"
        )
    if variant == 2:
        return f"EXEC spExecuteSQL 'SELECT COUNT(*) FROM {table.name}'"
    return (
        f"INSERT INTO mydb.collected SELECT TOP 500 * FROM {table.name} "
        f"WHERE {_category_predicate(rng, table)}"
    )


SDSS_TEMPLATES: dict[str, TemplateFn] = {
    "point_lookup": point_lookup,
    "count_star": count_star,
    "cone_search": cone_search,
    "top_sample": top_sample,
    "function_where": function_where,
    "function_select": function_select,
    "join_query": join_query,
    "three_way_join": three_way_join,
    "nested_in": nested_in,
    "nested_scalar_agg": nested_scalar_agg,
    "group_agg": group_agg,
    "wide_select": wide_select,
    "into_mydb": into_mydb,
    "admin_monitor": admin_monitor,
    "random_text": random_text,
    "malformed_sql": malformed_sql,
    "bad_reference": bad_reference,
    "ddl_misc": ddl_misc,
    "gallery_query": gallery_query,
}


# --------------------------------------------------------------------------- #
# SQLShare templates (operate on a per-user catalog)


def ss_select_all(rng: np.random.Generator, catalog: Catalog) -> str:
    table = _random_table(rng, catalog)
    if rng.random() < 0.4:
        return f"SELECT * FROM {table.name}"
    top = int(rng.choice(np.asarray([10, 100, 1000])))
    return f"SELECT TOP {top} * FROM {table.name}"


def ss_filter(rng: np.random.Generator, catalog: Catalog) -> str:
    table = _random_table(rng, catalog)
    cols = ",".join(_some_columns(rng, table, 1, 6))
    predicate = _numeric_predicate(rng, table)
    return f"SELECT {cols} FROM {table.name} WHERE {predicate}"


def ss_agg(rng: np.random.Generator, catalog: Catalog) -> str:
    table = _random_table(rng, catalog)
    cats = table.category_columns()
    numeric = table.numeric_columns()
    group_col = cats[int(rng.integers(len(cats)))].name if cats else table.columns[0].name
    value_col = numeric[int(rng.integers(len(numeric)))].name if numeric else group_col
    agg = str(rng.choice(np.asarray(["AVG", "SUM", "MIN", "MAX", "COUNT"], dtype=object)))
    return (
        f"SELECT {group_col},{agg}({value_col}) FROM {table.name} "
        f"GROUP BY {group_col}"
    )


def ss_join(rng: np.random.Generator, catalog: Catalog) -> str:
    tables = catalog.table_list()
    left = tables[int(rng.integers(len(tables)))]
    right = tables[int(rng.integers(len(tables)))]
    left_id = left.id_columns()[0].name if left.id_columns() else left.columns[0].name
    right_id = right.id_columns()[0].name if right.id_columns() else right.columns[0].name
    lcols = ",".join(f"a.{c}" for c in _some_columns(rng, left, 1, 4))
    return (
        f"SELECT {lcols} FROM {left.name} a JOIN {right.name} b "
        f"ON a.{left_id}=b.{right_id} WHERE a.{_numeric_predicate(rng, left)}"
    )


def ss_derived(rng: np.random.Generator, catalog: Catalog) -> str:
    """Derived-table analytics — SQLShare's hallmark nested style."""
    table = _random_table(rng, catalog)
    cats = table.category_columns()
    numeric = table.numeric_columns()
    group_col = cats[int(rng.integers(len(cats)))].name if cats else table.columns[0].name
    value_col = numeric[int(rng.integers(len(numeric)))].name if numeric else group_col
    return (
        f"SELECT t.{group_col},t.avg_v FROM "
        f"(SELECT {group_col},AVG({value_col}) AS avg_v FROM {table.name} "
        f"GROUP BY {group_col}) t WHERE t.avg_v > "
        f"(SELECT AVG({value_col}) FROM {table.name})"
    )


def ss_deep_nested(rng: np.random.Generator, catalog: Catalog) -> str:
    table = _random_table(rng, catalog)
    numeric = table.numeric_columns()
    col = numeric[int(rng.integers(len(numeric)))].name if numeric else table.columns[0].name
    id_col = table.id_columns()[0].name if table.id_columns() else table.columns[0].name
    return (
        f"SELECT {id_col} FROM {table.name} WHERE {col} IN "
        f"(SELECT MAX({col}) FROM {table.name} WHERE {id_col} IN "
        f"(SELECT {id_col} FROM {table.name} WHERE {col} > "
        f"(SELECT AVG({col}) FROM {table.name})))"
    )


def ss_long_analytics(rng: np.random.Generator, catalog: Catalog) -> str:
    """Long multi-case SELECT typical of uploaded-CSV cleanup queries."""
    table = _random_table(rng, catalog)
    cols = _some_columns(rng, table, 4, 12)
    case_col = cols[0]
    threshold = round(float(rng.uniform(0, 100)), 3)
    case = (
        f"CASE WHEN {case_col} > {threshold} THEN 'high' "
        f"WHEN {case_col} > {threshold / 2} THEN 'mid' ELSE 'low' END AS bucket"
    )
    return (
        f"SELECT {','.join(cols)},{case} FROM {table.name} "
        f"WHERE {_numeric_predicate(rng, table)} "
        f"AND {_numeric_predicate(rng, table)}"
    )


def ss_malformed(rng: np.random.Generator, catalog: Catalog) -> str:
    base = ss_filter(rng, catalog)
    if rng.random() < 0.5:
        return base.replace("SELECT", "SELET", 1)
    return base + " GROUP WHERE"


SQLSHARE_TEMPLATES: dict[str, TemplateFn] = {
    "ss_select_all": ss_select_all,
    "ss_filter": ss_filter,
    "ss_agg": ss_agg,
    "ss_join": ss_join,
    "ss_derived": ss_derived,
    "ss_deep_nested": ss_deep_nested,
    "ss_long_analytics": ss_long_analytics,
    "ss_malformed": ss_malformed,
}


def generate_statement(
    template: str,
    rng: np.random.Generator,
    catalog: Catalog,
) -> str:
    """Generate one statement from a named template (either registry)."""
    registry = SDSS_TEMPLATES if template in SDSS_TEMPLATES else SQLSHARE_TEMPLATES
    if template not in registry:
        raise KeyError(f"unknown template: {template}")
    return registry[template](rng, catalog)
