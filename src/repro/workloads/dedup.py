"""Workload extraction pipeline: sampling, grouping, label aggregation.

Implements the two redundancy-resolution steps of Section 4.1 / Appendix B.3:

1. randomly sample one SQL query log per session (bot/admin sessions contain
   thousands of near-identical hits);
2. group logs with identical statements and aggregate their labels — mean
   for answer size / CPU time, majority vote (random tie-break) for error
   and session class.
"""

from __future__ import annotations

from collections import Counter, defaultdict

import numpy as np

from repro.workloads.records import LogEntry, QueryRecord

__all__ = [
    "sample_one_per_session",
    "aggregate_duplicates",
    "repetition_histogram",
    "REPETITION_BINS",
]


def sample_one_per_session(
    log: list[LogEntry], rng: np.random.Generator
) -> list[LogEntry]:
    """One uniformly sampled entry per session, in session order."""
    by_session: dict[int, list[LogEntry]] = defaultdict(list)
    for entry in log:
        by_session[entry.session_id].append(entry)
    sampled: list[LogEntry] = []
    for session_id in sorted(by_session):
        entries = by_session[session_id]
        sampled.append(entries[int(rng.integers(len(entries)))])
    return sampled


def _majority(values: list[str], rng: np.random.Generator) -> str:
    """Majority vote with random tie-breaking (Section 4.1)."""
    counts = Counter(values)
    top = max(counts.values())
    winners = sorted(v for v, c in counts.items() if c == top)
    return winners[int(rng.integers(len(winners)))]


def aggregate_duplicates(
    entries: list[LogEntry], rng: np.random.Generator
) -> list[QueryRecord]:
    """Group identical statements and aggregate their labels.

    Answer size and CPU time become means over the duplicates; error class
    and session class become majority votes. The returned records preserve
    first-appearance order; ``num_duplicates`` records the group size.
    """
    groups: dict[str, list[LogEntry]] = defaultdict(list)
    order: list[str] = []
    for entry in entries:
        if entry.statement not in groups:
            order.append(entry.statement)
        groups[entry.statement].append(entry)
    records: list[QueryRecord] = []
    for statement in order:
        group = groups[statement]
        records.append(
            QueryRecord(
                statement=statement,
                error_class=_majority([e.error_class for e in group], rng),
                answer_size=float(
                    np.mean([e.answer_size for e in group])
                ),
                cpu_time=float(np.mean([e.cpu_time for e in group])),
                session_class=_majority(
                    [e.session_class for e in group], rng
                ),
                user=group[0].user,
                num_duplicates=len(group),
                elapsed_time=float(
                    np.mean([e.elapsed_time for e in group])
                ),
            )
        )
    return records


#: Histogram bin upper bounds for Figure 20 (repetition counts).
REPETITION_BINS = [
    ("1", 1, 1),
    ("2", 2, 2),
    ("3", 3, 3),
    ("4-20", 4, 20),
    ("21-100", 21, 100),
    ("101-1000", 101, 1000),
    (">1000", 1001, None),
]


def repetition_histogram(entries: list[LogEntry]) -> dict[str, int]:
    """Figure 20: number of sampled entries per statement-repetition bin.

    Counts, for each unique statement, how many sampled logs share it, then
    buckets *samples* (not unique statements) by that repetition count —
    matching the figure's y-axis "number of samples in dataset".
    """
    counts = Counter(e.statement for e in entries)
    histogram = {label: 0 for label, _, _ in REPETITION_BINS}
    for _, repetitions in counts.items():
        for label, lo, hi in REPETITION_BINS:
            if repetitions >= lo and (hi is None or repetitions <= hi):
                histogram[label] += repetitions
                break
    return histogram
