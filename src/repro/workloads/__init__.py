"""Workload substrate: synthetic SDSS and SQLShare query workloads.

The paper's experiments run on two proprietary-to-download, large-scale
query logs: the Sloan Digital Sky Survey (SDSS) SqlLog/WebLog dump and the
SQLShare multi-year service log. This package is the substitution documented
in DESIGN.md: catalogs that mirror the published schemas' shape, per-session-
class query generators, and a simulated execution engine that assigns
ground-truth labels (error class, answer size, CPU time) with the same
structural dependencies the real systems exhibit.
"""

from repro.workloads.records import LogEntry, QueryRecord, Workload
from repro.workloads.schema import Catalog, Column, DbFunction, Table
from repro.workloads.schema import sdss_catalog, sqlshare_catalog
from repro.workloads.execution import ExecutionOutcome, SimulatedDatabase
from repro.workloads.sdss import generate_sdss_log, generate_sdss_workload
from repro.workloads.sqlshare import generate_sqlshare_workload
from repro.workloads.dedup import (
    aggregate_duplicates,
    repetition_histogram,
    sample_one_per_session,
)
from repro.workloads.sessionize import Hit, sessionize
from repro.workloads.io import (
    LogWriter,
    WorkloadFormatError,
    WorkloadWriter,
    iter_log,
    iter_workload,
    load_log,
    load_workload,
    save_log,
    save_workload,
)
from repro.workloads.compression import CompressedWorkload, compress_workload

__all__ = [
    "LogEntry",
    "QueryRecord",
    "Workload",
    "Catalog",
    "Table",
    "Column",
    "DbFunction",
    "sdss_catalog",
    "sqlshare_catalog",
    "ExecutionOutcome",
    "SimulatedDatabase",
    "generate_sdss_log",
    "generate_sdss_workload",
    "generate_sqlshare_workload",
    "sample_one_per_session",
    "aggregate_duplicates",
    "repetition_histogram",
    "Hit",
    "sessionize",
    "save_workload",
    "load_workload",
    "save_log",
    "load_log",
    "iter_workload",
    "iter_log",
    "WorkloadWriter",
    "LogWriter",
    "WorkloadFormatError",
    "CompressedWorkload",
    "compress_workload",
]
