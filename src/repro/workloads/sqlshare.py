"""Synthetic SQLShare workload generation (Section 4.2).

SQLShare is a database-as-a-service deployment: each user uploads private
datasets and writes short-term ad-hoc analytics over them. The generator
gives every user their own catalog (:func:`~repro.workloads.schema.sqlshare_catalog`),
their own backend speed, and a personal mixture over the analytics templates
— so queries from different users share almost no table/column vocabulary.
Only the CPU-time label is retained, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.dedup import aggregate_duplicates
from repro.workloads.execution import CostParameters, SimulatedDatabase
from repro.workloads.querygen import SQLSHARE_TEMPLATES
from repro.workloads.records import LogEntry, QueryRecord, Workload

__all__ = ["generate_sqlshare_workload", "SQLSHARE_TEMPLATE_WEIGHTS"]

#: Base mixture over SQLShare templates; per-user Dirichlet jitter is applied
#: so users have personal styles. The nesting-heavy templates get enough
#: mass to reproduce SQLShare's higher nestedness (Figure 4i vs 3i).
SQLSHARE_TEMPLATE_WEIGHTS: dict[str, float] = {
    "ss_select_all": 0.22,
    "ss_filter": 0.27,
    "ss_agg": 0.16,
    "ss_join": 0.09,
    "ss_derived": 0.10,
    "ss_deep_nested": 0.04,
    "ss_long_analytics": 0.10,
    "ss_malformed": 0.02,
}


def generate_sqlshare_workload(
    n_users: int = 60,
    seed: int = 29,
    queries_per_user: tuple[int, int] = (8, 60),
) -> Workload:
    """Generate the SQLShare workload.

    Args:
        n_users: Number of distinct users (each with a private schema).
        seed: Master seed.
        queries_per_user: Inclusive (low, high) range of queries per user.

    Returns:
        Workload whose records carry ``cpu_time`` (integer seconds, like the
        QExecTime column) and ``user``; the other labels are None.
    """
    rng = np.random.default_rng(seed)
    template_names = list(SQLSHARE_TEMPLATE_WEIGHTS)
    base_weights = np.asarray(
        [SQLSHARE_TEMPLATE_WEIGHTS[t] for t in template_names]
    )
    entries: list[LogEntry] = []
    for user_idx in range(n_users):
        from repro.workloads.schema import sqlshare_catalog, sqlshare_username

        user = sqlshare_username(user_idx)
        user_seed = seed * 100_003 + user_idx
        catalog = sqlshare_catalog(user, seed=user_seed)
        # each user's data lives on a shared multi-tenant service with its
        # own effective speed; the spread is kept at ~4x so per-user speed
        # is a nuisance factor, not a noise floor that drowns the
        # structural signal cross-user models must learn (for held-out
        # users the speed factor is irreducible error)
        speed = float(10 ** rng.uniform(2.85, 3.45))
        database = SimulatedDatabase(
            catalog,
            seed=user_seed + 1,
            speed_factor=speed,
            # the service kills queries before the week-long mark: the
            # published workload's QExecTime tops out around 4.3e6 s
            params=CostParameters(max_cpu=4.3e6),
        )
        weights = rng.dirichlet(base_weights * 12.0)
        n_queries = int(rng.integers(queries_per_user[0], queries_per_user[1] + 1))
        statements = []
        for q in range(n_queries):
            template = str(
                rng.choice(np.asarray(template_names, dtype=object), p=weights)
            )
            statements.append(SQLSHARE_TEMPLATES[template](rng, catalog))
        outcomes = database.execute_batch(statements)
        for q, (statement, outcome) in enumerate(zip(statements, outcomes)):
            cpu_seconds = float(int(outcome.cpu_time))  # QExecTime is integer
            entries.append(
                LogEntry(
                    statement=statement,
                    session_id=user_idx * 1_000_000 + q,
                    session_class="unknown",
                    error_class=outcome.error_class,
                    answer_size=outcome.answer_size,
                    cpu_time=cpu_seconds,
                    user=user,
                    elapsed_time=outcome.elapsed_time,
                )
            )
    records = aggregate_duplicates(entries, rng)
    cleaned: list[QueryRecord] = []
    for record in records:
        # the published workload carries only the statement + QExecTime
        cleaned.append(
            QueryRecord(
                statement=record.statement,
                cpu_time=record.cpu_time,
                user=record.user,
                num_duplicates=record.num_duplicates,
            )
        )
    return Workload("sqlshare", cleaned)
