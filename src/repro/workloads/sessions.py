"""Session-class behaviour profiles (Section 2 / 4.1, Figure 8).

Each SDSS session class is a distinct client population with its own query
habits. The profiles encode three behaviours the paper's analysis relies on:

- **class shares** match the Table 4 test-set distribution (no_web_hit is
  the majority class at ~44.8%, admin is vanishingly rare);
- **template mixtures** make session class correlate with syntactic
  complexity (Figure 8): bots submit short templated lookups, browsers and
  CasJobs (no_web_hit) users write long ad-hoc SQL with joins, nesting and
  mistakes;
- **template stickiness** — bots and admin jobs re-instantiate one template
  per session, producing the statement repetition of Figure 20.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SessionProfile", "SDSS_SESSION_PROFILES", "sample_session_class"]


@dataclass(frozen=True)
class SessionProfile:
    """Behaviour of one session class.

    Attributes:
        name: Session class label.
        share: Probability a session belongs to this class.
        templates: Mapping template name → mixture weight.
        mean_length: Mean session length in hits (geometric distribution).
        sticky: Whether all hits of a session reuse one template
            (bot/admin behaviour).
    """

    name: str
    share: float
    templates: dict[str, float] = field(default_factory=dict)
    mean_length: float = 5.0
    sticky: bool = False

    def pick_template(self, rng: np.random.Generator) -> str:
        names = list(self.templates)
        weights = np.asarray([self.templates[n] for n in names])
        weights = weights / weights.sum()
        return str(rng.choice(np.asarray(names, dtype=object), p=weights))

    def session_length(self, rng: np.random.Generator, cap: int = 12) -> int:
        length = 1 + int(rng.geometric(1.0 / max(self.mean_length, 1.0)) - 1)
        return int(np.clip(length, 1, cap))


SDSS_SESSION_PROFILES: list[SessionProfile] = [
    SessionProfile(
        name="no_web_hit",
        share=0.4478,
        mean_length=4.0,
        templates={
            "gallery_query": 0.03,
            "into_mydb": 0.22,
            "three_way_join": 0.13,
            "wide_select": 0.16,
            "join_query": 0.11,
            "function_where": 0.07,
            "function_select": 0.05,
            "group_agg": 0.08,
            "nested_scalar_agg": 0.02,
            "nested_in": 0.03,
            "ddl_misc": 0.05,
            "cone_search": 0.04,
            "malformed_sql": 0.025,
            "random_text": 0.01,
            "bad_reference": 0.045,
        },
    ),
    SessionProfile(
        name="bot",
        share=0.2613,
        mean_length=10.0,
        sticky=True,
        templates={
            "point_lookup": 0.72,
            "count_star": 0.14,
            "top_sample": 0.14,
        },
    ),
    SessionProfile(
        name="browser",
        share=0.2036,
        mean_length=6.0,
        templates={
            "gallery_query": 0.09,
            "cone_search": 0.30,
            "wide_select": 0.17,
            "join_query": 0.14,
            "group_agg": 0.09,
            "top_sample": 0.08,
            "function_where": 0.05,
            "function_select": 0.04,
            "nested_in": 0.04,
            "nested_scalar_agg": 0.01,
            "count_star": 0.03,
            "malformed_sql": 0.04,
            "random_text": 0.02,
            "bad_reference": 0.05,
        },
    ),
    SessionProfile(
        name="program",
        share=0.0790,
        mean_length=9.0,
        sticky=True,
        templates={
            "gallery_query": 0.04,
            "cone_search": 0.46,
            "function_select": 0.18,
            "count_star": 0.10,
            "top_sample": 0.10,
            "join_query": 0.10,
            "into_mydb": 0.05,
            "bad_reference": 0.02,
        },
    ),
    SessionProfile(
        name="anonymous",
        share=0.0076,
        mean_length=4.0,
        templates={
            "gallery_query": 0.25,
            "cone_search": 0.38,
            "top_sample": 0.28,
            "count_star": 0.18,
            "point_lookup": 0.12,
            "malformed_sql": 0.03,
            "random_text": 0.01,
            "bad_reference": 0.04,
        },
    ),
    SessionProfile(
        name="unknown",
        share=0.0010,
        mean_length=4.0,
        templates={
            "gallery_query": 0.2,
            "cone_search": 0.25,
            "point_lookup": 0.25,
            "top_sample": 0.2,
            "count_star": 0.15,
            "join_query": 0.1,
            "random_text": 0.05,
        },
    ),
    SessionProfile(
        name="admin",
        share=0.0007,
        mean_length=8.0,
        sticky=True,
        templates={
            "admin_monitor": 0.9,
            "count_star": 0.1,
        },
    ),
]


def sample_session_class(rng: np.random.Generator) -> SessionProfile:
    """Draw a session class according to the profile shares."""
    shares = np.asarray([p.share for p in SDSS_SESSION_PROFILES])
    shares = shares / shares.sum()
    idx = int(rng.choice(len(SDSS_SESSION_PROFILES), p=shares))
    return SDSS_SESSION_PROFILES[idx]
