"""Simulated execution engine: assigns ground-truth labels to statements.

This replaces the real CAS / SQLShare servers in the label-generation role
(see the substitution table in DESIGN.md). Given a catalog and a statement:

- **error class** — ``severe`` if the statement does not parse (the web
  portal rejects it before submission), ``non_severe`` if it parses but
  fails at "run time" (unknown table/function, or an injected transient
  failure), ``success`` otherwise;
- **answer size** — a textbook cardinality estimate (per-predicate
  selectivities, equi-join keys, GROUP BY/DISTINCT/TOP handling) perturbed
  by log-normal noise, so the mapping from structure to label is realistic
  but not exactly invertible;
- **CPU time** — a cost model over the same traversal: scan cost per row,
  join build/probe costs, sort cost, and a per-row charge for UDFs invoked
  in WHERE clauses (the paper's Figure 1b inefficiency).

Label noise is drawn from the engine's RNG; a fixed seed makes whole
workloads reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from collections.abc import Sequence

from repro.sqlang import ast_nodes as ast
from repro.sqlang.parser import ParseResult
from repro.sqlang.pipeline import analyze_batch, parse_cached
from repro.workloads.schema import Catalog, Table

__all__ = ["ExecutionOutcome", "SimulatedDatabase", "CostParameters"]


@dataclass(frozen=True)
class ExecutionOutcome:
    """Labels produced by one simulated execution.

    ``elapsed_time`` is the wall-clock lapse of the query (the SqlLog
    ``elapsed`` column): CPU time inflated by I/O stalls, plus result
    transfer proportional to the answer size, plus queueing delay. The
    paper's future work proposes predicting it (Section 8).
    """

    error_class: str
    answer_size: float
    cpu_time: float
    elapsed_time: float = 0.0


@dataclass(frozen=True)
class CostParameters:
    """Tunable constants of the cost model (seconds per unit of work)."""

    scan_per_row: float = 4e-9
    join_per_row: float = 1.2e-8
    sort_factor: float = 6e-9
    output_per_row: float = 2e-8
    base_overhead: float = 0.004
    noise_sigma: float = 0.35
    answer_noise_sigma: float = 0.25
    transient_failure_rate: float = 0.008
    max_rows: float = 1e9
    max_cpu: float = 1e8
    # elapsed-time model (SqlLog ``elapsed``): I/O stall multiplier on CPU,
    # per-row result transfer, and mean queueing delay
    io_wait_sigma: float = 0.5
    transfer_per_row: float = 5e-7
    queue_delay_mean: float = 0.05


_DEFAULT_TABLE_ROWS = 1_000_000
_COMPARISON_OPS = {"=", "<", ">", "<=", ">=", "<>", "!="}


class SimulatedDatabase:
    """Executes parsed statements against a catalog to produce labels.

    Args:
        catalog: Schema to resolve tables/functions against.
        seed: RNG seed for label noise and transient failures.
        params: Cost model constants.
        speed_factor: Per-deployment multiplier on CPU times (used to give
            each SQLShare user's backend its own performance level).
    """

    def __init__(
        self,
        catalog: Catalog,
        seed: int = 0,
        params: CostParameters | None = None,
        speed_factor: float = 1.0,
    ):
        self.catalog = catalog
        self.rng = np.random.default_rng(seed)
        # elapsed-time noise comes from its own stream so adding the
        # elapsed label does not disturb the calibrated error/rows/CPU
        # label draws
        self._elapsed_rng = np.random.default_rng((seed, 0xE1A))
        self.params = params or CostParameters()
        self.speed_factor = speed_factor

    # -- public API --------------------------------------------------------- #

    def execute(self, statement: str) -> ExecutionOutcome:
        """Simulate executing ``statement``; never raises.

        Parsing goes through the shared analysis pipeline — workload
        generation executes millions of statements of which most are
        verbatim repeats, so the parse is usually a cache hit. The label
        noise is still drawn fresh per execution.
        """
        return self._execute_parsed(parse_cached(statement))

    def execute_batch(
        self, statements: Sequence[str]
    ) -> list[ExecutionOutcome]:
        """Simulate many statements, parsing each distinct one once.

        Outcomes are drawn in input order from the same RNG streams as
        sequential :meth:`execute` calls, so ``execute_batch(stmts)`` and
        ``[execute(s) for s in stmts]`` produce identical labels.
        """
        return [
            self._execute_parsed(analysis.parsed)
            for analysis in analyze_batch(statements)
        ]

    def _execute_parsed(self, parsed: ParseResult) -> ExecutionOutcome:
        if self._is_rejected(parsed):
            # rejected at the portal: the server never sees the query
            return ExecutionOutcome("severe", -1.0, 0.0, 0.0)
        runtime_error = self._runtime_error(parsed)
        if runtime_error:
            # the server starts work, fails, and charges a little CPU
            cpu = self.params.base_overhead * float(
                1.0 + self.rng.exponential(2.0)
            )
            return ExecutionOutcome(
                "non_severe", -1.0, round(cpu, 6), self._elapsed(cpu, 0.0)
            )
        query = parsed.first_query()
        if query is None:
            # parsed non-SELECT without embedded query (DROP, EXEC, ...)
            cpu = self.params.base_overhead * float(
                1.0 + self.rng.exponential(4.0)
            )
            return ExecutionOutcome(
                "success", 0.0, round(cpu, 6), self._elapsed(cpu, 0.0)
            )
        rows, cost = self._estimate_query(query, depth=0)
        rows = self._noisy_rows(rows)
        if query.top is not None:  # TOP caps the result exactly
            rows = min(rows, float(max(query.top, 0)))
        cpu = self._noisy_cpu(cost)
        return ExecutionOutcome("success", rows, cpu, self._elapsed(cpu, rows))

    def _elapsed(self, cpu: float, rows: float) -> float:
        """Wall-clock lapse: CPU inflated by I/O, transfer, queueing."""
        io_factor = float(
            np.exp(self._elapsed_rng.normal(0.4, self.params.io_wait_sigma))
        )
        transfer = max(rows, 0.0) * self.params.transfer_per_row
        queue = float(
            self._elapsed_rng.exponential(self.params.queue_delay_mean)
        )
        return round(cpu * (1.0 + io_factor) + transfer + queue, 6)

    # -- error model ------------------------------------------------------- #

    def _is_rejected(self, parsed: ParseResult) -> bool:
        """Portal rejection: unparseable input never reaches the server."""
        if not parsed.statements:
            return True
        if all(s.statement_type == "UNKNOWN" for s in parsed.statements):
            return True
        # heavily broken SQL (several recovery actions needed): well-formed
        # template queries parse with zero recoveries, so this only fires
        # on genuinely broken input
        if parsed.error_count >= 3:
            return True
        return False

    def _runtime_error(self, parsed: ParseResult) -> bool:
        """Server-side failure: bad references or transient faults."""
        for stmt in parsed.statements:
            for node in ast.walk(stmt):
                if isinstance(node, ast.TableRef):
                    known = self.catalog.table(node.name) is not None
                    is_mydb = node.name.lower().startswith(
                        ("mydb", "tempdb", "#")
                    )
                    if not known and not is_mydb and not self._is_alias(
                        node, parsed
                    ):
                        return True
                if isinstance(node, ast.FunctionCall):
                    builtin = node.is_aggregate or "." not in node.name
                    if not builtin and self.catalog.function(node.name) is None:
                        return True
        if parsed.error_count > 0 and self.rng.random() < 0.5:
            return True
        return self.rng.random() < self.params.transient_failure_rate

    @staticmethod
    def _is_alias(ref: ast.TableRef, parsed: ParseResult) -> bool:
        """True when ``ref`` re-uses an alias defined elsewhere (tolerate)."""
        target = ref.base_name.lower()
        for stmt in parsed.statements:
            for node in ast.walk(stmt):
                alias = getattr(node, "alias", None)
                if alias and alias.lower() == target and node is not ref:
                    return True
        return False

    # -- cardinality + cost ------------------------------------------------- #

    def _estimate_query(
        self, query: ast.SelectQuery, depth: int
    ) -> tuple[float, float]:
        """Estimate (output rows, CPU cost) of one SELECT block."""
        if depth > 8:  # degenerate nesting: stop recursing
            return 1.0, self.params.base_overhead

        source_rows, source_cost, scanned = self._estimate_from(
            query.from_items, depth
        )
        selectivity, predicate_cost = self._estimate_predicate(
            query.where, scanned, depth
        )
        rows = max(source_rows * selectivity, 0.0)
        if query.where is not None and self._has_id_equality(query.where):
            # point lookups on a key column find their object: ~1 row
            rows = max(rows, 1.0)
        cost = source_cost + predicate_cost

        has_aggregate = any(
            isinstance(node, ast.FunctionCall) and node.is_aggregate
            for item in query.select_items
            for node in _walk_no_subquery(item.expr)
        )
        if query.group_by:
            groups = 1.0
            for _ in query.group_by:
                groups *= 31.0
            rows = min(rows, groups)
            cost += source_rows * self.params.join_per_row
        elif has_aggregate:
            rows = 1.0
        if query.having is not None:
            having_sel, having_cost = self._estimate_predicate(
                query.having, rows, depth
            )
            rows *= having_sel
            cost += having_cost
        if query.distinct:
            rows = min(rows, max(np.sqrt(source_rows), 1.0))
            cost += rows * self.params.join_per_row
        if query.order_by:
            sortable = max(rows, 2.0)
            cost += self.params.sort_factor * sortable * np.log2(sortable)
        if query.top is not None:
            rows = min(rows, float(max(query.top, 0)))

        # subqueries and expensive functions in the SELECT list run once
        # per output row
        per_row_cost = 0.0
        for item in query.select_items:
            per_row_cost += self._expression_cost(item.expr, depth)
        cost += per_row_cost * min(
            rows if rows > 0 else 1.0, self.params.max_rows
        )
        cost += rows * self.params.output_per_row
        cost += self.params.base_overhead
        rows = min(rows, self.params.max_rows)
        return rows, min(cost, self.params.max_cpu)

    def _estimate_from(
        self, from_items: list[ast.Node], depth: int
    ) -> tuple[float, float, float]:
        """Estimate (rows, cost, rows_scanned) of the FROM clause."""
        if not from_items:
            return 1.0, 0.0, 1.0
        rows = 1.0
        cost = 0.0
        scanned = 0.0
        first = True
        for item in from_items:
            item_rows, item_cost, item_scanned = self._estimate_source(
                item, depth
            )
            cost += item_cost
            scanned += item_scanned
            if first:
                rows = item_rows
                first = False
            else:
                # comma join: assume an implicit equi-join predicate will
                # restrict it; keep the larger side like a key join
                rows = max(rows, item_rows)
                cost += (rows + item_rows) * self.params.join_per_row
        return rows, cost, max(scanned, 1.0)

    def _estimate_source(
        self, item: ast.Node, depth: int
    ) -> tuple[float, float, float]:
        if isinstance(item, ast.TableRef):
            table = self.catalog.table(item.name)
            n = float(table.rows) if table is not None else _DEFAULT_TABLE_ROWS
            return n, n * self.params.scan_per_row, n
        if isinstance(item, ast.SubquerySource):
            rows, cost = self._estimate_query(item.query, depth + 1)
            return rows, cost, rows
        if isinstance(item, ast.Join):
            left_rows, left_cost, left_scan = self._estimate_source(
                item.left, depth
            )
            right_rows, right_cost, right_scan = self._estimate_source(
                item.right, depth
            )
            cost = left_cost + right_cost
            scanned = left_scan + right_scan
            if item.condition is None:
                rows = min(
                    left_rows * right_rows, self.params.max_rows * 10
                )
            else:
                join_kind = self._join_condition_kind(item.condition)
                if join_kind == "key":
                    rows = min(left_rows, right_rows)
                else:
                    rows = left_rows * right_rows / 1000.0
                extra_sel, extra_cost = self._estimate_predicate(
                    item.condition, left_scan + right_scan, depth
                )
                # the equi-join itself is not a filter on top of the key
                # estimate; only charge evaluation cost
                cost += extra_cost
                del extra_sel
            cost += (left_rows + right_rows) * self.params.join_per_row
            return rows, cost, scanned
        return 1.0, 0.0, 1.0

    @staticmethod
    def _join_condition_kind(condition: ast.Expr) -> str:
        """``key`` when the ON clause equates two id-like columns."""
        for node in _walk_no_subquery(condition):
            if isinstance(node, ast.BinaryOp) and node.op == "=":
                left_id = isinstance(node.left, ast.ColumnRef) and (
                    "id" in node.left.name.lower()
                )
                right_id = isinstance(node.right, ast.ColumnRef) and (
                    "id" in node.right.name.lower()
                )
                if left_id and right_id:
                    return "key"
        return "generic"

    # -- predicates ---------------------------------------------------------- #

    def _estimate_predicate(
        self, expr: ast.Expr | None, rows_scanned: float, depth: int
    ) -> tuple[float, float]:
        """(selectivity, evaluation cost) of a boolean expression.

        UDF calls inside the predicate are charged once per scanned row —
        the Figure 1b behaviour that makes such queries slow.
        """
        if expr is None:
            return 1.0, 0.0
        selectivity = self._selectivity(expr)
        cost = self._expression_cost(expr, depth) * max(rows_scanned, 1.0)
        return selectivity, cost

    def _selectivity(self, expr: ast.Expr) -> float:
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "AND":
                return self._selectivity(expr.left) * self._selectivity(
                    expr.right
                )
            if expr.op == "OR":
                left = self._selectivity(expr.left)
                right = self._selectivity(expr.right)
                return min(left + right - left * right, 1.0)
            if expr.op == "=":
                return self._equality_selectivity(expr)
            if expr.op in ("<", ">", "<=", ">="):
                return 0.3
            if expr.op in ("<>", "!="):
                return 0.9
            if expr.op == "LIKE":
                return 0.05
            return 0.5
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "NOT":
                return 1.0 - self._selectivity(expr.operand)
            if expr.op == "IS NULL":
                return 0.02
            if expr.op == "IS NOT NULL":
                return 0.98
            if expr.op == "EXISTS":
                return 0.5
            return 0.5
        if isinstance(expr, ast.Between):
            return self._range_selectivity(expr)
        if isinstance(expr, ast.InList):
            base = min(0.02 * max(len(expr.items), 1), 0.8)
            return 1.0 - base if expr.negated else base
        return 1.0  # non-boolean expression used as predicate

    def _equality_selectivity(self, expr: ast.BinaryOp) -> float:
        column = _first_column(expr)
        if column is None:
            return 0.1
        info = self._column_info(column)
        if info is None:
            return 1e-4
        if info.kind == "id":
            return 1e-9  # ~unique key: the id-equality clamp restores 1 row
        if info.kind == "category":
            return 1.0 / max(info.distinct, 2)
        return 1e-4  # equality on a continuous value is very selective

    def _has_id_equality(self, expr: ast.Expr) -> bool:
        """True when the predicate pins an id-kind column with equality."""
        for node in _walk_no_subquery(expr):
            if isinstance(node, ast.BinaryOp) and node.op == "=":
                column = _first_column(node)
                if column is None:
                    continue
                info = self._column_info(column)
                if info is not None and info.kind == "id":
                    return True
        return False

    def _range_selectivity(self, between: ast.Between) -> float:
        column = (
            between.operand
            if isinstance(between.operand, ast.ColumnRef)
            else _first_column(between.operand)
        )
        low = _literal_value(between.low)
        high = _literal_value(between.high)
        info = self._column_info(column) if column is not None else None
        if info is not None and low is not None and high is not None:
            domain = max(info.hi - info.lo, 1e-9)
            fraction = max(high - low, 0.0) / domain
            sel = float(np.clip(fraction, 1e-8, 1.0))
        else:
            sel = 0.05
        return 1.0 - sel if between.negated else sel

    def _column_info(self, column: ast.ColumnRef | None):
        if column is None:
            return None
        for table in self.catalog.table_list():
            col = table.column(column.name)
            if col is not None:
                return col
        return None

    def _expression_cost(self, expr: ast.Expr, depth: int) -> float:
        """Per-evaluation cost of an expression (UDFs + subqueries)."""
        cost = 0.0
        for node in _walk_no_subquery(expr):
            if isinstance(node, ast.FunctionCall):
                func = self.catalog.function(node.name)
                if func is not None:
                    cost += func.cost_per_call
                elif not node.is_aggregate:
                    cost += 1e-6
            elif isinstance(node, ast.Subquery):
                _, sub_cost = self._estimate_query(node.query, depth + 1)
                # uncorrelated subquery: evaluated once, amortised here
                cost += sub_cost / 1e4
        return cost

    # -- noise ---------------------------------------------------------------- #

    def _noisy_rows(self, rows: float) -> float:
        noise = float(
            np.exp(self.rng.normal(0.0, self.params.answer_noise_sigma))
        )
        return float(np.floor(min(max(rows * noise, 0.0), self.params.max_rows)))

    def _noisy_cpu(self, cost: float) -> float:
        noise = float(np.exp(self.rng.normal(0.0, self.params.noise_sigma)))
        cpu = max(cost * noise * self.speed_factor, 0.0)
        return round(min(cpu, self.params.max_cpu), 6)


def _walk_no_subquery(expr: ast.Node):
    """Walk an expression without descending into subqueries."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.Subquery, ast.SubquerySource)):
            continue
        stack.extend(node.children())


def _first_column(expr: ast.Expr) -> ast.ColumnRef | None:
    for node in _walk_no_subquery(expr):
        if isinstance(node, ast.ColumnRef):
            return node
    return None


def _literal_value(expr: ast.Expr) -> float | None:
    """Numeric value of a literal or simple arithmetic over literals."""
    if isinstance(expr, ast.Literal) and expr.is_number:
        try:
            return float(expr.value)
        except ValueError:
            try:
                return float(int(expr.value, 16))
            except ValueError:
                return None
    if isinstance(expr, ast.UnaryOp) and expr.op in ("-", "+"):
        inner = _literal_value(expr.operand)
        if inner is None:
            return None
        return -inner if expr.op == "-" else inner
    if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-", "*", "/"):
        left = _literal_value(expr.left)
        right = _literal_value(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        return left / right if right != 0 else None
    return None
