"""Workload persistence: JSON-lines readers and writers.

The paper's pipeline starts from logged queries on disk (the SDSS SqlLog
dump, the SQLShare release). This module gives the library the same
boundary: workloads and raw logs round-trip through a line-oriented JSON
format, one record per line, so they can be generated once, inspected with
standard shell tools, and shared between the CLI commands.

Format: each line is one JSON object. The first line is a header object
``{"repro_workload": 1, "name": ...}`` (``"repro_log": 1`` for raw logs)
so readers can fail fast on the wrong file kind. Missing labels are
serialized as JSON ``null`` and come back as ``None``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.workloads.records import LogEntry, QueryRecord, Workload

__all__ = [
    "save_workload",
    "load_workload",
    "save_log",
    "load_log",
    "WorkloadFormatError",
]

_WORKLOAD_MAGIC = "repro_workload"
_LOG_MAGIC = "repro_log"
_FORMAT_VERSION = 1


class WorkloadFormatError(ValueError):
    """Raised when a file is not a valid workload/log JSONL file."""


def _record_to_dict(record: QueryRecord) -> dict:
    return {
        "statement": record.statement,
        "error_class": record.error_class,
        "answer_size": record.answer_size,
        "cpu_time": record.cpu_time,
        "session_class": record.session_class,
        "user": record.user,
        "num_duplicates": record.num_duplicates,
        "elapsed_time": record.elapsed_time,
    }


def _record_from_dict(data: dict, line_no: int) -> QueryRecord:
    try:
        return QueryRecord(
            statement=data["statement"],
            error_class=data.get("error_class"),
            answer_size=data.get("answer_size"),
            cpu_time=data.get("cpu_time"),
            session_class=data.get("session_class"),
            user=data.get("user"),
            num_duplicates=int(data.get("num_duplicates", 1)),
            elapsed_time=data.get("elapsed_time"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkloadFormatError(f"bad record on line {line_no}: {exc}") from exc


def save_workload(workload: Workload, path: str | Path) -> None:
    """Write ``workload`` to ``path`` as JSON lines (see module docstring)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            _WORKLOAD_MAGIC: _FORMAT_VERSION,
            "name": workload.name,
            "records": len(workload),
        }
        handle.write(json.dumps(header) + "\n")
        for record in workload:
            handle.write(json.dumps(_record_to_dict(record)) + "\n")


def _read_header(path: Path, magic: str) -> dict:
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
    if not first.strip():
        raise WorkloadFormatError(f"{path}: empty file")
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise WorkloadFormatError(f"{path}: header is not JSON: {exc}") from exc
    if not isinstance(header, dict) or magic not in header:
        raise WorkloadFormatError(
            f"{path}: missing {magic!r} header (is this the right file kind?)"
        )
    if header[magic] != _FORMAT_VERSION:
        raise WorkloadFormatError(
            f"{path}: unsupported format version {header[magic]!r}"
        )
    return header


def load_workload(path: str | Path) -> Workload:
    """Read a workload written by :func:`save_workload`.

    Raises:
        WorkloadFormatError: file is missing, empty, or malformed.
    """
    path = Path(path)
    if not path.exists():
        raise WorkloadFormatError(f"{path}: no such file")
    header = _read_header(path, _WORKLOAD_MAGIC)
    records: list[QueryRecord] = []
    with path.open("r", encoding="utf-8") as handle:
        next(handle)  # header
        for line_no, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise WorkloadFormatError(
                    f"{path}: line {line_no} is not JSON: {exc}"
                ) from exc
            records.append(_record_from_dict(data, line_no))
    return Workload(str(header.get("name", path.stem)), records)


def _entry_to_dict(entry: LogEntry) -> dict:
    return {
        "statement": entry.statement,
        "session_id": entry.session_id,
        "session_class": entry.session_class,
        "error_class": entry.error_class,
        "answer_size": entry.answer_size,
        "cpu_time": entry.cpu_time,
        "user": entry.user,
        "ip": entry.ip,
        "timestamp": entry.timestamp,
        "agent_string": entry.agent_string,
        "elapsed_time": entry.elapsed_time,
    }


def _entry_from_dict(data: dict, line_no: int) -> LogEntry:
    try:
        return LogEntry(
            statement=data["statement"],
            session_id=int(data["session_id"]),
            session_class=data["session_class"],
            error_class=data["error_class"],
            answer_size=float(data["answer_size"]),
            cpu_time=float(data["cpu_time"]),
            user=data.get("user"),
            ip=data.get("ip", "0.0.0.0"),
            timestamp=float(data.get("timestamp", 0.0)),
            agent_string=data.get("agent_string"),
            elapsed_time=float(data.get("elapsed_time", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkloadFormatError(f"bad log entry on line {line_no}: {exc}") from exc


def save_log(entries: list[LogEntry], path: str | Path, name: str = "log") -> None:
    """Write raw (pre-dedup) log entries to ``path`` as JSON lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {_LOG_MAGIC: _FORMAT_VERSION, "name": name, "entries": len(entries)}
        handle.write(json.dumps(header) + "\n")
        for entry in entries:
            handle.write(json.dumps(_entry_to_dict(entry)) + "\n")


def load_log(path: str | Path) -> list[LogEntry]:
    """Read log entries written by :func:`save_log`."""
    path = Path(path)
    if not path.exists():
        raise WorkloadFormatError(f"{path}: no such file")
    _read_header(path, _LOG_MAGIC)
    entries: list[LogEntry] = []
    with path.open("r", encoding="utf-8") as handle:
        next(handle)
        for line_no, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise WorkloadFormatError(
                    f"{path}: line {line_no} is not JSON: {exc}"
                ) from exc
            entries.append(_entry_from_dict(data, line_no))
    return entries
